//! Reproduction package for *GraphTempo: An aggregation framework for
//! evolving graphs* (EDBT 2023).
//!
//! This crate re-exports the workspace's public surface as a prelude so the
//! examples and integration tests read like downstream user code:
//!
//! * [`tempo_columnar`] — the labeled-array columnar substrate (§4 storage),
//! * [`tempo_graph`] — the temporal attributed graph model (Definition 2.1),
//! * [`graphtempo`] — operators, aggregation, evolution, materialization
//!   and exploration (the paper's contribution),
//! * [`tempo_datagen`] — synthetic datasets calibrated to the paper's
//!   evaluation (Tables 3 and 4).

pub use graphtempo;
pub use tempo_columnar;
pub use tempo_datagen;
pub use tempo_graph;

/// Convenience prelude used by the examples and integration tests.
pub mod prelude {
    pub use graphtempo::{
        aggregate::{
            aggregate, aggregate_filtered, aggregate_static_fast, aggregate_via_frames, rollup,
            AggMode, AggregateGraph,
        },
        cube::{GraphCube, Level},
        evolution::{evolution_aggregate, EvolutionClass, EvolutionGraph},
        explore::{
            explore, explore_naive, explore_parallel, solve_problem, suggest_k, ExploreConfig,
            ExtendSide, ProblemReport, Selector, Semantics, ThresholdStat,
        },
        export::{aggregate_to_dot, evolution_to_dot},
        materialize::{MaterializationCache, TimepointStore},
        measures::{aggregate_measure, EdgeMeasure, MeasureAggregate, NodeMeasure},
        ops::{
            difference, event_graph, intersection, project, project_point, union, Event, SideTest,
        },
        zoom::{zoom_out, Granularity},
    };
    pub use tempo_columnar::{Frame, Value};
    pub use tempo_datagen::{DblpConfig, MovieLensConfig, RandomGraphConfig, SchoolConfig};
    pub use tempo_graph::{
        AttrId, AttributeSchema, GraphBuilder, GraphStats, GraphVersions, TemporalGraph,
        Temporality, TimeDomain, TimePoint, TimeSet, TimepointPatch,
    };
}
