//! # tempo-columnar
//!
//! A small labeled-array columnar engine: the storage substrate of the
//! GraphTempo reproduction.
//!
//! The GraphTempo paper (EDBT 2023, §4) represents a temporal attributed
//! graph with four kinds of labeled arrays:
//!
//! * **V** — one binary row per node over the time domain ([`BitMatrix`]),
//! * **E** — one binary row per edge over the time domain ([`BitMatrix`]),
//! * **S** — one row per node holding its static attribute values,
//! * **A_i** — for each time-varying attribute, one row per node and one
//!   column per time point ([`ValueMatrix`]).
//!
//! The paper's algorithms are phrased as dataframe programs (the authors'
//! implementation uses pandas/Modin): restrict arrays to interval columns,
//! *unpivot* attribute arrays, *merge*, *deduplicate*, *group by* and
//! *count*. [`Frame`] implements those primitives so the algorithms in the
//! `graphtempo` crate follow the paper line-for-line.
//!
//! ```
//! use tempo_columnar::{Frame, Value};
//!
//! let mut pubs = Frame::new(vec!["id", "t0", "t1"]).unwrap();
//! pubs.push_row(vec![Value::Str("u1".into()), Value::Int(3), Value::Int(1)]).unwrap();
//! pubs.push_row(vec![Value::Str("u2".into()), Value::Int(1), Value::Null]).unwrap();
//!
//! // Alg. 2, line 2: unpivot the attribute array
//! let long = pubs.unpivot(&["id"], "time", "publications").unwrap();
//! // Alg. 2, line 8: group by attribute value and count
//! let counts = long.group_count(&["publications"]).unwrap();
//! assert_eq!(counts.nrows(), 2); // publications value 1 and value 3
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bitset;
mod csv;
mod error;
mod frame;
mod interner;
mod matrix;
mod sparse;
mod value;

pub use bitset::{shard_ranges, BitMatrix, BitVec, TransposedBitMatrix};
pub use csv::{read_frame, write_frame};
pub use error::ColumnarError;
pub use frame::Frame;
pub use interner::Interner;
pub use matrix::ValueMatrix;
pub use sparse::{PresenceColumn, SparseMode};
pub use value::{Value, ValueTuple};
