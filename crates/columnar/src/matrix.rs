//! Dense value matrices.
//!
//! The paper stores each time-varying attribute `A_i` as a labeled array with
//! one row per node and one column per time point; cell `A_i[v, t]` holds the
//! attribute value of `v` at `t`, or "–" when `v` does not exist at `t`
//! (Table 2). [`ValueMatrix`] is that array; row labels are kept by the
//! graph layer.

use crate::frame::Frame;
use crate::value::Value;

/// A dense row-major matrix of [`Value`]s with a fixed column count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueMatrix {
    ncols: usize,
    nrows: usize,
    data: Vec<Value>,
}

impl ValueMatrix {
    /// Creates an empty matrix with `ncols` columns and no rows.
    pub fn new(ncols: usize) -> Self {
        ValueMatrix {
            ncols,
            nrows: 0,
            data: Vec::new(),
        }
    }

    /// Creates an all-`Null` matrix with the given shape.
    pub fn nulls(nrows: usize, ncols: usize) -> Self {
        ValueMatrix {
            ncols,
            nrows,
            data: vec![Value::Null; nrows * ncols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Appends an all-`Null` row, returning its index.
    pub fn push_null_row(&mut self) -> usize {
        self.data
            .extend(std::iter::repeat_n(Value::Null, self.ncols));
        self.nrows += 1;
        self.nrows - 1
    }

    /// Appends a row, returning its index.
    ///
    /// # Panics
    /// Panics if the row arity differs from `ncols`.
    pub fn push_row(&mut self, row: Vec<Value>) -> usize {
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        self.data.extend(row);
        self.nrows += 1;
        self.nrows - 1
    }

    /// Reads cell `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &Value {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        &self.data[r * self.ncols + c]
    }

    /// Writes cell `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Value) {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        self.data[r * self.ncols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> &[Value] {
        assert!(r < self.nrows, "row out of range");
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Builds a new matrix keeping only the listed columns, in that order.
    ///
    /// # Panics
    /// Panics if any column is out of range.
    pub fn restrict_columns(&self, cols: &[usize]) -> ValueMatrix {
        for &c in cols {
            assert!(c < self.ncols, "column {c} out of range {}", self.ncols);
        }
        let mut out = ValueMatrix::new(cols.len());
        for r in 0..self.nrows {
            let row = self.row(r);
            out.push_row(cols.iter().map(|&c| row[c].clone()).collect());
        }
        out
    }

    /// Builds a copy with `new_ncols >= ncols` columns; existing cells keep
    /// their positions, new columns are `Null`.
    ///
    /// # Panics
    /// Panics if `new_ncols < ncols`.
    pub fn widen(&self, new_ncols: usize) -> ValueMatrix {
        assert!(
            new_ncols >= self.ncols,
            "widen cannot shrink: {} -> {new_ncols}",
            self.ncols
        );
        let mut out = ValueMatrix::new(new_ncols);
        for r in 0..self.nrows {
            let mut row = self.row(r).to_vec();
            row.resize(new_ncols, Value::Null);
            out.push_row(row);
        }
        out
    }

    /// Builds a new matrix keeping only the listed rows, in that order.
    ///
    /// # Panics
    /// Panics if any row is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> ValueMatrix {
        let mut out = ValueMatrix::new(self.ncols);
        for &r in rows {
            out.push_row(self.row(r).to_vec());
        }
        out
    }

    /// Converts the matrix to a [`Frame`], prefixing each row with an `id`
    /// column holding the caller-provided row labels.
    ///
    /// Column names are taken from `col_names`.
    ///
    /// # Panics
    /// Panics if label or column-name counts do not match the shape, or if
    /// `col_names` contains duplicates or a column named `id`.
    pub fn to_frame(&self, row_labels: &[Value], col_names: &[String]) -> Frame {
        assert_eq!(row_labels.len(), self.nrows, "row label count mismatch");
        assert_eq!(col_names.len(), self.ncols, "column name count mismatch");
        let mut cols: Vec<String> = vec!["id".to_owned()];
        cols.extend(col_names.iter().cloned());
        let mut f = Frame::new(cols)
            .expect("invariant: caller passes distinct column names (documented precondition)");
        for (r, label) in row_labels.iter().enumerate() {
            let mut row = Vec::with_capacity(self.ncols + 1);
            row.push(label.clone());
            row.extend(self.row(r).iter().cloned());
            f.push_row(row)
                .expect("invariant: arity is consistent by construction");
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut m = ValueMatrix::new(3);
        m.push_row(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        m.push_null_row();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.get(0, 2), &Value::Int(3));
        assert!(m.get(1, 0).is_null());
        m.set(1, 1, Value::Int(9));
        assert_eq!(m.get(1, 1), &Value::Int(9));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_row_wrong_arity_panics() {
        ValueMatrix::new(2).push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn restrict_and_select() {
        let mut m = ValueMatrix::new(3);
        m.push_row(vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
        m.push_row(vec![Value::Int(10), Value::Int(11), Value::Int(12)]);
        let r = m.restrict_columns(&[2, 0]);
        assert_eq!(r.row(1), &[Value::Int(12), Value::Int(10)]);
        let s = m.select_rows(&[1]);
        assert_eq!(s.nrows(), 1);
        assert_eq!(s.row(0)[0], Value::Int(10));
    }

    #[test]
    fn to_frame_roundtrip() {
        let mut m = ValueMatrix::new(2);
        m.push_row(vec![Value::Int(5), Value::Null]);
        let f = m.to_frame(
            &[Value::Str("u1".into())],
            &["t0".to_owned(), "t1".to_owned()],
        );
        assert_eq!(f.columns(), &["id", "t0", "t1"]);
        assert_eq!(f.get(0, "t0").unwrap(), &Value::Int(5));
        assert_eq!(f.get(0, "id").unwrap(), &Value::Str("u1".into()));
    }

    #[test]
    fn widen_preserves_and_pads() {
        let mut m = ValueMatrix::new(2);
        m.push_row(vec![Value::Int(1), Value::Int(2)]);
        let w = m.widen(4);
        assert_eq!(w.ncols(), 4);
        assert_eq!(w.get(0, 1), &Value::Int(2));
        assert!(w.get(0, 3).is_null());
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn widen_shrink_panics() {
        ValueMatrix::new(3).widen(2);
    }

    #[test]
    fn nulls_shape() {
        let m = ValueMatrix::nulls(2, 4);
        assert_eq!((m.nrows(), m.ncols()), (2, 4));
        assert!(m.get(1, 3).is_null());
    }
}
