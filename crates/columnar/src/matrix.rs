//! Column-chunked value matrices.
//!
//! The paper stores each time-varying attribute `A_i` as a labeled array with
//! one row per node and one column per time point; cell `A_i[v, t]` holds the
//! attribute value of `v` at `t`, or "–" when `v` does not exist at `t`
//! (Table 2). [`ValueMatrix`] is that array; row labels are kept by the
//! graph layer.
//!
//! Storage is one `Arc`-shared chunk per column, truncated at the last
//! non-`Null` row — rows past `col.len()` are implicitly `Null`. Cloning,
//! [`widen`](ValueMatrix::widen)ing, and
//! [`restrict_columns`](ValueMatrix::restrict_columns) only copy the column
//! spine, so an appended snapshot shares every untouched attribute column
//! with its predecessor (copy-on-write via `Arc::make_mut`), and appending
//! a time point adds one fresh column without rewriting history.

use std::sync::Arc;

use crate::frame::Frame;
use crate::value::Value;

/// The implicit cell value past a column chunk's materialized length.
static NULL: Value = Value::Null;

/// A matrix of [`Value`]s with a fixed column count and `Arc`-shared
/// column-chunk storage (implicit-`Null` tails).
#[derive(Clone, Debug)]
pub struct ValueMatrix {
    ncols: usize,
    nrows: usize,
    cols: Vec<Arc<Vec<Value>>>,
}

impl PartialEq for ValueMatrix {
    fn eq(&self, other: &Self) -> bool {
        if self.ncols != other.ncols || self.nrows != other.nrows {
            return false;
        }
        self.cols.iter().zip(&other.cols).all(|(a, b)| {
            if Arc::ptr_eq(a, b) {
                return true;
            }
            // semantic equality under implicit-Null tails
            let n = a.len().min(b.len());
            a[..n] == b[..n]
                && a[n..].iter().all(Value::is_null)
                && b[n..].iter().all(Value::is_null)
        })
    }
}

impl Eq for ValueMatrix {}

impl ValueMatrix {
    /// Creates an empty matrix with `ncols` columns and no rows.
    pub fn new(ncols: usize) -> Self {
        ValueMatrix {
            ncols,
            nrows: 0,
            // columns deliberately share one empty allocation;
            // `Arc::make_mut` un-shares on first write
            #[allow(clippy::rc_clone_in_vec_init)]
            cols: vec![Arc::new(Vec::new()); ncols],
        }
    }

    /// Creates an all-`Null` matrix with the given shape.
    pub fn nulls(nrows: usize, ncols: usize) -> Self {
        let mut m = ValueMatrix::new(ncols);
        m.nrows = nrows;
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Appends an all-`Null` row, returning its index. O(1): trailing
    /// `Null` rows are implicit.
    pub fn push_null_row(&mut self) -> usize {
        self.nrows += 1;
        self.nrows - 1
    }

    /// Appends a row, returning its index. Only columns receiving a
    /// non-`Null` cell are materialized (and un-shared if copy-on-write
    /// shared).
    ///
    /// # Panics
    /// Panics if the row arity differs from `ncols`.
    pub fn push_row(&mut self, row: Vec<Value>) -> usize {
        assert_eq!(row.len(), self.ncols, "row arity mismatch");
        for (col, v) in self.cols.iter_mut().zip(row) {
            if !v.is_null() {
                let col = Arc::make_mut(col);
                col.resize(self.nrows, Value::Null);
                col.push(v);
            }
        }
        self.nrows += 1;
        self.nrows - 1
    }

    /// Appends one column, returning its index; `cells` holds the new
    /// column's values top-down and may be shorter than `nrows` (the rest
    /// is implicitly `Null`). This is the copy-on-write append behind
    /// versioned snapshots: prior columns stay `Arc`-shared with earlier
    /// epochs.
    ///
    /// # Panics
    /// Panics if `cells` is longer than `nrows`.
    pub fn push_col(&mut self, cells: Vec<Value>) -> usize {
        assert!(
            cells.len() <= self.nrows,
            "pushed column spans {} rows, more than nrows {}",
            cells.len(),
            self.nrows
        );
        self.cols.push(Arc::new(cells));
        self.ncols += 1;
        self.ncols - 1
    }

    /// Reads cell `(r, c)`; rows past the column chunk's materialized
    /// length read as [`Value::Null`].
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &Value {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        self.cols[c].get(r).unwrap_or(&NULL)
    }

    /// Writes cell `(r, c)`, un-sharing (copy-on-write) and growing the
    /// column chunk as needed.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Value) {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        let col = &mut self.cols[c];
        if v.is_null() && col.len() <= r {
            return; // already implicitly Null
        }
        let col = Arc::make_mut(col);
        if col.len() <= r {
            col.resize(r + 1, Value::Null);
        }
        col[r] = v;
    }

    /// Copies row `r` out, gathering one cell per column.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> Vec<Value> {
        assert!(r < self.nrows, "row out of range");
        self.cols
            .iter()
            .map(|col| col.get(r).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// Builds a new matrix keeping only the listed columns, in that order.
    /// Cheap: the kept column chunks are `Arc`-shared, not copied.
    ///
    /// # Panics
    /// Panics if any column is out of range.
    pub fn restrict_columns(&self, cols: &[usize]) -> ValueMatrix {
        for &c in cols {
            assert!(c < self.ncols, "column {c} out of range {}", self.ncols);
        }
        ValueMatrix {
            ncols: cols.len(),
            nrows: self.nrows,
            cols: cols.iter().map(|&c| Arc::clone(&self.cols[c])).collect(),
        }
    }

    /// Builds a copy with `new_ncols >= ncols` columns; existing cells keep
    /// their positions, new columns are `Null`. Cheap copy-on-write: the
    /// existing column chunks are `Arc`-shared and the new columns are
    /// implicit-`Null`.
    ///
    /// # Panics
    /// Panics if `new_ncols < ncols`.
    pub fn widen(&self, new_ncols: usize) -> ValueMatrix {
        assert!(
            new_ncols >= self.ncols,
            "widen cannot shrink: {} -> {new_ncols}",
            self.ncols
        );
        let mut cols = self.cols.clone();
        cols.resize_with(new_ncols, || Arc::new(Vec::new()));
        ValueMatrix {
            ncols: new_ncols,
            nrows: self.nrows,
            cols,
        }
    }

    /// Builds a new matrix keeping only the listed rows, in that order.
    ///
    /// # Panics
    /// Panics if any row is out of range.
    pub fn select_rows(&self, rows: &[usize]) -> ValueMatrix {
        for &r in rows {
            assert!(r < self.nrows, "row out of range");
        }
        ValueMatrix {
            ncols: self.ncols,
            nrows: rows.len(),
            cols: self
                .cols
                .iter()
                .map(|col| {
                    Arc::new(
                        rows.iter()
                            .map(|&r| col.get(r).cloned().unwrap_or(Value::Null))
                            .collect::<Vec<Value>>(),
                    )
                })
                .collect(),
        }
    }

    /// Count of column chunks physically shared (same allocation) with
    /// `other` — a test/bench hook for asserting copy-on-write appends
    /// actually share prior storage instead of deep-copying it.
    pub fn shared_cols(&self, other: &ValueMatrix) -> usize {
        self.cols
            .iter()
            .zip(&other.cols)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Converts the matrix to a [`Frame`], prefixing each row with an `id`
    /// column holding the caller-provided row labels.
    ///
    /// Column names are taken from `col_names`.
    ///
    /// # Panics
    /// Panics if label or column-name counts do not match the shape, or if
    /// `col_names` contains duplicates or a column named `id`.
    pub fn to_frame(&self, row_labels: &[Value], col_names: &[String]) -> Frame {
        assert_eq!(row_labels.len(), self.nrows, "row label count mismatch");
        assert_eq!(col_names.len(), self.ncols, "column name count mismatch");
        let mut cols: Vec<String> = vec!["id".to_owned()];
        cols.extend(col_names.iter().cloned());
        let mut f = Frame::new(cols)
            .expect("invariant: caller passes distinct column names (documented precondition)");
        for (r, label) in row_labels.iter().enumerate() {
            let mut row = Vec::with_capacity(self.ncols + 1);
            row.push(label.clone());
            row.extend(self.row(r));
            f.push_row(row)
                .expect("invariant: arity is consistent by construction");
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut m = ValueMatrix::new(3);
        m.push_row(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        m.push_null_row();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.get(0, 2), &Value::Int(3));
        assert!(m.get(1, 0).is_null());
        m.set(1, 1, Value::Int(9));
        assert_eq!(m.get(1, 1), &Value::Int(9));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn push_row_wrong_arity_panics() {
        ValueMatrix::new(2).push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn restrict_and_select() {
        let mut m = ValueMatrix::new(3);
        m.push_row(vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
        m.push_row(vec![Value::Int(10), Value::Int(11), Value::Int(12)]);
        let r = m.restrict_columns(&[2, 0]);
        assert_eq!(r.row(1), &[Value::Int(12), Value::Int(10)]);
        let s = m.select_rows(&[1]);
        assert_eq!(s.nrows(), 1);
        assert_eq!(s.row(0)[0], Value::Int(10));
    }

    #[test]
    fn to_frame_roundtrip() {
        let mut m = ValueMatrix::new(2);
        m.push_row(vec![Value::Int(5), Value::Null]);
        let f = m.to_frame(
            &[Value::Str("u1".into())],
            &["t0".to_owned(), "t1".to_owned()],
        );
        assert_eq!(f.columns(), &["id", "t0", "t1"]);
        assert_eq!(f.get(0, "t0").unwrap(), &Value::Int(5));
        assert_eq!(f.get(0, "id").unwrap(), &Value::Str("u1".into()));
    }

    #[test]
    fn widen_preserves_and_pads() {
        let mut m = ValueMatrix::new(2);
        m.push_row(vec![Value::Int(1), Value::Int(2)]);
        let w = m.widen(4);
        assert_eq!(w.ncols(), 4);
        assert_eq!(w.get(0, 1), &Value::Int(2));
        assert!(w.get(0, 3).is_null());
        // widening shares every existing chunk with the source
        assert_eq!(w.shared_cols(&m), 2);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn widen_shrink_panics() {
        ValueMatrix::new(3).widen(2);
    }

    #[test]
    fn nulls_shape() {
        let m = ValueMatrix::nulls(2, 4);
        assert_eq!((m.nrows(), m.ncols()), (2, 4));
        assert!(m.get(1, 3).is_null());
    }

    #[test]
    fn push_col_appends_and_shares_history() {
        let mut m = ValueMatrix::new(2);
        m.push_row(vec![Value::Int(1), Value::Int(2)]);
        m.push_row(vec![Value::Int(3), Value::Null]);
        let snapshot = m.clone();
        // short column: row 1 implicitly Null
        m.push_col(vec![Value::Int(7)]);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(0, 2), &Value::Int(7));
        assert!(m.get(1, 2).is_null());
        assert_eq!(m.shared_cols(&snapshot), 2, "old columns stay shared");
        // the snapshot is unperturbed
        assert_eq!(snapshot.ncols(), 2);
        assert_eq!(snapshot.get(0, 0), &Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "more than nrows")]
    fn push_col_too_long_panics() {
        let mut m = ValueMatrix::new(1);
        m.push_null_row();
        m.push_col(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn implicit_null_rows_are_semantically_equal() {
        let mut a = ValueMatrix::new(2);
        a.push_row(vec![Value::Int(1), Value::Null]);
        a.push_null_row();
        let mut b = ValueMatrix::new(2);
        b.push_row(vec![Value::Int(1), Value::Null]);
        b.push_row(vec![Value::Null, Value::Null]);
        assert_eq!(a, b);
        assert_eq!(a.row(1), vec![Value::Null, Value::Null]);
    }
}
