//! Labeled row frames and the dataframe primitives of the paper's Alg. 2.
//!
//! GraphTempo's aggregation algorithm is specified in dataframe vocabulary:
//! *unpivot* an attribute array, *merge* the unpivoted arrays, *deduplicate*
//! on a key, *group by* the attribute tuple and *count*. [`Frame`] provides
//! exactly those operations over rows of [`Value`]s, so the algorithm
//! translates line-for-line from the paper.

use crate::error::ColumnarError;
use crate::value::{Value, ValueTuple};
use std::collections::HashMap;

/// A small row-oriented table with named columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Frame {
    /// Creates an empty frame with the given column names.
    ///
    /// # Errors
    /// Returns an error if column names are duplicated.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Result<Self, ColumnarError> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(ColumnarError::DuplicateColumn(c.clone()));
            }
        }
        Ok(Frame {
            columns,
            rows: Vec::new(),
        })
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// True if the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    ///
    /// # Errors
    /// Returns an error if the column does not exist.
    pub fn col_index(&self, name: &str) -> Result<usize, ColumnarError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| ColumnarError::UnknownColumn(name.to_owned()))
    }

    /// Resolves a list of column names to indices.
    ///
    /// # Errors
    /// Returns an error if any column does not exist.
    pub fn col_indices(&self, names: &[&str]) -> Result<Vec<usize>, ColumnarError> {
        names.iter().map(|n| self.col_index(n)).collect()
    }

    /// Appends a row.
    ///
    /// # Errors
    /// Returns an error if the row arity does not match the column count.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), ColumnarError> {
        if row.len() != self.columns.len() {
            return Err(ColumnarError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Borrows row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[Value] {
        &self.rows[r]
    }

    /// Iterates all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Reads cell `(r, col)` by column name.
    ///
    /// # Errors
    /// Returns an error for an unknown column.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn get(&self, r: usize, col: &str) -> Result<&Value, ColumnarError> {
        let c = self.col_index(col)?;
        Ok(&self.rows[r][c])
    }

    /// Returns a new frame keeping only the named columns, in that order.
    ///
    /// # Errors
    /// Returns an error if any column does not exist.
    pub fn select(&self, cols: &[&str]) -> Result<Frame, ColumnarError> {
        let idx = self.col_indices(cols)?;
        let mut out = Frame::new(cols.to_vec())?;
        for row in &self.rows {
            out.rows.push(idx.iter().map(|&i| row[i].clone()).collect());
        }
        Ok(out)
    }

    /// Returns a new frame keeping only rows satisfying `pred`.
    pub fn filter<F: FnMut(&[Value]) -> bool>(&self, mut pred: F) -> Frame {
        Frame {
            columns: self.columns.clone(),
            rows: self.rows.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Vertically concatenates another frame (the paper's *merge*).
    ///
    /// # Errors
    /// Returns an error if the column sets differ.
    pub fn vstack(&mut self, other: &Frame) -> Result<(), ColumnarError> {
        if self.columns != other.columns {
            return Err(ColumnarError::SchemaMismatch {
                left: self.columns.join(","),
                right: other.columns.join(","),
            });
        }
        self.rows.extend(other.rows.iter().cloned());
        Ok(())
    }

    /// Wide-to-long reshape (the paper's *unpivot*).
    ///
    /// Keeps `id_cols`, and for every other column `c` emits one row per
    /// input row with two new columns: `var_name` holding the column label
    /// `c` as a `Str` value and `value_name` holding the cell. Rows whose
    /// cell is `Null` are dropped (an attribute simply has no value at a
    /// time point where the node does not exist).
    ///
    /// # Errors
    /// Returns an error if any id column does not exist.
    pub fn unpivot(
        &self,
        id_cols: &[&str],
        var_name: &str,
        value_name: &str,
    ) -> Result<Frame, ColumnarError> {
        let id_idx = self.col_indices(id_cols)?;
        let melt_idx: Vec<usize> = (0..self.columns.len())
            .filter(|i| !id_idx.contains(i))
            .collect();
        let mut out_cols: Vec<String> = id_cols.iter().map(|s| (*s).to_owned()).collect();
        out_cols.push(var_name.to_owned());
        out_cols.push(value_name.to_owned());
        let mut out = Frame::new(out_cols)?;
        for row in &self.rows {
            for &mi in &melt_idx {
                if row[mi].is_null() {
                    continue;
                }
                let mut new_row: Vec<Value> = id_idx.iter().map(|&i| row[i].clone()).collect();
                new_row.push(Value::Str(self.columns[mi].clone()));
                new_row.push(row[mi].clone());
                out.rows.push(new_row);
            }
        }
        Ok(out)
    }

    /// Removes duplicate rows with respect to the named key columns,
    /// keeping the first occurrence (the paper's *deduplicate*).
    ///
    /// # Errors
    /// Returns an error if any key column does not exist.
    pub fn dedup_by(&self, key_cols: &[&str]) -> Result<Frame, ColumnarError> {
        let idx = self.col_indices(key_cols)?;
        let mut seen: HashMap<ValueTuple, ()> = HashMap::with_capacity(self.rows.len());
        let mut out = Frame {
            columns: self.columns.clone(),
            rows: Vec::new(),
        };
        for row in &self.rows {
            let key: ValueTuple = idx.iter().map(|&i| row[i].clone()).collect();
            if seen.insert(key, ()).is_none() {
                out.rows.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Groups rows by the named key columns and counts group sizes
    /// (the paper's *groupby(a').count()*).
    ///
    /// The result has the key columns plus a `count` column, sorted by key
    /// for determinism.
    ///
    /// # Errors
    /// Returns an error if any key column does not exist.
    pub fn group_count(&self, key_cols: &[&str]) -> Result<Frame, ColumnarError> {
        let idx = self.col_indices(key_cols)?;
        let mut groups: HashMap<ValueTuple, i64> = HashMap::new();
        for row in &self.rows {
            let key: ValueTuple = idx.iter().map(|&i| row[i].clone()).collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        let mut out_cols: Vec<String> = key_cols.iter().map(|s| (*s).to_owned()).collect();
        out_cols.push("count".to_owned());
        let mut out = Frame::new(out_cols)?;
        let mut entries: Vec<(ValueTuple, i64)> = groups.into_iter().collect();
        entries.sort();
        for (mut key, count) in entries {
            key.push(Value::Int(count));
            out.rows.push(key);
        }
        Ok(out)
    }

    /// Groups rows by the named key columns and sums an integer column
    /// (used by the non-distinct static-attribute fast path of §4.2).
    ///
    /// # Errors
    /// Returns an error if a column is missing or the summed column holds a
    /// non-integer, non-null value.
    pub fn group_sum(&self, key_cols: &[&str], sum_col: &str) -> Result<Frame, ColumnarError> {
        let idx = self.col_indices(key_cols)?;
        let sum_idx = self.col_index(sum_col)?;
        let mut groups: HashMap<ValueTuple, i64> = HashMap::new();
        for row in &self.rows {
            let add = match &row[sum_idx] {
                Value::Int(i) => *i,
                Value::Null => 0,
                other => {
                    return Err(ColumnarError::TypeError {
                        column: sum_col.to_owned(),
                        found: format!("{other:?}"),
                    })
                }
            };
            let key: ValueTuple = idx.iter().map(|&i| row[i].clone()).collect();
            *groups.entry(key).or_insert(0) += add;
        }
        let mut out_cols: Vec<String> = key_cols.iter().map(|s| (*s).to_owned()).collect();
        out_cols.push(sum_col.to_owned());
        let mut out = Frame::new(out_cols)?;
        let mut entries: Vec<(ValueTuple, i64)> = groups.into_iter().collect();
        entries.sort();
        for (mut key, sum) in entries {
            key.push(Value::Int(sum));
            out.rows.push(key);
        }
        Ok(out)
    }

    /// Sorts rows lexicographically by the named columns (stable).
    ///
    /// # Errors
    /// Returns an error if any column does not exist.
    pub fn sort_by(&mut self, cols: &[&str]) -> Result<(), ColumnarError> {
        let idx = self.col_indices(cols)?;
        self.rows.sort_by(|a, b| {
            for &i in &idx {
                match a[i].cmp(&b[i]) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(())
    }

    /// Inner hash join: for every pair of rows whose `left_keys` tuple in
    /// `self` equals the `right_keys` tuple in `other`, emits the left row
    /// followed by the right row's non-key columns (the paper's "merge S
    /// into A'" step of Algorithm 2).
    ///
    /// Right non-key columns that collide with a left column name are
    /// prefixed with `right_`.
    ///
    /// # Errors
    /// Returns an error if a key column is missing or the key lists differ
    /// in length.
    pub fn join_inner(
        &self,
        other: &Frame,
        left_keys: &[&str],
        right_keys: &[&str],
    ) -> Result<Frame, ColumnarError> {
        if left_keys.len() != right_keys.len() {
            return Err(ColumnarError::ArityMismatch {
                expected: left_keys.len(),
                got: right_keys.len(),
            });
        }
        let left_idx = self.col_indices(left_keys)?;
        let right_idx = other.col_indices(right_keys)?;
        let right_keep: Vec<usize> = (0..other.columns.len())
            .filter(|i| !right_idx.contains(i))
            .collect();

        let mut out_cols = self.columns.clone();
        for &i in &right_keep {
            let name = &other.columns[i];
            if out_cols.contains(name) {
                out_cols.push(format!("right_{name}"));
            } else {
                out_cols.push(name.clone());
            }
        }
        let mut out = Frame::new(out_cols)?;

        let mut index: HashMap<ValueTuple, Vec<usize>> = HashMap::new();
        for (r, row) in other.rows.iter().enumerate() {
            let key: ValueTuple = right_idx.iter().map(|&i| row[i].clone()).collect();
            index.entry(key).or_default().push(r);
        }
        for left_row in &self.rows {
            let key: ValueTuple = left_idx.iter().map(|&i| left_row[i].clone()).collect();
            if let Some(matches) = index.get(&key) {
                for &r in matches {
                    let mut row = left_row.clone();
                    let right_row = &other.rows[r];
                    row.extend(right_keep.iter().map(|&i| right_row[i].clone()));
                    out.rows.push(row);
                }
            }
        }
        Ok(out)
    }

    /// Builds a hash index on the named key columns: key tuple → row ids.
    ///
    /// This is the lookup structure Alg. 2 uses to resolve edge endpoints to
    /// attribute tuples.
    ///
    /// # Errors
    /// Returns an error if any key column does not exist.
    pub fn index_by(
        &self,
        key_cols: &[&str],
    ) -> Result<HashMap<ValueTuple, Vec<usize>>, ColumnarError> {
        let idx = self.col_indices(key_cols)?;
        let mut map: HashMap<ValueTuple, Vec<usize>> = HashMap::new();
        for (r, row) in self.rows.iter().enumerate() {
            let key: ValueTuple = idx.iter().map(|&i| row[i].clone()).collect();
            map.entry(key).or_default().push(r);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        // Mirrors the paper's Table 2 attribute array A (#Publications)
        let mut f = Frame::new(vec!["id", "t0", "t1", "t2"]).unwrap();
        f.push_row(vec![
            Value::Int(1),
            Value::Int(3),
            Value::Int(1),
            Value::Null,
        ])
        .unwrap();
        f.push_row(vec![
            Value::Int(2),
            Value::Int(1),
            Value::Int(1),
            Value::Int(1),
        ])
        .unwrap();
        f.push_row(vec![Value::Int(3), Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        f
    }

    #[test]
    fn new_rejects_duplicate_columns() {
        assert!(matches!(
            Frame::new(vec!["a", "a"]),
            Err(ColumnarError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn push_row_arity_checked() {
        let mut f = Frame::new(vec!["a", "b"]).unwrap();
        assert!(matches!(
            f.push_row(vec![Value::Int(1)]),
            Err(ColumnarError::ArityMismatch { .. })
        ));
        assert!(f.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert_eq!(f.nrows(), 1);
    }

    #[test]
    fn select_and_get() {
        let f = sample();
        let s = f.select(&["t1", "id"]).unwrap();
        assert_eq!(s.columns(), &["t1".to_string(), "id".to_string()]);
        assert_eq!(s.get(0, "t1").unwrap(), &Value::Int(1));
        assert_eq!(s.get(0, "id").unwrap(), &Value::Int(1));
        assert!(f.select(&["zzz"]).is_err());
    }

    #[test]
    fn filter_rows() {
        let f = sample();
        let g = f.filter(|r| r[1] == Value::Int(1));
        assert_eq!(g.nrows(), 2);
    }

    #[test]
    fn vstack_checks_schema() {
        let mut a = sample();
        let b = sample();
        a.vstack(&b).unwrap();
        assert_eq!(a.nrows(), 6);
        let c = Frame::new(vec!["x"]).unwrap();
        assert!(a.vstack(&c).is_err());
    }

    #[test]
    fn unpivot_drops_nulls() {
        let f = sample();
        let long = f.unpivot(&["id"], "time", "value").unwrap();
        assert_eq!(
            long.columns(),
            &["id".to_string(), "time".to_string(), "value".to_string()]
        );
        // 2+3+1 non-null cells
        assert_eq!(long.nrows(), 6);
        // node 3 contributes exactly one row (t0)
        let n3: Vec<_> = long.iter_rows().filter(|r| r[0] == Value::Int(3)).collect();
        assert_eq!(n3.len(), 1);
        assert_eq!(n3[0][1], Value::Str("t0".into()));
        assert_eq!(n3[0][2], Value::Int(1));
    }

    #[test]
    fn dedup_by_keeps_first() {
        let mut f = Frame::new(vec!["k", "v"]).unwrap();
        f.push_row(vec![Value::Int(1), Value::Str("first".into())])
            .unwrap();
        f.push_row(vec![Value::Int(1), Value::Str("second".into())])
            .unwrap();
        f.push_row(vec![Value::Int(2), Value::Str("x".into())])
            .unwrap();
        let d = f.dedup_by(&["k"]).unwrap();
        assert_eq!(d.nrows(), 2);
        assert_eq!(d.get(0, "v").unwrap(), &Value::Str("first".into()));
    }

    #[test]
    fn group_count_sorted_by_key() {
        let f = sample();
        let long = f.unpivot(&["id"], "time", "value").unwrap();
        let g = long.group_count(&["value"]).unwrap();
        // values: 3 appears once, 1 appears five times
        assert_eq!(g.nrows(), 2);
        assert_eq!(g.row(0), &[Value::Int(1), Value::Int(5)]);
        assert_eq!(g.row(1), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn group_sum_and_type_error() {
        let mut f = Frame::new(vec!["k", "w"]).unwrap();
        f.push_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        f.push_row(vec![Value::Int(1), Value::Int(3)]).unwrap();
        f.push_row(vec![Value::Int(2), Value::Null]).unwrap();
        let g = f.group_sum(&["k"], "w").unwrap();
        assert_eq!(g.row(0), &[Value::Int(1), Value::Int(5)]);
        assert_eq!(g.row(1), &[Value::Int(2), Value::Int(0)]);

        let mut bad = Frame::new(vec!["k", "w"]).unwrap();
        bad.push_row(vec![Value::Int(1), Value::Str("oops".into())])
            .unwrap();
        assert!(matches!(
            bad.group_sum(&["k"], "w"),
            Err(ColumnarError::TypeError { .. })
        ));
    }

    #[test]
    fn sort_by_multiple_columns() {
        let mut f = Frame::new(vec!["a", "b"]).unwrap();
        f.push_row(vec![Value::Int(2), Value::Int(1)]).unwrap();
        f.push_row(vec![Value::Int(1), Value::Int(9)]).unwrap();
        f.push_row(vec![Value::Int(1), Value::Int(3)]).unwrap();
        f.sort_by(&["a", "b"]).unwrap();
        assert_eq!(f.row(0), &[Value::Int(1), Value::Int(3)]);
        assert_eq!(f.row(1), &[Value::Int(1), Value::Int(9)]);
        assert_eq!(f.row(2), &[Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn join_inner_matches_keys() {
        let mut people = Frame::new(vec!["id", "gender"]).unwrap();
        people
            .push_row(vec![Value::Int(1), Value::Str("f".into())])
            .unwrap();
        people
            .push_row(vec![Value::Int(2), Value::Str("m".into())])
            .unwrap();
        let mut pubs = Frame::new(vec!["node", "t", "count"]).unwrap();
        pubs.push_row(vec![Value::Int(1), Value::Int(0), Value::Int(3)])
            .unwrap();
        pubs.push_row(vec![Value::Int(1), Value::Int(1), Value::Int(1)])
            .unwrap();
        pubs.push_row(vec![Value::Int(3), Value::Int(0), Value::Int(9)])
            .unwrap();
        let joined = people.join_inner(&pubs, &["id"], &["node"]).unwrap();
        // person 1 matches twice, person 2 not at all, node 3 has no person
        assert_eq!(joined.nrows(), 2);
        assert_eq!(joined.columns(), &["id", "gender", "t", "count"]);
        assert_eq!(joined.get(0, "count").unwrap(), &Value::Int(3));
        assert_eq!(joined.get(1, "count").unwrap(), &Value::Int(1));
    }

    #[test]
    fn join_inner_renames_colliding_columns() {
        let mut a = Frame::new(vec!["k", "v"]).unwrap();
        a.push_row(vec![Value::Int(1), Value::Int(10)]).unwrap();
        let mut b = Frame::new(vec!["k", "v"]).unwrap();
        b.push_row(vec![Value::Int(1), Value::Int(20)]).unwrap();
        let j = a.join_inner(&b, &["k"], &["k"]).unwrap();
        assert_eq!(j.columns(), &["k", "v", "right_v"]);
        assert_eq!(j.get(0, "right_v").unwrap(), &Value::Int(20));
    }

    #[test]
    fn join_inner_errors() {
        let a = Frame::new(vec!["k"]).unwrap();
        let b = Frame::new(vec!["k"]).unwrap();
        assert!(matches!(
            a.join_inner(&b, &["k"], &[]),
            Err(ColumnarError::ArityMismatch { .. })
        ));
        assert!(a.join_inner(&b, &["zzz"], &["k"]).is_err());
    }

    #[test]
    fn index_by_groups_row_ids() {
        let f = sample();
        let long = f.unpivot(&["id"], "time", "value").unwrap();
        let idx = long.index_by(&["id", "time"]).unwrap();
        let rows = idx
            .get(&vec![Value::Int(2), Value::Str("t2".into())])
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(long.row(rows[0])[2], Value::Int(1));
    }
}
