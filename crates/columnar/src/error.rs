//! Error types for the columnar engine.

use std::fmt;

/// Errors produced by frame and matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// A frame was created with two columns of the same name.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A row had the wrong number of values for the frame.
    ArityMismatch {
        /// Expected arity (number of columns).
        expected: usize,
        /// Arity of the offending row.
        got: usize,
    },
    /// Two frames with different schemas were combined.
    SchemaMismatch {
        /// Columns of the left frame.
        left: String,
        /// Columns of the right frame.
        right: String,
    },
    /// An operation required a different value type.
    TypeError {
        /// Column containing the offending value.
        column: String,
        /// Debug rendering of the value found.
        found: String,
    },
    /// Malformed input encountered while parsing delimited text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying IO failure (message only, kept `Eq`-friendly).
    Io(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::DuplicateColumn(c) => write!(f, "duplicate column name {c:?}"),
            ColumnarError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            ColumnarError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, got {got}"
                )
            }
            ColumnarError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: [{left}] vs [{right}]")
            }
            ColumnarError::TypeError { column, found } => {
                write!(f, "type error in column {column:?}: found {found}")
            }
            ColumnarError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ColumnarError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

impl From<std::io::Error> for ColumnarError {
    fn from(e: std::io::Error) -> Self {
        ColumnarError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ColumnarError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = ColumnarError::Parse {
            line: 7,
            message: "bad int".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: ColumnarError = io.into();
        assert!(matches!(e, ColumnarError::Io(_)));
    }
}
