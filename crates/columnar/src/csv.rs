//! Minimal delimited-text IO for frames.
//!
//! The GraphTempo reference implementation ships its datasets as
//! tab/space-separated text files (node presence, edge presence, one file
//! per attribute). This module reads and writes [`Frame`]s in that style
//! without pulling in an external CSV dependency.
//!
//! Cells are parsed as `Int` when they look like integers, `Null` when they
//! equal the `-` placeholder, and `Str` otherwise.

use crate::error::ColumnarError;
use crate::frame::Frame;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Parses one cell.
fn parse_cell(s: &str) -> Value {
    if s == "-" {
        return Value::Null;
    }
    match s.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(s.to_owned()),
    }
}

/// Renders one cell (inverse of [`parse_cell`] for `Int`/`Null`/`Str`).
fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => "-".to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Cat(c) => format!("#{c}"),
        Value::Str(s) => s.clone(),
    }
}

/// Reads a frame from delimited text with a header line.
///
/// # Errors
/// Returns an error on IO failure, empty input, duplicate header names, or
/// rows whose arity differs from the header.
pub fn read_frame<R: BufRead>(reader: R, delim: char) -> Result<Frame, ColumnarError> {
    let mut lines = reader.lines().enumerate();
    let header = loop {
        match lines.next() {
            None => {
                return Err(ColumnarError::Parse {
                    line: 0,
                    message: "empty input: missing header".to_owned(),
                })
            }
            Some((_, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
        }
    };
    let cols: Vec<String> = header.split(delim).map(|s| s.trim().to_owned()).collect();
    let ncols = cols.len();
    let mut frame = Frame::new(cols)?;
    for (i, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<Value> = line.split(delim).map(|s| parse_cell(s.trim())).collect();
        if cells.len() != ncols {
            return Err(ColumnarError::Parse {
                line: i + 1,
                message: format!("expected {ncols} cells, got {}", cells.len()),
            });
        }
        frame.push_row(cells)?;
    }
    Ok(frame)
}

/// Writes a frame as delimited text with a header line.
///
/// # Errors
/// Returns an error on IO failure.
pub fn write_frame<W: Write>(
    frame: &Frame,
    writer: &mut W,
    delim: char,
) -> Result<(), ColumnarError> {
    let mut d = [0u8; 4];
    let delim_str: &str = delim.encode_utf8(&mut d);
    writeln!(writer, "{}", frame.columns().join(delim_str))?;
    for row in frame.iter_rows() {
        let cells: Vec<String> = row.iter().map(render_cell).collect();
        writeln!(writer, "{}", cells.join(delim_str))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut f = Frame::new(vec!["id", "t0", "t1"]).unwrap();
        f.push_row(vec![Value::Str("u1".into()), Value::Int(3), Value::Null])
            .unwrap();
        f.push_row(vec![Value::Str("u2".into()), Value::Int(1), Value::Int(1)])
            .unwrap();
        let mut buf = Vec::new();
        write_frame(&f, &mut buf, '\t').unwrap();
        let g = read_frame(Cursor::new(buf), '\t').unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn parses_null_placeholder_and_ints() {
        let text = "id\tv\nu1\t-\nu2\t42\n";
        let f = read_frame(Cursor::new(text), '\t').unwrap();
        assert_eq!(f.get(0, "v").unwrap(), &Value::Null);
        assert_eq!(f.get(1, "v").unwrap(), &Value::Int(42));
    }

    #[test]
    fn skips_blank_lines() {
        let text = "a\tb\n\n1\t2\n\n";
        let f = read_frame(Cursor::new(text), '\t').unwrap();
        assert_eq!(f.nrows(), 1);
    }

    #[test]
    fn empty_input_errors() {
        let r = read_frame(Cursor::new(""), '\t');
        assert!(matches!(r, Err(ColumnarError::Parse { line: 0, .. })));
    }

    #[test]
    fn ragged_row_errors() {
        let text = "a\tb\n1\t2\t3\n";
        let r = read_frame(Cursor::new(text), '\t');
        assert!(matches!(r, Err(ColumnarError::Parse { .. })));
    }
}
