//! Hybrid dense/sparse presence columns.
//!
//! A transposed presence column ("which entities exist at time point `t`")
//! is often extremely sparse on large graphs: a 1M-node graph stores each
//! column as 15 625 packed words even when only a few hundred nodes are
//! alive. [`PresenceColumn`] keeps the dense [`BitVec`] layout for columns
//! where word-parallel folds win, and switches to a sorted-ID list when the
//! column holds fewer set bits than the dense form holds *words* — at that
//! point walking the IDs touches strictly less memory than reading the
//! words. The op surface mirrors the dense accumulator kernels used by the
//! chain-incremental cursor, so callers fold either representation into a
//! dense accumulator without branching at every word.
//!
//! Columns are **zero-extended**: a column may be *shorter* than the dense
//! operands it folds into, in which case its missing suffix reads as all
//! zeros. This is what lets a versioned snapshot carry a time point's
//! column forward unchanged while the entity space keeps growing —
//! entities created after the column's epoch are absent at it by
//! construction. Dense operands of one call must still agree with each
//! other exactly; only the column itself may be short.

use crate::bitset::{kernels, BitVec};

/// Number of bits per storage word (kept in sync with `bitset`).
const WORD_BITS: usize = 64;

/// Representation policy for presence columns built by
/// [`BitMatrix::transposed_with`](crate::BitMatrix::transposed_with).
///
/// The policy is always an explicit parameter: nothing in the library reads
/// the environment. Binaries that honor `GRAPHTEMPO_SPARSE` read it once at
/// startup (via [`SparseMode::from_env_value`]) and pass the result down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SparseMode {
    /// Pick per column: sparse iff the column has fewer set bits than the
    /// dense form has words (`nnz * 64 <= nbits`).
    #[default]
    Auto,
    /// Every column stays dense (the pre-hybrid layout; ablation baseline).
    ForceDense,
    /// Every column goes sparse regardless of density (worst-case probe of
    /// the sparse kernels; ablation and property tests).
    ForceSparse,
}

impl SparseMode {
    /// Parses the conventional `GRAPHTEMPO_SPARSE` value. `dense`/`off`/`0`
    /// force dense, `sparse`/`on`/`force`/`1` force sparse, anything else
    /// (including an unset variable) is [`SparseMode::Auto`].
    #[must_use]
    pub fn from_env_value(value: Option<&str>) -> SparseMode {
        match value {
            Some("dense") | Some("off") | Some("0") => SparseMode::ForceDense,
            Some("sparse") | Some("on") | Some("force") | Some("1") => SparseMode::ForceSparse,
            _ => SparseMode::Auto,
        }
    }
}

/// Widest bit-space a sparse column can address with `u32` entity IDs.
const SPARSE_MAX_BITS: usize = u32::MAX as usize + 1;

/// Asserts the column fits inside a dense operand (shorter columns are
/// legal and read as zero-extended).
#[inline]
fn check_col_width(col: usize, operand: usize) {
    assert!(
        col <= operand,
        "presence column wider than operand: {col} vs {operand}"
    );
}

/// Asserts two dense operands of one call agree exactly.
#[inline]
fn check_same_width(a: usize, b: usize) {
    assert_eq!(a, b, "bit vector width mismatch: {a} vs {b}");
}

/// Applies the `mode` policy and then vetoes the sparse representation for
/// columns wider than the `u32` ID range. Returns `(sparse, vetoed)`;
/// `vetoed` is true when the policy *wanted* sparse but the width forced
/// dense (the caller records this in a warning counter).
fn choose_representation(nbits: usize, nnz: usize, mode: SparseMode) -> (bool, bool) {
    let want_sparse = match mode {
        SparseMode::ForceDense => false,
        SparseMode::ForceSparse => true,
        SparseMode::Auto => nnz * WORD_BITS <= nbits,
    };
    if want_sparse && nbits > SPARSE_MAX_BITS {
        (false, true)
    } else {
        (want_sparse, false)
    }
}

/// Sorted strictly-increasing entity IDs of the set bits of one column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseIds {
    nbits: usize,
    ids: Vec<u32>,
}

/// One transposed presence column in either representation.
///
/// Equality is structural: a dense and a sparse column holding the same
/// bits compare *unequal*. Compare contents via
/// [`PresenceColumn::to_bitvec`] or the op surface when representation
/// independence is needed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PresenceColumn {
    /// Packed-word representation; ops are word-parallel folds.
    Dense(BitVec),
    /// Sorted-ID representation; ops walk the IDs and probe bitmap words.
    Sparse(SparseIds),
}

impl PresenceColumn {
    /// Wraps a [`BitVec`] choosing the representation per `mode`.
    ///
    /// Columns wider than the `u32` ID range can never go sparse: the
    /// policy is overridden to dense and the
    /// `columnar.presence.sparse_overflow_forced_dense` warning counter is
    /// incremented instead of failing the build.
    #[must_use]
    pub fn from_bitvec(bv: BitVec, mode: SparseMode) -> Self {
        let (sparse, vetoed) = choose_representation(bv.len(), bv.count_ones(), mode);
        if vetoed {
            tempo_instrument::global()
                .counter("columnar.presence.sparse_overflow_forced_dense")
                .inc();
        }
        if sparse {
            let ids: Vec<u32> = bv.iter_ones().map(|i| i as u32).collect();
            PresenceColumn::Sparse(SparseIds {
                nbits: bv.len(),
                ids,
            })
        } else {
            PresenceColumn::Dense(bv)
        }
    }

    /// Crate-internal constructor from pre-packed words (the blocked
    /// transpose builds column words directly).
    pub(crate) fn from_raw_words(nbits: usize, words: Vec<u64>, mode: SparseMode) -> Self {
        Self::from_bitvec(BitVec::from_raw_words(nbits, words), mode)
    }

    /// Width of the column in bits (source-matrix rows).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            PresenceColumn::Dense(bv) => bv.len(),
            PresenceColumn::Sparse(s) => s.nbits,
        }
    }

    /// True if the column has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this column uses the sorted-ID representation.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self, PresenceColumn::Sparse(_))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        match self {
            PresenceColumn::Dense(bv) => bv.count_ones(),
            PresenceColumn::Sparse(s) => s.ids.len(),
        }
    }

    /// Fraction of set bits, in `[0, 1]`; zero-width columns report 0.
    pub fn density(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.count_ones() as f64 / self.len() as f64
        }
    }

    /// Reads bit `i`; positions at or beyond `len()` read as zero (the
    /// zero-extension contract — an entity created after this column's
    /// epoch is absent at its time point).
    pub fn get(&self, i: usize) -> bool {
        match self {
            PresenceColumn::Dense(bv) => i < bv.len() && bv.get(i),
            PresenceColumn::Sparse(s) => i < s.nbits && s.ids.binary_search(&(i as u32)).is_ok(),
        }
    }

    /// True if both columns hold the same set of bits, ignoring stored
    /// width (zero-extension) and representation. This is the equality an
    /// incrementally maintained transposed index satisfies against a
    /// from-scratch rebuild.
    pub fn bits_eq(&self, other: &PresenceColumn) -> bool {
        self.iter_ones().eq(other.iter_ones())
    }

    /// Iterates positions of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let (dense, sparse) = match self {
            PresenceColumn::Dense(bv) => (Some(bv), None),
            PresenceColumn::Sparse(s) => (None, Some(s)),
        };
        dense.into_iter().flat_map(BitVec::iter_ones).chain(
            sparse
                .into_iter()
                .flat_map(|s| s.ids.iter().map(|&i| i as usize)),
        )
    }

    /// Materializes the column as a dense [`BitVec`] (tests and one-off
    /// conversions; hot paths use the `*_into` ops instead).
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        match self {
            PresenceColumn::Dense(bv) => bv.clone(),
            PresenceColumn::Sparse(s) => {
                BitVec::from_indices(s.nbits, s.ids.iter().map(|&i| i as usize))
            }
        }
    }

    /// Validates the representation invariants: a dense column satisfies
    /// [`BitVec::check_invariants`]; a sparse column's IDs are strictly
    /// increasing and all below `len()` (the galloping intersection and
    /// every word-walk kernel assume sorted unique in-range IDs).
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        match self {
            PresenceColumn::Dense(bv) => bv.check_invariants(),
            PresenceColumn::Sparse(s) => {
                for w in s.ids.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!(
                            "sparse column IDs not strictly increasing: {} then {}",
                            w[0], w[1]
                        ));
                    }
                }
                if let Some(&last) = s.ids.last() {
                    if last as usize >= s.nbits {
                        return Err(format!("sparse column ID {last} out of range {}", s.nbits));
                    }
                }
                Ok(())
            }
        }
    }

    /// Overwrites `out` with this column's bits (`out = col`), zeroing any
    /// suffix of `out` beyond the column's stored width.
    ///
    /// # Panics
    /// Panics if the column is wider than `out`.
    pub fn copy_into(&self, out: &mut BitVec) {
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), out.len());
                let wl = bv.words().len();
                let words = out.words_mut();
                words[..wl].copy_from_slice(bv.words());
                words[wl..].fill(0);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(out);
                out.clear_all();
                let words = out.words_mut();
                for &id in &s.ids {
                    words[id as usize / WORD_BITS] |= 1u64 << (id as usize % WORD_BITS);
                }
            }
        }
    }

    /// `acc |= col`, the cursor's union-extension fold.
    ///
    /// # Panics
    /// Panics if the column is wider than `acc`.
    pub fn or_into(&self, acc: &mut BitVec) {
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), acc.len());
                let wl = bv.words().len();
                kernels::or_assign(bv.words(), &mut acc.words_mut()[..wl]);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(acc);
                let words = acc.words_mut();
                for &id in &s.ids {
                    words[id as usize / WORD_BITS] |= 1u64 << (id as usize % WORD_BITS);
                }
            }
        }
    }

    /// `acc &= col`, the cursor's intersection-extension fold. The sparse
    /// path zeroes the gaps between occupied words with slice fills
    /// (memset-speed) and masks only the words the ID list touches, so the
    /// traffic is one write stream plus O(nnz) — less than the dense
    /// two-read-one-write AND, not just competitive with it.
    ///
    /// # Panics
    /// Panics if the column is wider than `acc`.
    pub fn and_assign_into(&self, acc: &mut BitVec) {
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), acc.len());
                let wl = bv.words().len();
                let words = acc.words_mut();
                kernels::and_assign(bv.words(), &mut words[..wl]);
                // zero-extension: the column is all-zero past its width
                words[wl..].fill(0);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(acc);
                let words = acc.words_mut();
                let mut next = 0usize; // first word not yet finalized
                let mut p = 0usize;
                while p < s.ids.len() {
                    let w = s.ids[p] as usize / WORD_BITS;
                    let mut mask = 0u64;
                    while p < s.ids.len() && s.ids[p] as usize / WORD_BITS == w {
                        mask |= 1u64 << (s.ids[p] as usize % WORD_BITS);
                        p += 1;
                    }
                    words[next..w].fill(0);
                    words[w] &= mask;
                    next = w + 1;
                }
                words[next..].fill(0);
            }
        }
    }

    /// `out = col & other`.
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or `other` and
    /// `out` disagree in width.
    pub fn and_into(&self, other: &BitVec, out: &mut BitVec) {
        check_same_width(other.len(), out.len());
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), other.len());
                let wl = bv.words().len();
                kernels::and_into(bv.words(), &other.words()[..wl], &mut out.words_mut()[..wl]);
                out.words_mut()[wl..].fill(0);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(other);
                out.clear_all();
                let ow = other.words();
                let dst = out.words_mut();
                for &id in &s.ids {
                    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    dst[w] |= ow[w] & (1u64 << b);
                }
            }
        }
    }

    /// `out = col & !other`.
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or `other` and
    /// `out` disagree in width.
    pub fn and_not_into(&self, other: &BitVec, out: &mut BitVec) {
        check_same_width(other.len(), out.len());
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), other.len());
                let wl = bv.words().len();
                kernels::and_not_into(bv.words(), &other.words()[..wl], &mut out.words_mut()[..wl]);
                out.words_mut()[wl..].fill(0);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(other);
                out.clear_all();
                let ow = other.words();
                let dst = out.words_mut();
                for &id in &s.ids {
                    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    dst[w] |= !ow[w] & (1u64 << b);
                }
            }
        }
    }

    /// `out = other & !col` (the column as the *subtrahend*; difference
    /// events need both orders). Bits of `other` past the column's stored
    /// width survive untouched (the column is zero there).
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or `other` and
    /// `out` disagree in width.
    pub fn and_not_from(&self, other: &BitVec, out: &mut BitVec) {
        check_same_width(other.len(), out.len());
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), other.len());
                out.copy_from(other);
                let wl = bv.words().len();
                kernels::and_not_assign(bv.words(), &mut out.words_mut()[..wl]);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(other);
                out.copy_from(other);
                let dst = out.words_mut();
                for &id in &s.ids {
                    dst[id as usize / WORD_BITS] &= !(1u64 << (id as usize % WORD_BITS));
                }
            }
        }
    }

    /// `acc |= col & other`, the fused incident-endpoint fix-up fold.
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or `other` and
    /// `acc` disagree in width.
    pub fn or_and_into(&self, other: &BitVec, acc: &mut BitVec) {
        check_same_width(other.len(), acc.len());
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), other.len());
                let wl = bv.words().len();
                kernels::or_and_into(bv.words(), &other.words()[..wl], &mut acc.words_mut()[..wl]);
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(other);
                let ow = other.words();
                let dst = acc.words_mut();
                for &id in &s.ids {
                    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    dst[w] |= ow[w] & (1u64 << b);
                }
            }
        }
    }

    /// `popcount(col & other)` against a dense mask: word-parallel for a
    /// dense column, one bitmap probe per ID for a sparse one.
    ///
    /// # Panics
    /// Panics if the column is wider than `other`.
    pub fn count_ones_and_dense(&self, other: &BitVec) -> usize {
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), other.len());
                let wl = bv.words().len();
                kernels::count_ones_and(bv.words(), &other.words()[..wl])
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(other);
                let ow = other.words();
                let mut count = 0usize;
                for &id in &s.ids {
                    let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    count += ((ow[w] >> b) & 1) as usize;
                }
                count
            }
        }
    }

    /// `popcount(col & a & b)`: word-parallel for a dense column, two
    /// bitmap probes per ID for a sparse one.
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or `a` and `b`
    /// disagree in width.
    pub fn count_ones_and2(&self, a: &BitVec, b: &BitVec) -> usize {
        check_same_width(a.len(), b.len());
        match self {
            PresenceColumn::Dense(bv) => {
                check_col_width(bv.len(), a.len());
                let wl = bv.words().len();
                kernels::count_ones_and3(bv.words(), &a.words()[..wl], &b.words()[..wl])
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(a);
                let (aw, bw) = (a.words(), b.words());
                let mut count = 0usize;
                for &id in &s.ids {
                    let (w, bit) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    count += ((aw[w] & bw[w]) >> bit & 1) as usize;
                }
                count
            }
        }
    }

    /// `popcount(col & (!drop | rescue) [& sel])`, the fused Definition-2.5
    /// node count with the column as the *keep* side: a kept-side entity
    /// survives unless it is on the drop side and not rescued by an
    /// incident kept edge. Word-parallel for a dense column; two or three
    /// bitmap probes per ID for a sparse one. No mask is materialized.
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or the dense
    /// operands disagree in width.
    pub fn count_difference_keep(
        &self,
        drop: &BitVec,
        rescue: &BitVec,
        sel: Option<&BitVec>,
    ) -> usize {
        check_same_width(drop.len(), rescue.len());
        if let Some(m) = sel {
            check_same_width(drop.len(), m.len());
        }
        match self {
            PresenceColumn::Dense(bv) => {
                // the column is the keep side: bits past its width are
                // zero, so only the word prefix can contribute
                check_col_width(bv.len(), drop.len());
                let wl = bv.words().len();
                match sel {
                    None => kernels::count_difference(
                        bv.words(),
                        &drop.words()[..wl],
                        &rescue.words()[..wl],
                    ),
                    Some(m) => kernels::count_difference_sel(
                        bv.words(),
                        &drop.words()[..wl],
                        &rescue.words()[..wl],
                        &m.words()[..wl],
                    ),
                }
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(drop);
                let (dw, rw) = (drop.words(), rescue.words());
                let sw = sel.map(|m| {
                    s.check_width(m);
                    m.words()
                });
                let mut count = 0usize;
                for &id in &s.ids {
                    let (w, bit) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    let kept = (!dw[w] | rw[w]) >> bit & 1;
                    let selected = sw.map_or(1, |m| m[w] >> bit & 1);
                    count += (kept & selected) as usize;
                }
                count
            }
        }
    }

    /// `popcount(keep & (!col | rescue) [& sel])`, the fused
    /// Definition-2.5 node count with the column as the *drop* side
    /// (subtrahend). The sparse path counts the dense keep side once and
    /// subtracts the IDs it actually removes
    /// (`|keep ∩ sel| − |keep ∩ col ∩ !rescue ∩ sel|`).
    ///
    /// # Panics
    /// Panics if the column is wider than the operands, or the dense
    /// operands disagree in width.
    pub fn count_difference_drop(
        &self,
        keep: &BitVec,
        rescue: &BitVec,
        sel: Option<&BitVec>,
    ) -> usize {
        check_same_width(keep.len(), rescue.len());
        if let Some(m) = sel {
            check_same_width(keep.len(), m.len());
        }
        match self {
            PresenceColumn::Dense(bv) => {
                // the column is the drop side: past its width `!col` is
                // all ones, so every selected keep bit there survives —
                // fused prefix count plus a plain popcount suffix
                check_col_width(bv.len(), keep.len());
                let wl = bv.words().len();
                let kw = keep.words();
                let prefix = match sel {
                    None => kernels::count_difference(&kw[..wl], bv.words(), &rescue.words()[..wl]),
                    Some(m) => kernels::count_difference_sel(
                        &kw[..wl],
                        bv.words(),
                        &rescue.words()[..wl],
                        &m.words()[..wl],
                    ),
                };
                let suffix = match sel {
                    None => kernels::count_ones(&kw[wl..]),
                    Some(m) => kernels::count_ones_and(&kw[wl..], &m.words()[wl..]),
                };
                prefix + suffix
            }
            PresenceColumn::Sparse(s) => {
                s.check_width(keep);
                let (kw, rw) = (keep.words(), rescue.words());
                let sw = sel.map(|m| {
                    s.check_width(m);
                    m.words()
                });
                let base = match sel {
                    None => keep.count_ones(),
                    Some(m) => keep.count_ones_and(m),
                };
                let mut removed = 0usize;
                for &id in &s.ids {
                    let (w, bit) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
                    let dropped = (kw[w] & !rw[w]) >> bit & 1;
                    let selected = sw.map_or(1, |m| m[w] >> bit & 1);
                    removed += (dropped & selected) as usize;
                }
                base - removed
            }
        }
    }

    /// `popcount(col & other)` between two columns: word-parallel for
    /// dense×dense, a bitmap probe per ID when exactly one side is sparse,
    /// and a galloping sorted-list intersection for sparse×sparse.
    ///
    /// The columns may differ in stored width (zero-extension): the
    /// intersection lives entirely in the common prefix.
    pub fn count_ones_and(&self, other: &PresenceColumn) -> usize {
        match (self, other) {
            (PresenceColumn::Sparse(a), PresenceColumn::Sparse(b)) => {
                if a.ids.len() <= b.ids.len() {
                    galloping_intersect_count(&a.ids, &b.ids)
                } else {
                    galloping_intersect_count(&b.ids, &a.ids)
                }
            }
            (PresenceColumn::Sparse(a), PresenceColumn::Dense(bv))
            | (PresenceColumn::Dense(bv), PresenceColumn::Sparse(a)) => {
                sparse_dense_intersect_count(&a.ids, bv)
            }
            (PresenceColumn::Dense(a), PresenceColumn::Dense(b)) => {
                let n = a.words().len().min(b.words().len());
                // the shorter side's clean tail masks the longer side's
                // partial boundary word
                kernels::count_ones_and(&a.words()[..n], &b.words()[..n])
            }
        }
    }
}

/// Probe count of sorted IDs against a dense bitmap that may be *shorter*
/// than the ID space: IDs past the bitmap's storage cannot intersect
/// (zero-extension) and terminate the scan early since the list is sorted.
fn sparse_dense_intersect_count(ids: &[u32], bv: &BitVec) -> usize {
    let ow = bv.words();
    let mut count = 0usize;
    for &id in ids {
        let (w, b) = (id as usize / WORD_BITS, id as usize % WORD_BITS);
        match ow.get(w) {
            Some(&x) => count += ((x >> b) & 1) as usize,
            None => break,
        }
    }
    count
}

impl SparseIds {
    /// Sparse columns only require the operand to cover the ID space
    /// (zero-extension lets the column be shorter than the operand; every
    /// stored ID is below `nbits`, hence in range for the operand too).
    #[inline]
    fn check_width(&self, other: &BitVec) {
        check_col_width(self.nbits, other.len());
    }
}

/// Counts common elements of two sorted strictly-increasing ID lists,
/// iterating the smaller list and galloping (exponential probe + binary
/// search) through the remaining suffix of the larger — O(s·log(l/s)),
/// which beats a linear merge whenever the sizes are lopsided.
fn galloping_intersect_count(small: &[u32], mut large: &[u32]) -> usize {
    let mut count = 0usize;
    for &x in small {
        if large.is_empty() {
            break;
        }
        let mut step = 1usize;
        while step < large.len() && large[step - 1] < x {
            step <<= 1;
        }
        let lo = step >> 1;
        let hi = step.min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(i) => {
                count += 1;
                large = &large[lo + i + 1..];
            }
            Err(i) => {
                large = &large[lo + i..];
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(nbits: usize, ids: &[usize]) -> PresenceColumn {
        PresenceColumn::from_bitvec(
            BitVec::from_indices(nbits, ids.iter().copied()),
            SparseMode::ForceSparse,
        )
    }

    fn dense(nbits: usize, ids: &[usize]) -> PresenceColumn {
        PresenceColumn::from_bitvec(
            BitVec::from_indices(nbits, ids.iter().copied()),
            SparseMode::ForceDense,
        )
    }

    #[test]
    fn auto_threshold_picks_by_density() {
        // 128 bits = 2 words: sparse iff nnz <= 2
        let lo = PresenceColumn::from_bitvec(BitVec::from_indices(128, [5, 99]), SparseMode::Auto);
        assert!(lo.is_sparse());
        let hi =
            PresenceColumn::from_bitvec(BitVec::from_indices(128, [5, 9, 99]), SparseMode::Auto);
        assert!(!hi.is_sparse());
    }

    #[test]
    fn env_value_parses_the_conventional_tokens() {
        for v in ["dense", "off", "0"] {
            assert_eq!(SparseMode::from_env_value(Some(v)), SparseMode::ForceDense);
        }
        for v in ["sparse", "on", "force", "1"] {
            assert_eq!(SparseMode::from_env_value(Some(v)), SparseMode::ForceSparse);
        }
        assert_eq!(SparseMode::from_env_value(None), SparseMode::Auto);
        assert_eq!(SparseMode::from_env_value(Some("bogus")), SparseMode::Auto);
        assert_eq!(SparseMode::default(), SparseMode::Auto);
    }

    // Boundary check on the pure chooser: exercising the veto through
    // `from_bitvec` would need a 512 MiB allocation.
    #[test]
    fn u32_overflow_vetoes_sparse_without_panicking() {
        // exactly at the limit: the policy is honored
        assert_eq!(
            choose_representation(SPARSE_MAX_BITS, 0, SparseMode::ForceSparse),
            (true, false)
        );
        // one past the limit: sparse is vetoed, never chosen
        assert_eq!(
            choose_representation(SPARSE_MAX_BITS + 1, 0, SparseMode::ForceSparse),
            (false, true)
        );
        assert_eq!(
            choose_representation(SPARSE_MAX_BITS + 1, 0, SparseMode::Auto),
            (false, true)
        );
        // forced dense never counts as a veto
        assert_eq!(
            choose_representation(SPARSE_MAX_BITS + 1, 0, SparseMode::ForceDense),
            (false, false)
        );
    }

    #[test]
    fn basic_accessors_agree_across_representations() {
        let ids = [0usize, 5, 63, 64, 65, 129];
        let s = sparse(130, &ids);
        let d = dense(130, &ids);
        assert_eq!(s.len(), d.len());
        assert_eq!(s.count_ones(), d.count_ones());
        assert!((s.density() - d.density()).abs() < 1e-12);
        for i in 0..130 {
            assert_eq!(s.get(i), d.get(i), "bit {i}");
        }
        assert_eq!(
            s.iter_ones().collect::<Vec<_>>(),
            d.iter_ones().collect::<Vec<_>>()
        );
        assert_eq!(s.to_bitvec(), d.to_bitvec());
        assert_eq!(s.check_invariants(), Ok(()));
        assert_eq!(d.check_invariants(), Ok(()));
    }

    #[test]
    fn fold_ops_match_dense_oracle() {
        let col_ids = [1usize, 63, 64, 100];
        let other = BitVec::from_indices(130, [1, 64, 99, 129]);
        let s = sparse(130, &col_ids);
        let d = dense(130, &col_ids);
        let mut so = BitVec::zeros(130);
        let mut dd = BitVec::zeros(130);

        for (name, op) in [
            (
                "copy_into",
                (|c: &PresenceColumn, _o: &BitVec, out: &mut BitVec| c.copy_into(out))
                    as fn(&PresenceColumn, &BitVec, &mut BitVec),
            ),
            ("and_into", |c, o, out| c.and_into(o, out)),
            ("and_not_into", |c, o, out| c.and_not_into(o, out)),
            ("and_not_from", |c, o, out| c.and_not_from(o, out)),
        ] {
            so.clear_all();
            dd.clear_all();
            op(&s, &other, &mut so);
            op(&d, &other, &mut dd);
            assert_eq!(so, dd, "{name}");
        }

        // accumulating ops start from a non-trivial accumulator
        let acc0 = BitVec::from_indices(130, [2, 63, 128]);
        for (name, op) in [
            (
                "or_into",
                (|c: &PresenceColumn, _o: &BitVec, acc: &mut BitVec| c.or_into(acc))
                    as fn(&PresenceColumn, &BitVec, &mut BitVec),
            ),
            ("and_assign_into", |c, _o, acc| c.and_assign_into(acc)),
            ("or_and_into", |c, o, acc| c.or_and_into(o, acc)),
        ] {
            so.copy_from(&acc0);
            dd.copy_from(&acc0);
            op(&s, &other, &mut so);
            op(&d, &other, &mut dd);
            assert_eq!(so, dd, "{name}");
        }

        assert_eq!(
            s.count_ones_and_dense(&other),
            d.count_ones_and_dense(&other)
        );
    }

    #[test]
    fn count_ones_and_all_representation_pairs() {
        let a_ids = [0usize, 5, 64, 100, 129];
        let b_ids = [5usize, 63, 64, 128];
        let expect = 2; // {5, 64}
        for a in [sparse(130, &a_ids), dense(130, &a_ids)] {
            for b in [sparse(130, &b_ids), dense(130, &b_ids)] {
                assert_eq!(a.count_ones_and(&b), expect, "{a:?} x {b:?}");
            }
        }
    }

    #[test]
    fn galloping_handles_lopsided_and_disjoint_lists() {
        let small: Vec<u32> = vec![0, 500, 999];
        let large: Vec<u32> = (0..1000).collect();
        assert_eq!(galloping_intersect_count(&small, &large), 3);
        let odd: Vec<u32> = (0..1000).filter(|x| x % 2 == 1).collect();
        let even: Vec<u32> = (0..1000).filter(|x| x % 2 == 0).collect();
        assert_eq!(galloping_intersect_count(&small, &odd), 1); // 999
        assert_eq!(galloping_intersect_count(&[], &even), 0);
        assert_eq!(galloping_intersect_count(&small, &[]), 0);
    }

    #[test]
    fn empty_and_full_columns() {
        for n in [0usize, 63, 64, 65] {
            let none = sparse(n, &[]);
            assert_eq!(none.count_ones(), 0);
            assert_eq!(none.check_invariants(), Ok(()));
            let all: Vec<usize> = (0..n).collect();
            let full = sparse(n, &all);
            assert_eq!(full.count_ones(), n);
            assert_eq!(full.check_invariants(), Ok(()));
            let mut acc = BitVec::ones(n);
            full.and_assign_into(&mut acc);
            assert_eq!(acc.count_ones(), n);
            none.and_assign_into(&mut acc);
            assert!(acc.is_zero());
        }
    }

    #[test]
    #[should_panic(expected = "wider than operand")]
    fn column_wider_than_operand_panics() {
        let s = sparse(12, &[3]);
        let mut acc = BitVec::zeros(11);
        s.or_into(&mut acc);
    }

    #[test]
    #[should_panic(expected = "wider than operand")]
    fn dense_column_wider_than_operand_panics() {
        let d = dense(12, &[3]);
        let mut acc = BitVec::zeros(11);
        d.and_assign_into(&mut acc);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn dense_operand_pair_mismatch_panics() {
        let d = dense(10, &[3]);
        let other = BitVec::zeros(12);
        let mut out = BitVec::zeros(11);
        d.and_into(&other, &mut out);
    }

    /// Every op on a short column against wider operands must agree with
    /// the same op on the column explicitly zero-extended to full width.
    #[test]
    fn short_columns_fold_as_zero_extended() {
        let col_ids = [1usize, 63, 64, 69];
        let wide = 130usize;
        let other = BitVec::from_indices(wide, [1, 64, 69, 99, 129]);
        let acc0 = BitVec::from_indices(wide, [2, 63, 69, 100, 128]);
        for short in [sparse(70, &col_ids), dense(70, &col_ids)] {
            // oracle: same bits stored at the full operand width
            let full = PresenceColumn::from_bitvec(
                BitVec::from_indices(wide, col_ids.iter().copied()),
                if short.is_sparse() {
                    SparseMode::ForceSparse
                } else {
                    SparseMode::ForceDense
                },
            );
            let mut got = BitVec::zeros(wide);
            let mut want = BitVec::zeros(wide);

            short.copy_into(&mut got);
            full.copy_into(&mut want);
            assert_eq!(got, want, "copy_into");

            short.and_into(&other, &mut got);
            full.and_into(&other, &mut want);
            assert_eq!(got, want, "and_into");

            short.and_not_into(&other, &mut got);
            full.and_not_into(&other, &mut want);
            assert_eq!(got, want, "and_not_into");

            short.and_not_from(&other, &mut got);
            full.and_not_from(&other, &mut want);
            assert_eq!(got, want, "and_not_from");

            got.copy_from(&acc0);
            want.copy_from(&acc0);
            short.or_into(&mut got);
            full.or_into(&mut want);
            assert_eq!(got, want, "or_into");

            got.copy_from(&acc0);
            want.copy_from(&acc0);
            short.and_assign_into(&mut got);
            full.and_assign_into(&mut want);
            assert_eq!(got, want, "and_assign_into");

            got.copy_from(&acc0);
            want.copy_from(&acc0);
            short.or_and_into(&other, &mut got);
            full.or_and_into(&other, &mut want);
            assert_eq!(got, want, "or_and_into");

            assert_eq!(
                short.count_ones_and_dense(&other),
                full.count_ones_and_dense(&other),
                "count_ones_and_dense"
            );
            assert_eq!(
                short.count_ones_and2(&other, &acc0),
                full.count_ones_and2(&other, &acc0),
                "count_ones_and2"
            );
            for sel in [None, Some(&acc0)] {
                assert_eq!(
                    short.count_difference_keep(&other, &acc0, sel),
                    full.count_difference_keep(&other, &acc0, sel),
                    "count_difference_keep sel={}",
                    sel.is_some()
                );
                assert_eq!(
                    short.count_difference_drop(&other, &acc0, sel),
                    full.count_difference_drop(&other, &acc0, sel),
                    "count_difference_drop sel={}",
                    sel.is_some()
                );
            }
            assert!(short.bits_eq(&full), "bits_eq across widths");
        }
    }

    #[test]
    fn count_ones_and_mixed_widths_all_representation_pairs() {
        // short column {1, 64} x long column {1, 64, 100}: intersection 2
        let a_ids = [1usize, 64];
        let b_ids = [1usize, 64, 100];
        for a in [sparse(70, &a_ids), dense(70, &a_ids)] {
            for b in [sparse(130, &b_ids), dense(130, &b_ids)] {
                assert_eq!(a.count_ones_and(&b), 2, "{a:?} x {b:?}");
                assert_eq!(b.count_ones_and(&a), 2, "{b:?} x {a:?}");
            }
        }
    }

    #[test]
    fn get_reads_past_len_as_zero() {
        let s = sparse(10, &[3, 9]);
        let d = dense(10, &[3, 9]);
        for col in [s, d] {
            assert!(col.get(3) && col.get(9));
            assert!(!col.get(10) && !col.get(1000));
        }
    }
}
