//! Packed bit vectors and bit matrices.
//!
//! The GraphTempo paper (§4) stores the existence of every node and edge as a
//! binary vector over the time domain: element `t` is 1 iff the entity exists
//! at time point `t`. [`BitVec`] is one such vector; [`BitMatrix`] stacks one
//! row per entity, which is exactly the paper's labeled arrays **V** and
//! **E** (the labels themselves live with the caller).

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// A fixed-width packed bit vector.
///
/// Used both as an entity's presence vector over the time domain and as a
/// column mask selecting a subset of time points.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    nbits: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.nbits {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl BitVec {
    /// Creates an all-zero vector of `nbits` bits.
    #[must_use]
    pub fn zeros(nbits: usize) -> Self {
        BitVec {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// Creates an all-one vector of `nbits` bits.
    #[must_use]
    pub fn ones(nbits: usize) -> Self {
        let mut v = BitVec {
            nbits,
            words: vec![u64::MAX; words_for(nbits)],
        };
        v.clear_tail();
        v.debug_validate();
        v
    }

    /// Builds a vector from an iterator of set-bit positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(nbits: usize, idx: I) -> Self {
        let mut v = Self::zeros(nbits);
        for i in idx {
            v.set(i, true);
        }
        v
    }

    /// Builds a vector from a slice of boolean flags.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Zeroes any bits in the final partial word beyond `nbits`.
    fn clear_tail(&mut self) {
        let tail = self.nbits % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Validates the structural invariants every word-level kernel relies
    /// on: the backing store holds exactly `words_for(nbits)` words, and no
    /// bit beyond `nbits` is set in the final partial word. A dirty tail
    /// silently corrupts every popcount-based operator (`count_ones_and`,
    /// `masked_popcounts`, …), so this is checked by `debug_assert!` at
    /// each mutation seam and compiled out of release builds.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.words.len() != words_for(self.nbits) {
            return Err(format!(
                "BitVec backing store holds {} words, want {} for {} bits",
                self.words.len(),
                words_for(self.nbits),
                self.nbits
            ));
        }
        let tail = self.nbits % WORD_BITS;
        if tail != 0 {
            if let Some(&last) = self.words.last() {
                let dirty = last & !((1u64 << tail) - 1);
                if dirty != 0 {
                    return Err(format!(
                        "BitVec tail is dirty: bits beyond {} set in final word ({dirty:#x})",
                        self.nbits
                    ));
                }
            }
        }
        Ok(())
    }

    /// Debug-build contract check; a no-op in release builds.
    #[inline]
    fn debug_validate(&self) {
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if any bit set in both `self` and `mask`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn intersects(&self, mask: &BitVec) -> bool {
        self.check_width(mask);
        self.words.iter().zip(&mask.words).any(|(a, b)| a & b != 0)
    }

    /// True if every bit of `mask` is also set in `self`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn contains_all(&self, mask: &BitVec) -> bool {
        self.check_width(mask);
        self.words.iter().zip(&mask.words).all(|(a, b)| a & b == *b)
    }

    /// Count of bits set in both `self` and `mask`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn count_ones_masked(&self, mask: &BitVec) -> usize {
        self.check_width(mask);
        self.words
            .iter()
            .zip(&mask.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Count of bits set in both `self` and `mask` (kernel-facing name for
    /// [`count_ones_masked`](Self::count_ones_masked): one AND+popcount pass
    /// over the packed words, no intermediate vector).
    #[inline]
    pub fn count_ones_and(&self, mask: &BitVec) -> usize {
        self.count_ones_masked(mask)
    }

    /// True if any bit is set in both `self` and `mask` (kernel-facing name
    /// for [`intersects`](Self::intersects)).
    #[inline]
    pub fn intersects_mask(&self, mask: &BitVec) -> bool {
        self.intersects(mask)
    }

    /// True if `self ⊇ mask` bit-wise (kernel-facing name for
    /// [`contains_all`](Self::contains_all)).
    #[inline]
    pub fn is_superset_of(&self, mask: &BitVec) -> bool {
        self.contains_all(mask)
    }

    /// Clears every bit, keeping the width (reusable scratch buffers).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites `self` with a copy of `other`'s bits (no reallocation).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.check_width(other);
        self.words.copy_from_slice(&other.words);
        self.clear_tail();
        self.debug_validate();
    }

    /// Ternary AND: writes `self & other` into `out` without allocating.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_into(&self, other: &BitVec, out: &mut BitVec) {
        self.check_width(other);
        self.check_width(out);
        for (o, (a, b)) in out
            .words
            .iter_mut()
            .zip(self.words.iter().zip(&other.words))
        {
            *o = a & b;
        }
    }

    /// Ternary AND-NOT: writes `self & !other` into `out` without
    /// allocating.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_not_into(&self, other: &BitVec, out: &mut BitVec) {
        self.check_width(other);
        self.check_width(out);
        for (o, (a, b)) in out
            .words
            .iter_mut()
            .zip(self.words.iter().zip(&other.words))
        {
            *o = a & !b;
        }
        out.clear_tail();
        out.debug_validate();
    }

    /// Fused OR-of-AND: `self |= a & b`, one pass over the packed words.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn or_and_assign(&mut self, a: &BitVec, b: &BitVec) {
        self.check_width(a);
        self.check_width(b);
        for (o, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *o |= x & y;
        }
        self.clear_tail();
        self.debug_validate();
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place bitwise AND-NOT (`self &= !other`).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_not_assign(&mut self, other: &BitVec) {
        self.check_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.clear_tail();
        self.debug_validate();
    }

    /// Returns `self & mask` as a new vector.
    #[must_use]
    pub fn and(&self, mask: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(mask);
        out
    }

    /// Returns `self | mask` as a new vector.
    #[must_use]
    pub fn or(&self, mask: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(mask);
        out
    }

    /// Iterates positions of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Position of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// Position of the highest set bit, if any.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    #[inline]
    fn check_width(&self, other: &BitVec) {
        assert_eq!(
            self.nbits, other.nbits,
            "bit vector width mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }
}

/// A dense matrix of bits with a fixed number of columns.
///
/// Rows are appended dynamically; this is the storage for the paper's
/// labeled arrays **V** (node presence) and **E** (edge presence), where
/// columns correspond to time points.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    ncols: usize,
    words_per_row: usize,
    nrows: usize,
    data: Vec<u64>,
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.nrows, self.ncols)?;
        for r in 0..self.nrows.min(16) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.nrows > 16 {
            writeln!(f, "  ... {} more rows", self.nrows - 16)?;
        }
        Ok(())
    }
}

impl BitMatrix {
    /// Creates an empty matrix with `ncols` columns and no rows.
    #[must_use]
    pub fn new(ncols: usize) -> Self {
        BitMatrix {
            ncols,
            words_per_row: words_for(ncols),
            nrows: 0,
            data: Vec::new(),
        }
    }

    /// Creates an all-zero matrix with `nrows` rows.
    #[must_use]
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        let wpr = words_for(ncols);
        BitMatrix {
            ncols,
            words_per_row: wpr,
            nrows,
            data: vec![0; nrows * wpr],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Appends an all-zero row, returning its index.
    pub fn push_empty_row(&mut self) -> usize {
        self.data.extend(std::iter::repeat_n(0, self.words_per_row));
        self.nrows += 1;
        self.nrows - 1
    }

    /// Appends a row copied from a [`BitVec`], returning its index.
    ///
    /// # Panics
    /// Panics if the vector width differs from `ncols`.
    pub fn push_row(&mut self, row: &BitVec) -> usize {
        assert_eq!(row.len(), self.ncols, "row width mismatch");
        self.data.extend_from_slice(&row.words);
        self.nrows += 1;
        self.debug_validate();
        self.nrows - 1
    }

    /// Validates the structural invariants of the packed storage: the row
    /// stride matches the column count, the data length matches
    /// `nrows * words_per_row`, and every row's final partial word is free
    /// of bits beyond `ncols` (a dirty row tail corrupts
    /// [`masked_popcounts`](Self::masked_popcounts) and every other
    /// word-level row operator).
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.words_per_row != words_for(self.ncols) {
            return Err(format!(
                "BitMatrix stride is {} words, want {} for {} columns",
                self.words_per_row,
                words_for(self.ncols),
                self.ncols
            ));
        }
        if self.data.len() != self.nrows * self.words_per_row {
            return Err(format!(
                "BitMatrix stores {} words, want {} ({} rows x {} words)",
                self.data.len(),
                self.nrows * self.words_per_row,
                self.nrows,
                self.words_per_row
            ));
        }
        let tail = self.ncols % WORD_BITS;
        if tail != 0 && self.words_per_row > 0 {
            let keep = (1u64 << tail) - 1;
            for r in 0..self.nrows {
                let last = self.data[(r + 1) * self.words_per_row - 1];
                if last & !keep != 0 {
                    return Err(format!(
                        "BitMatrix row {r} tail is dirty: bits beyond {} set ({:#x})",
                        self.ncols,
                        last & !keep
                    ));
                }
            }
        }
        Ok(())
    }

    /// Debug-build contract check; a no-op in release builds.
    #[inline]
    fn debug_validate(&self) {
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    #[inline]
    fn row_words(&self, r: usize) -> &[u64] {
        debug_assert!(r < self.nrows);
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    #[inline]
    fn row_words_mut(&mut self, r: usize) -> &mut [u64] {
        debug_assert!(r < self.nrows);
        &mut self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Reads cell `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        (self.row_words(r)[c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Writes cell `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        let w = &mut self.row_words_mut(r)[c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Copies row `r` out as a [`BitVec`].
    #[must_use]
    pub fn row(&self, r: usize) -> BitVec {
        BitVec {
            nbits: self.ncols,
            words: self.row_words(r).to_vec(),
        }
    }

    /// True if row `r` has any set bit within `mask` (the paper's
    /// "any `V[v, t] = 1` for `t ∈ 𝒯`" test used by the union operator).
    pub fn row_any(&self, r: usize, mask: &BitVec) -> bool {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        self.row_words(r)
            .iter()
            .zip(&mask.words)
            .any(|(a, b)| a & b != 0)
    }

    /// True if row `r` has every bit of `mask` set (the projection test
    /// "`𝒯 ⊆ τ(u)`").
    pub fn row_all(&self, r: usize, mask: &BitVec) -> bool {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        self.row_words(r)
            .iter()
            .zip(&mask.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Count of set bits in row `r` restricted to `mask`.
    pub fn row_count_masked(&self, r: usize, mask: &BitVec) -> usize {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        self.row_words(r)
            .iter()
            .zip(&mask.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns row `r` restricted to `mask` (bits outside `mask` cleared).
    #[must_use]
    pub fn row_masked(&self, r: usize, mask: &BitVec) -> BitVec {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        BitVec {
            nbits: self.ncols,
            words: self
                .row_words(r)
                .iter()
                .zip(&mask.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Count of set bits in column `c`.
    pub fn col_count(&self, c: usize) -> usize {
        assert!(c < self.ncols, "column out of range");
        let wi = c / WORD_BITS;
        let mask = 1u64 << (c % WORD_BITS);
        (0..self.nrows)
            .filter(|&r| self.data[r * self.words_per_row + wi] & mask != 0)
            .count()
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Builds a new matrix keeping only the listed columns, in the given
    /// order (the paper's "restrict the arrays to the columns of 𝒯").
    #[must_use]
    pub fn restrict_columns(&self, cols: &[usize]) -> BitMatrix {
        for &c in cols {
            assert!(c < self.ncols, "column {c} out of range {}", self.ncols);
        }
        let mut out = BitMatrix::zeros(self.nrows, cols.len());
        for r in 0..self.nrows {
            let src = self.row_words(r);
            for (new_c, &old_c) in cols.iter().enumerate() {
                if (src[old_c / WORD_BITS] >> (old_c % WORD_BITS)) & 1 == 1 {
                    out.set(r, new_c, true);
                }
            }
        }
        out.debug_validate();
        out
    }

    /// Builds a copy with `new_ncols ≥ ncols` columns; existing bits keep
    /// their positions, new columns start clear (used when a temporal
    /// graph's domain is extended with fresh time points).
    ///
    /// # Panics
    /// Panics if `new_ncols < ncols`.
    #[must_use]
    pub fn widen(&self, new_ncols: usize) -> BitMatrix {
        assert!(
            new_ncols >= self.ncols,
            "widen cannot shrink: {} -> {new_ncols}",
            self.ncols
        );
        let mut out = BitMatrix::zeros(self.nrows, new_ncols);
        for r in 0..self.nrows {
            for c in self.iter_row_ones(r) {
                out.set(r, c, true);
            }
        }
        out.debug_validate();
        out
    }

    /// Builds a new matrix keeping only the listed rows, in the given order.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> BitMatrix {
        let mut out = BitMatrix::new(self.ncols);
        out.data.reserve(rows.len() * self.words_per_row);
        for &r in rows {
            assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
            out.data.extend_from_slice(self.row_words(r));
            out.nrows += 1;
        }
        out.debug_validate();
        out
    }

    /// Iterates set-bit column positions of row `r`.
    pub fn iter_row_ones(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        let words = self.row_words(r);
        words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Iterates set-bit column positions of `row r & mask` in increasing
    /// order, masking word by word — no row copy is materialized (contrast
    /// with [`row_masked`](Self::row_masked), which clones the row).
    ///
    /// # Panics
    /// Panics if the mask width differs from `ncols`.
    pub fn iter_row_ones_and<'a>(
        &'a self,
        r: usize,
        mask: &'a BitVec,
    ) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        let words = self.row_words(r);
        words
            .iter()
            .zip(&mask.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| {
                let mut w = a & b;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * WORD_BITS + bit)
                    }
                })
            })
    }

    /// Builds the column-major companion of this matrix: one [`BitVec`]
    /// over the rows per column (for presence matrices, "which entities
    /// exist at time point `c`" as a single packed vector).
    ///
    /// Cost is O(set bits); the result is immutable and intended to be
    /// built once and cached (see `TemporalGraph::node_presence_columns`).
    #[must_use]
    pub fn transposed(&self) -> TransposedBitMatrix {
        let mut cols = vec![BitVec::zeros(self.nrows); self.ncols];
        for r in 0..self.nrows {
            for c in self.iter_row_ones(r) {
                cols[c].set(r, true);
            }
        }
        let t = TransposedBitMatrix {
            source_rows: self.nrows,
            cols,
        };
        debug_assert_eq!(t.check_invariants(), Ok(()));
        // Round-trip sampling: corner and center cells must agree with the
        // row-major source (full verification would double the build cost).
        #[cfg(debug_assertions)]
        if self.nrows > 0 && self.ncols > 0 {
            for r in [0, self.nrows / 2, self.nrows - 1] {
                for c in [0, self.ncols / 2, self.ncols - 1] {
                    debug_assert_eq!(
                        self.get(r, c),
                        t.cols[c].get(r),
                        "transpose round-trip mismatch at ({r}, {c})"
                    );
                }
            }
        }
        t
    }

    /// Per-row popcounts of `row & mask` for every row, in one pass over the
    /// packed storage (the bulk form of
    /// [`row_count_masked`](Self::row_count_masked)).
    ///
    /// # Panics
    /// Panics if the mask width differs from `ncols`.
    pub fn masked_popcounts(&self, mask: &BitVec) -> Vec<u32> {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        let mut out = Vec::with_capacity(self.nrows);
        for chunk in self.data.chunks_exact(self.words_per_row.max(1)) {
            let count: u32 = chunk
                .iter()
                .zip(&mask.words)
                .map(|(a, b)| (a & b).count_ones())
                .sum();
            out.push(count);
        }
        // chunks_exact over empty rows-with-zero-width yields nothing; pad
        // so the result always has one entry per row.
        out.resize(self.nrows, 0);
        out
    }
}

/// Column-major view of a [`BitMatrix`]: one packed [`BitVec`] over the
/// source *rows* per source *column*.
///
/// Where a presence [`BitMatrix`] answers "at which time points does entity
/// `r` exist?" row by row, the transposed form answers "which entities
/// exist at time point `c`?" as one whole vector — the layout the
/// chain-incremental exploration cursor folds with `acc |= col[t]` /
/// `acc &= col[t]` in O(rows/64) words per extension step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransposedBitMatrix {
    source_rows: usize,
    cols: Vec<BitVec>,
}

impl TransposedBitMatrix {
    /// Number of columns (source-matrix columns, e.g. time points).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows of the source matrix (= width of every column vector).
    #[inline]
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// The bitset of source rows set in column `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn col(&self, c: usize) -> &BitVec {
        &self.cols[c]
    }

    /// Validates the structural invariants: every column vector spans
    /// exactly `source_rows` bits and satisfies [`BitVec::check_invariants`]
    /// (the cursor's whole-column OR/AND folds assume uniform clean widths).
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (c, col) in self.cols.iter().enumerate() {
            if col.len() != self.source_rows {
                return Err(format!(
                    "TransposedBitMatrix column {c} spans {} bits, want {}",
                    col.len(),
                    self.source_rows
                ));
            }
            col.check_invariants()
                .map_err(|e| format!("TransposedBitMatrix column {c}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());

        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(!o.is_zero());
        // tail bits beyond nbits must be clear so counts stay exact
        assert_eq!(o.words.len(), 2);
        assert_eq!(o.words[1].count_ones(), 6);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn from_indices_and_iter_ones() {
        let v = BitVec::from_indices(100, [3, 64, 99]);
        let ones: Vec<_> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 99]);
        assert_eq!(v.first_one(), Some(3));
        assert_eq!(v.last_one(), Some(99));
    }

    #[test]
    fn empty_first_last() {
        let v = BitVec::zeros(10);
        assert_eq!(v.first_one(), None);
        assert_eq!(v.last_one(), None);
    }

    #[test]
    fn intersects_and_contains() {
        let a = BitVec::from_indices(10, [1, 3, 5]);
        let b = BitVec::from_indices(10, [3]);
        let c = BitVec::from_indices(10, [2, 4]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
        assert!(a.contains_all(&BitVec::zeros(10)));
    }

    #[test]
    fn boolean_ops() {
        let a = BitVec::from_indices(10, [1, 3, 5]);
        let b = BitVec::from_indices(10, [3, 4]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let mut d = a.clone();
        d.and_not_assign(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(a.count_ones_masked(&b), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        a.intersects(&b);
    }

    #[test]
    fn matrix_push_and_get() {
        let mut m = BitMatrix::new(5);
        let r0 = m.push_row(&BitVec::from_indices(5, [0, 2]));
        let r1 = m.push_empty_row();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(m.nrows(), 2);
        assert!(m.get(0, 0) && m.get(0, 2) && !m.get(0, 1));
        m.set(1, 4, true);
        assert!(m.get(1, 4));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn matrix_row_any_all_masked() {
        let mut m = BitMatrix::new(4);
        m.push_row(&BitVec::from_indices(4, [0, 1]));
        m.push_row(&BitVec::from_indices(4, [2]));
        let mask = BitVec::from_indices(4, [0, 1]);
        assert!(m.row_any(0, &mask));
        assert!(m.row_all(0, &mask));
        assert!(!m.row_any(1, &mask));
        assert!(!m.row_all(1, &mask));
        assert_eq!(m.row_count_masked(0, &mask), 2);
        assert_eq!(m.row_count_masked(1, &mask), 0);
        assert_eq!(
            m.row_masked(0, &BitVec::from_indices(4, [1, 2]))
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn matrix_restrict_columns() {
        let mut m = BitMatrix::new(4);
        m.push_row(&BitVec::from_indices(4, [0, 3]));
        m.push_row(&BitVec::from_indices(4, [1, 2]));
        let r = m.restrict_columns(&[3, 1]);
        assert_eq!(r.ncols(), 2);
        assert!(r.get(0, 0) && !r.get(0, 1));
        assert!(!r.get(1, 0) && r.get(1, 1));
    }

    #[test]
    fn matrix_select_rows() {
        let mut m = BitMatrix::new(3);
        m.push_row(&BitVec::from_indices(3, [0]));
        m.push_row(&BitVec::from_indices(3, [1]));
        m.push_row(&BitVec::from_indices(3, [2]));
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.nrows(), 2);
        assert!(s.get(0, 2) && s.get(1, 0));
    }

    #[test]
    fn matrix_widen() {
        let mut m = BitMatrix::new(3);
        m.push_row(&BitVec::from_indices(3, [0, 2]));
        let w = m.widen(70);
        assert_eq!(w.ncols(), 70);
        assert!(w.get(0, 0) && w.get(0, 2));
        assert_eq!(w.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn matrix_widen_shrink_panics() {
        let _ = BitMatrix::new(3).widen(2);
    }

    #[test]
    fn matrix_col_count() {
        let mut m = BitMatrix::new(3);
        m.push_row(&BitVec::from_indices(3, [0, 1]));
        m.push_row(&BitVec::from_indices(3, [1]));
        assert_eq!(m.col_count(0), 1);
        assert_eq!(m.col_count(1), 2);
        assert_eq!(m.col_count(2), 0);
    }

    #[test]
    fn matrix_iter_row_ones_across_words() {
        let mut m = BitMatrix::new(130);
        m.push_row(&BitVec::from_indices(130, [0, 64, 129]));
        assert_eq!(m.iter_row_ones(0).collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn kernel_aliases_match_base_ops() {
        let a = BitVec::from_indices(100, [1, 3, 64, 99]);
        let b = BitVec::from_indices(100, [3, 64]);
        let c = BitVec::from_indices(100, [2, 4]);
        assert_eq!(a.count_ones_and(&b), a.count_ones_masked(&b));
        assert_eq!(a.count_ones_and(&b), 2);
        assert!(a.intersects_mask(&b) && !a.intersects_mask(&c));
        assert!(a.is_superset_of(&b) && !b.is_superset_of(&a));
    }

    #[test]
    fn matrix_iter_row_ones_and_masks_without_cloning() {
        let mut m = BitMatrix::new(130);
        m.push_row(&BitVec::from_indices(130, [0, 5, 64, 100, 129]));
        m.push_empty_row();
        let mask = BitVec::from_indices(130, [5, 64, 128, 129]);
        assert_eq!(
            m.iter_row_ones_and(0, &mask).collect::<Vec<_>>(),
            vec![5, 64, 129]
        );
        assert_eq!(m.iter_row_ones_and(1, &mask).count(), 0);
        // must agree with the cloning path for every row
        for r in 0..m.nrows() {
            assert_eq!(
                m.iter_row_ones_and(r, &mask).collect::<Vec<_>>(),
                m.row_masked(r, &mask).iter_ones().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn matrix_masked_popcounts_bulk() {
        let mut m = BitMatrix::new(70);
        m.push_row(&BitVec::from_indices(70, [0, 1, 65]));
        m.push_row(&BitVec::from_indices(70, [2, 69]));
        m.push_empty_row();
        let mask = BitVec::from_indices(70, [1, 65, 69]);
        let counts = m.masked_popcounts(&mask);
        assert_eq!(counts, vec![2, 1, 0]);
        for (r, &count) in counts.iter().enumerate() {
            assert_eq!(count as usize, m.row_count_masked(r, &mask));
        }
    }

    #[test]
    fn ternary_ops_match_assign_forms() {
        let a = BitVec::from_indices(130, [0, 5, 64, 100, 129]);
        let b = BitVec::from_indices(130, [5, 64, 128]);
        let mut out = BitVec::ones(130);
        a.and_into(&b, &mut out);
        assert_eq!(out, a.and(&b));
        a.and_not_into(&b, &mut out);
        let mut expect = a.clone();
        expect.and_not_assign(&b);
        assert_eq!(out, expect);
        // fused |= a & b
        let mut acc = BitVec::from_indices(130, [1]);
        acc.or_and_assign(&a, &b);
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![1, 5, 64]);
        // copy_from + clear_all reuse the buffer
        let mut buf = BitVec::zeros(130);
        buf.copy_from(&a);
        assert_eq!(buf, a);
        buf.clear_all();
        assert!(buf.is_zero());
        assert_eq!(buf.len(), 130);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ternary_width_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(10);
        let mut out = BitVec::zeros(11);
        a.and_into(&b, &mut out);
    }

    #[test]
    fn transposed_round_trips() {
        // 3 columns over 70 rows exercises multi-word column vectors
        let mut m = BitMatrix::new(3);
        for r in 0..70 {
            m.push_row(&BitVec::from_indices(
                3,
                (0..3).filter(|c| (r + c) % (c + 2) == 0),
            ));
        }
        let t = m.transposed();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.source_rows(), 70);
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                assert_eq!(t.col(c).get(r), m.get(r, c), "({r},{c})");
            }
        }
        // column popcounts agree with the row-major col_count
        for c in 0..m.ncols() {
            assert_eq!(t.col(c).count_ones(), m.col_count(c));
        }
    }

    #[test]
    fn transposed_empty_and_rowless() {
        let t = BitMatrix::new(4).transposed();
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.source_rows(), 0);
        assert!(t.col(3).is_empty());
        let t = BitMatrix::zeros(5, 0).transposed();
        assert_eq!(t.n_cols(), 0);
        assert_eq!(t.source_rows(), 5);
    }

    #[test]
    fn matrix_masked_popcounts_zero_width() {
        let mut m = BitMatrix::new(0);
        m.push_empty_row();
        m.push_empty_row();
        assert_eq!(m.masked_popcounts(&BitVec::zeros(0)), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "mask width mismatch")]
    fn matrix_masked_popcounts_width_mismatch_panics() {
        BitMatrix::zeros(2, 8).masked_popcounts(&BitVec::zeros(9));
    }
}
