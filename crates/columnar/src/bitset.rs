//! Packed bit vectors and bit matrices.
//!
//! The GraphTempo paper (§4) stores the existence of every node and edge as a
//! binary vector over the time domain: element `t` is 1 iff the entity exists
//! at time point `t`. [`BitVec`] is one such vector; [`BitMatrix`] stacks one
//! row per entity, which is exactly the paper's labeled arrays **V** and
//! **E** (the labels themselves live with the caller).

use std::sync::Arc;

use crate::sparse::{PresenceColumn, SparseMode};

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// Partitions `0..len` into exactly `shards` contiguous ranges whose
/// interior boundaries are multiples of 64, so each range covers whole
/// packed words and a per-shard [`BitVec`] fragment can be sliced without
/// any bit shifting ([`BitVec::slice_aligned`],
/// [`BitMatrix::transposed_rows_with`]).
///
/// The first shards each span `ceil(len / shards)` rounded up to a word
/// boundary; trailing shards may be empty when `shards` exceeds
/// `len / 64` (legal: an empty fragment contributes zero to every count).
/// Ranges are returned as half-open `(lo, hi)` pairs covering `0..len`
/// exactly, in order.
///
/// # Panics
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_ranges(len: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "shard_ranges requires at least one shard");
    let per = len.div_ceil(shards).div_ceil(WORD_BITS).max(1) * WORD_BITS;
    (0..shards)
        .map(|s| ((s * per).min(len), ((s + 1) * per).min(len)))
        .collect()
}

/// Unrolled word-parallel kernels shared by [`BitVec`] and [`BitMatrix`].
///
/// Every hot ternary primitive routes through these loops, which process
/// [`CHUNK`](kernels::CHUNK) words per iteration as straight-line code. The
/// compiler turns each chunk body into wide vector loads/stores (256-bit on
/// x86-64, 128-bit on aarch64) — no `unsafe`, no explicit SIMD types, no
/// target-feature dispatch. The scalar tail covers the final `len % CHUNK`
/// words, so callers never need padded storage.
pub(crate) mod kernels {
    /// Words per unrolled iteration.
    pub(crate) const CHUNK: usize = 4;

    /// `out[i] = a[i] & b[i]`.
    #[inline]
    pub(crate) fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(a.len() == b.len() && b.len() == out.len());
        let mut oc = out.chunks_exact_mut(CHUNK);
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
            o[0] = x[0] & y[0];
            o[1] = x[1] & y[1];
            o[2] = x[2] & y[2];
            o[3] = x[3] & y[3];
        }
        for ((o, x), y) in oc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *o = x & y;
        }
    }

    /// `out[i] = a[i] & !b[i]`.
    #[inline]
    pub(crate) fn and_not_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(a.len() == b.len() && b.len() == out.len());
        let mut oc = out.chunks_exact_mut(CHUNK);
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
            o[0] = x[0] & !y[0];
            o[1] = x[1] & !y[1];
            o[2] = x[2] & !y[2];
            o[3] = x[3] & !y[3];
        }
        for ((o, x), y) in oc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *o = x & !y;
        }
    }

    /// `out[i] |= a[i] & b[i]`.
    #[inline]
    pub(crate) fn or_and_into(a: &[u64], b: &[u64], out: &mut [u64]) {
        debug_assert!(a.len() == b.len() && b.len() == out.len());
        let mut oc = out.chunks_exact_mut(CHUNK);
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
            o[0] |= x[0] & y[0];
            o[1] |= x[1] & y[1];
            o[2] |= x[2] & y[2];
            o[3] |= x[3] & y[3];
        }
        for ((o, x), y) in oc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *o |= x & y;
        }
    }

    /// `out[i] |= a[i]`.
    #[inline]
    pub(crate) fn or_assign(a: &[u64], out: &mut [u64]) {
        debug_assert_eq!(a.len(), out.len());
        let mut oc = out.chunks_exact_mut(CHUNK);
        let mut ac = a.chunks_exact(CHUNK);
        for (o, x) in (&mut oc).zip(&mut ac) {
            o[0] |= x[0];
            o[1] |= x[1];
            o[2] |= x[2];
            o[3] |= x[3];
        }
        for (o, x) in oc.into_remainder().iter_mut().zip(ac.remainder()) {
            *o |= x;
        }
    }

    /// `out[i] &= a[i]`.
    #[inline]
    pub(crate) fn and_assign(a: &[u64], out: &mut [u64]) {
        debug_assert_eq!(a.len(), out.len());
        let mut oc = out.chunks_exact_mut(CHUNK);
        let mut ac = a.chunks_exact(CHUNK);
        for (o, x) in (&mut oc).zip(&mut ac) {
            o[0] &= x[0];
            o[1] &= x[1];
            o[2] &= x[2];
            o[3] &= x[3];
        }
        for (o, x) in oc.into_remainder().iter_mut().zip(ac.remainder()) {
            *o &= x;
        }
    }

    /// `out[i] &= !a[i]`.
    #[inline]
    pub(crate) fn and_not_assign(a: &[u64], out: &mut [u64]) {
        debug_assert_eq!(a.len(), out.len());
        let mut oc = out.chunks_exact_mut(CHUNK);
        let mut ac = a.chunks_exact(CHUNK);
        for (o, x) in (&mut oc).zip(&mut ac) {
            o[0] &= !x[0];
            o[1] &= !x[1];
            o[2] &= !x[2];
            o[3] &= !x[3];
        }
        for (o, x) in oc.into_remainder().iter_mut().zip(ac.remainder()) {
            *o &= !x;
        }
    }

    /// `Σ popcount(a[i] & b[i])`, with four independent accumulators so the
    /// per-lane popcounts pipeline instead of serializing on one sum.
    #[inline]
    pub(crate) fn count_ones_and(a: &[u64], b: &[u64]) -> usize {
        debug_assert_eq!(a.len(), b.len());
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for (x, y) in (&mut ac).zip(&mut bc) {
            c0 += u64::from((x[0] & y[0]).count_ones());
            c1 += u64::from((x[1] & y[1]).count_ones());
            c2 += u64::from((x[2] & y[2]).count_ones());
            c3 += u64::from((x[3] & y[3]).count_ones());
        }
        let mut rest = 0u64;
        for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
            rest += u64::from((x & y).count_ones());
        }
        (c0 + c1 + c2 + c3 + rest) as usize
    }

    /// `Σ popcount(a[i])`, four-lane accumulation as in
    /// [`count_ones_and`].
    #[inline]
    pub(crate) fn count_ones(a: &[u64]) -> usize {
        let mut ac = a.chunks_exact(CHUNK);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for x in &mut ac {
            c0 += u64::from(x[0].count_ones());
            c1 += u64::from(x[1].count_ones());
            c2 += u64::from(x[2].count_ones());
            c3 += u64::from(x[3].count_ones());
        }
        let mut rest = 0u64;
        for x in ac.remainder() {
            rest += u64::from(x.count_ones());
        }
        (c0 + c1 + c2 + c3 + rest) as usize
    }

    /// True if any `a[i] & b[i] != 0`, testing a whole chunk per branch.
    #[inline]
    pub(crate) fn intersects(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        for (x, y) in (&mut ac).zip(&mut bc) {
            if ((x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3])) != 0 {
                return true;
            }
        }
        ac.remainder()
            .iter()
            .zip(bc.remainder())
            .any(|(x, y)| x & y != 0)
    }

    /// `Σ popcount(a[i] & b[i] & c[i])`, four-lane accumulation as in
    /// [`count_ones_and`].
    #[inline]
    pub(crate) fn count_ones_and3(a: &[u64], b: &[u64], c: &[u64]) -> usize {
        debug_assert!(a.len() == b.len() && b.len() == c.len());
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        let mut cc = c.chunks_exact(CHUNK);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for ((x, y), z) in (&mut ac).zip(&mut bc).zip(&mut cc) {
            c0 += u64::from((x[0] & y[0] & z[0]).count_ones());
            c1 += u64::from((x[1] & y[1] & z[1]).count_ones());
            c2 += u64::from((x[2] & y[2] & z[2]).count_ones());
            c3 += u64::from((x[3] & y[3] & z[3]).count_ones());
        }
        let mut rest = 0u64;
        for ((x, y), z) in ac
            .remainder()
            .iter()
            .zip(bc.remainder())
            .zip(cc.remainder())
        {
            rest += u64::from((x & y & z).count_ones());
        }
        (c0 + c1 + c2 + c3 + rest) as usize
    }

    /// `Σ popcount(k[i] & (!d[i] | r[i]))` — the fused Definition-2.5 node
    /// count (kept = member of the keep side, not of the drop side unless
    /// rescued by an incident kept edge) with no mask materialized. Tail
    /// hygiene: `!d` sets bits past the logical width in the final word,
    /// but `k`'s clean tail masks them back off.
    #[inline]
    pub(crate) fn count_difference(k: &[u64], d: &[u64], r: &[u64]) -> usize {
        debug_assert!(k.len() == d.len() && d.len() == r.len());
        let mut kc = k.chunks_exact(CHUNK);
        let mut dc = d.chunks_exact(CHUNK);
        let mut rc = r.chunks_exact(CHUNK);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for ((x, y), z) in (&mut kc).zip(&mut dc).zip(&mut rc) {
            c0 += u64::from((x[0] & (!y[0] | z[0])).count_ones());
            c1 += u64::from((x[1] & (!y[1] | z[1])).count_ones());
            c2 += u64::from((x[2] & (!y[2] | z[2])).count_ones());
            c3 += u64::from((x[3] & (!y[3] | z[3])).count_ones());
        }
        let mut rest = 0u64;
        for ((x, y), z) in kc
            .remainder()
            .iter()
            .zip(dc.remainder())
            .zip(rc.remainder())
        {
            rest += u64::from((x & (!y | z)).count_ones());
        }
        (c0 + c1 + c2 + c3 + rest) as usize
    }

    /// [`count_difference`] restricted to a selector mask:
    /// `Σ popcount(k[i] & (!d[i] | r[i]) & s[i])`.
    #[inline]
    pub(crate) fn count_difference_sel(k: &[u64], d: &[u64], r: &[u64], s: &[u64]) -> usize {
        debug_assert!(k.len() == d.len() && d.len() == r.len() && r.len() == s.len());
        let mut kc = k.chunks_exact(CHUNK);
        let mut dc = d.chunks_exact(CHUNK);
        let mut rc = r.chunks_exact(CHUNK);
        let mut sc = s.chunks_exact(CHUNK);
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        for (((x, y), z), w) in (&mut kc).zip(&mut dc).zip(&mut rc).zip(&mut sc) {
            c0 += u64::from((x[0] & (!y[0] | z[0]) & w[0]).count_ones());
            c1 += u64::from((x[1] & (!y[1] | z[1]) & w[1]).count_ones());
            c2 += u64::from((x[2] & (!y[2] | z[2]) & w[2]).count_ones());
            c3 += u64::from((x[3] & (!y[3] | z[3]) & w[3]).count_ones());
        }
        let mut rest = 0u64;
        for (((x, y), z), w) in kc
            .remainder()
            .iter()
            .zip(dc.remainder())
            .zip(rc.remainder())
            .zip(sc.remainder())
        {
            rest += u64::from((x & (!y | z) & w).count_ones());
        }
        (c0 + c1 + c2 + c3 + rest) as usize
    }

    /// True if `a[i] & b[i] == b[i]` for every word (`a ⊇ b`), testing a
    /// whole chunk per branch.
    #[inline]
    pub(crate) fn contains_all(a: &[u64], b: &[u64]) -> bool {
        debug_assert_eq!(a.len(), b.len());
        let mut ac = a.chunks_exact(CHUNK);
        let mut bc = b.chunks_exact(CHUNK);
        for (x, y) in (&mut ac).zip(&mut bc) {
            if ((!x[0] & y[0]) | (!x[1] & y[1]) | (!x[2] & y[2]) | (!x[3] & y[3])) != 0 {
                return false;
            }
        }
        ac.remainder()
            .iter()
            .zip(bc.remainder())
            .all(|(x, y)| x & y == *y)
    }
}

/// Transposes a 64×64 bit tile in place: output word `j` holds, at bit `i`,
/// the input's word `i` bit `j` (LSB-first column numbering throughout).
///
/// Classic mask-and-shift block transpose (Hacker's Delight §7-3, adapted
/// to LSB-first indexing): six passes of 32/16/8/4/2/1-bit block swaps,
/// each pass word-parallel over the tile.
fn transpose64(a: &mut [u64; WORD_BITS]) {
    let mut j: u32 = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let jj = j as usize;
        let mut k = 0usize;
        while k < WORD_BITS {
            let t = ((a[k] >> j) ^ a[k + jj]) & m;
            a[k + jj] ^= t;
            a[k] ^= t << j;
            k = (k + jj + 1) & !jj;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// A fixed-width packed bit vector.
///
/// Used both as an entity's presence vector over the time domain and as a
/// column mask selecting a subset of time points.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    nbits: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.nbits {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl BitVec {
    /// Creates an all-zero vector of `nbits` bits.
    #[must_use]
    pub fn zeros(nbits: usize) -> Self {
        BitVec {
            nbits,
            words: vec![0; words_for(nbits)],
        }
    }

    /// Creates an all-one vector of `nbits` bits.
    #[must_use]
    pub fn ones(nbits: usize) -> Self {
        let mut v = BitVec {
            nbits,
            words: vec![u64::MAX; words_for(nbits)],
        };
        v.clear_tail();
        v.debug_validate();
        v
    }

    /// Builds a vector from an iterator of set-bit positions.
    ///
    /// # Panics
    /// Panics if any position is out of range.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = usize>>(nbits: usize, idx: I) -> Self {
        let mut v = Self::zeros(nbits);
        for i in idx {
            v.set(i, true);
        }
        v
    }

    /// Builds a vector from a slice of boolean flags.
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Copies the bit range `lo..hi` into a new vector of `hi - lo` bits.
    ///
    /// `lo` must be word-aligned (a multiple of 64) so the copy is a plain
    /// word-range `memcpy` with a tail mask — the form produced by
    /// [`shard_ranges`], used to slice whole-entity-space target masks into
    /// per-shard fragments.
    ///
    /// # Panics
    /// Panics if `lo` is not a multiple of 64 or `lo..hi` is not a valid
    /// subrange of `0..len()`.
    #[must_use]
    pub fn slice_aligned(&self, lo: usize, hi: usize) -> BitVec {
        assert!(
            (lo.is_multiple_of(WORD_BITS) || lo == hi) && lo <= hi && hi <= self.nbits,
            "slice_aligned range {lo}..{hi} invalid for {} bits",
            self.nbits
        );
        let w0 = lo / WORD_BITS;
        let mut out = BitVec {
            nbits: hi - lo,
            words: self.words[w0..w0 + words_for(hi - lo)].to_vec(),
        };
        out.clear_tail();
        out.debug_validate();
        out
    }

    /// Overwrites this vector's contents from pre-packed words (one `u64`
    /// per 64 bits, little-endian bit order, exactly `len().div_ceil(64)`
    /// entries). Bits beyond `len()` in the final word are masked off, so
    /// callers may hand over raw gather buffers without tail hygiene.
    ///
    /// # Panics
    /// Panics if `words` does not hold exactly the backing word count.
    pub fn copy_from_words(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.words.len(),
            "word count mismatch for {} bits",
            self.nbits
        );
        self.words.copy_from_slice(words);
        self.clear_tail();
        self.debug_validate();
    }

    /// Crate-internal view of the packed words, for the sparse-column
    /// kernels in [`crate::sparse`].
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Crate-internal mutable view of the packed words. Callers must keep
    /// the tail clean (only set bits below `len()`).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Crate-internal constructor from pre-packed words (the blocked
    /// transpose builds column words directly).
    ///
    /// # Panics
    /// Debug builds panic if the store violates [`check_invariants`]
    /// (wrong word count or dirty tail).
    #[inline]
    pub(crate) fn from_raw_words(nbits: usize, words: Vec<u64>) -> Self {
        let v = BitVec { nbits, words };
        v.debug_validate();
        v
    }

    /// Zeroes any bits in the final partial word beyond `nbits`.
    fn clear_tail(&mut self) {
        let tail = self.nbits % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Validates the structural invariants every word-level kernel relies
    /// on: the backing store holds exactly `words_for(nbits)` words, and no
    /// bit beyond `nbits` is set in the final partial word. A dirty tail
    /// silently corrupts every popcount-based operator (`count_ones_and`,
    /// `masked_popcounts`, …), so this is checked by `debug_assert!` at
    /// each mutation seam and compiled out of release builds.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.words.len() != words_for(self.nbits) {
            return Err(format!(
                "BitVec backing store holds {} words, want {} for {} bits",
                self.words.len(),
                words_for(self.nbits),
                self.nbits
            ));
        }
        let tail = self.nbits % WORD_BITS;
        if tail != 0 {
            if let Some(&last) = self.words.last() {
                let dirty = last & !((1u64 << tail) - 1);
                if dirty != 0 {
                    return Err(format!(
                        "BitVec tail is dirty: bits beyond {} set in final word ({dirty:#x})",
                        self.nbits
                    ));
                }
            }
        }
        Ok(())
    }

    /// Debug-build contract check; a no-op in release builds.
    #[inline]
    fn debug_validate(&self) {
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.nbits, "bit index {i} out of range {}", self.nbits);
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        kernels::count_ones(&self.words)
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if any bit set in both `self` and `mask`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn intersects(&self, mask: &BitVec) -> bool {
        self.check_width(mask);
        kernels::intersects(&self.words, &mask.words)
    }

    /// True if every bit of `mask` is also set in `self`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn contains_all(&self, mask: &BitVec) -> bool {
        self.check_width(mask);
        kernels::contains_all(&self.words, &mask.words)
    }

    /// Count of bits set in both `self` and `mask`.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn count_ones_masked(&self, mask: &BitVec) -> usize {
        self.check_width(mask);
        kernels::count_ones_and(&self.words, &mask.words)
    }

    /// Count of bits set in both `self` and `mask` (kernel-facing name for
    /// [`count_ones_masked`](Self::count_ones_masked): one AND+popcount pass
    /// over the packed words, no intermediate vector).
    #[inline]
    pub fn count_ones_and(&self, mask: &BitVec) -> usize {
        self.count_ones_masked(mask)
    }

    /// True if any bit is set in both `self` and `mask` (kernel-facing name
    /// for [`intersects`](Self::intersects)).
    #[inline]
    pub fn intersects_mask(&self, mask: &BitVec) -> bool {
        self.intersects(mask)
    }

    /// True if `self ⊇ mask` bit-wise (kernel-facing name for
    /// [`contains_all`](Self::contains_all)).
    #[inline]
    pub fn is_superset_of(&self, mask: &BitVec) -> bool {
        self.contains_all(mask)
    }

    /// Clears every bit, keeping the width (reusable scratch buffers).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites `self` with a copy of `other`'s bits (no reallocation).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.check_width(other);
        self.words.copy_from_slice(&other.words);
        self.clear_tail();
        self.debug_validate();
    }

    /// Ternary AND: writes `self & other` into `out` without allocating.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_into(&self, other: &BitVec, out: &mut BitVec) {
        self.check_width(other);
        self.check_width(out);
        kernels::and_into(&self.words, &other.words, &mut out.words);
    }

    /// Ternary AND-NOT: writes `self & !other` into `out` without
    /// allocating.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_not_into(&self, other: &BitVec, out: &mut BitVec) {
        self.check_width(other);
        self.check_width(out);
        kernels::and_not_into(&self.words, &other.words, &mut out.words);
        out.clear_tail();
        out.debug_validate();
    }

    /// Fused OR-of-AND: `self |= a & b`, one pass over the packed words.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn or_and_assign(&mut self, a: &BitVec, b: &BitVec) {
        self.check_width(a);
        self.check_width(b);
        kernels::or_and_into(&a.words, &b.words, &mut self.words);
        self.clear_tail();
        self.debug_validate();
    }

    /// In-place bitwise OR.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.check_width(other);
        kernels::or_assign(&other.words, &mut self.words);
    }

    /// In-place bitwise AND.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_assign(&mut self, other: &BitVec) {
        self.check_width(other);
        kernels::and_assign(&other.words, &mut self.words);
    }

    /// In-place bitwise AND-NOT (`self &= !other`).
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn and_not_assign(&mut self, other: &BitVec) {
        self.check_width(other);
        kernels::and_not_assign(&other.words, &mut self.words);
        self.clear_tail();
        self.debug_validate();
    }

    /// Returns `self & mask` as a new vector.
    #[must_use]
    pub fn and(&self, mask: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.and_assign(mask);
        out
    }

    /// Returns `self | mask` as a new vector.
    #[must_use]
    pub fn or(&self, mask: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.or_assign(mask);
        out
    }

    /// Iterates positions of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Position of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        self.iter_ones().next()
    }

    /// Position of the highest set bit, if any.
    pub fn last_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
            }
        }
        None
    }

    #[inline]
    fn check_width(&self, other: &BitVec) {
        assert_eq!(
            self.nbits, other.nbits,
            "bit vector width mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }
}

/// A matrix of bits with copy-on-write word-band storage.
///
/// Rows are appended dynamically; this is the storage for the paper's
/// labeled arrays **V** (node presence) and **E** (edge presence), where
/// columns correspond to time points.
///
/// Storage is *banded*: band `b` is an `Arc`-shared vector holding word `b`
/// of every row (columns `64·b .. 64·b+63`), truncated at the last row with
/// any bit set in that word — rows past `band.len()` are implicitly zero.
/// Cloning the matrix (or [`widen`](Self::widen)ing it) only clones the
/// band spine, so an appended snapshot shares every untouched band with its
/// predecessor; mutation goes through `Arc::make_mut`, which deep-copies a
/// band only when it is actually shared (copy-on-write). Appending a time
/// point via [`push_col`](Self::push_col) therefore touches just the final
/// band, leaving all full bands of the history physically shared.
#[derive(Clone)]
pub struct BitMatrix {
    ncols: usize,
    nrows: usize,
    bands: Vec<Arc<Vec<u64>>>,
}

impl PartialEq for BitMatrix {
    fn eq(&self, other: &Self) -> bool {
        if self.ncols != other.ncols || self.nrows != other.nrows {
            return false;
        }
        self.bands.iter().zip(&other.bands).all(|(a, b)| {
            if Arc::ptr_eq(a, b) {
                return true;
            }
            // bands truncate at their last nonzero row, so equality is
            // semantic: common prefix equal, remainder all-zero
            let n = a.len().min(b.len());
            a[..n] == b[..n] && a[n..].iter().all(|&w| w == 0) && b[n..].iter().all(|&w| w == 0)
        })
    }
}

impl Eq for BitMatrix {}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix({}x{})", self.nrows, self.ncols)?;
        for r in 0..self.nrows.min(16) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.nrows > 16 {
            writeln!(f, "  ... {} more rows", self.nrows - 16)?;
        }
        Ok(())
    }
}

impl BitMatrix {
    /// Creates an empty matrix with `ncols` columns and no rows.
    #[must_use]
    pub fn new(ncols: usize) -> Self {
        BitMatrix {
            ncols,
            nrows: 0,
            // all bands deliberately share one empty allocation;
            // `Arc::make_mut` un-shares on first write
            #[allow(clippy::rc_clone_in_vec_init)]
            bands: vec![Arc::new(Vec::new()); words_for(ncols)],
        }
    }

    /// Creates an all-zero matrix with `nrows` rows.
    #[must_use]
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        let mut m = BitMatrix::new(ncols);
        m.nrows = nrows;
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Appends an all-zero row, returning its index. O(1): bands represent
    /// trailing zero rows implicitly, so nothing allocates.
    pub fn push_empty_row(&mut self) -> usize {
        self.nrows += 1;
        self.nrows - 1
    }

    /// Appends a row copied from a [`BitVec`], returning its index. Only
    /// bands with a nonzero word in the new row are materialized (and
    /// un-shared if copy-on-write shared); all-zero words stay implicit.
    ///
    /// # Panics
    /// Panics if the vector width differs from `ncols`.
    pub fn push_row(&mut self, row: &BitVec) -> usize {
        assert_eq!(row.len(), self.ncols, "row width mismatch");
        for (band, &w) in self.bands.iter_mut().zip(row.words.iter()) {
            if w != 0 {
                let band = Arc::make_mut(band);
                band.resize(self.nrows, 0);
                band.push(w);
            }
        }
        self.nrows += 1;
        self.debug_validate();
        self.nrows - 1
    }

    /// Appends one column, returning its index; `rows` lists the row
    /// indices set in the new column. This is the copy-on-write append
    /// behind versioned snapshots: only the final word-band is written
    /// (a fresh empty band when the new column crosses a word boundary),
    /// so every full band of the history stays physically shared with
    /// prior epochs.
    ///
    /// # Panics
    /// Panics if any row index is out of range — grow the row space first
    /// ([`push_empty_row`](Self::push_empty_row) / [`push_row`](Self::push_row)).
    pub fn push_col<I: IntoIterator<Item = usize>>(&mut self, rows: I) -> usize {
        let c = self.ncols;
        self.ncols += 1;
        if self.bands.len() < words_for(self.ncols) {
            self.bands.push(Arc::new(Vec::new()));
        }
        for r in rows {
            self.set(r, c, true);
        }
        self.debug_validate();
        c
    }

    /// Validates the structural invariants of the banded storage: the band
    /// count matches the column count, no band extends past `nrows`, and
    /// the final band is free of bits beyond `ncols` in its partial word (a
    /// dirty tail corrupts [`masked_popcounts`](Self::masked_popcounts) and
    /// every other word-level row operator, and would leak stale bits into
    /// the next [`push_col`](Self::push_col) / [`widen`](Self::widen)).
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.bands.len() != words_for(self.ncols) {
            return Err(format!(
                "BitMatrix holds {} word-bands, want {} for {} columns",
                self.bands.len(),
                words_for(self.ncols),
                self.ncols
            ));
        }
        for (b, band) in self.bands.iter().enumerate() {
            if band.len() > self.nrows {
                return Err(format!(
                    "BitMatrix band {b} spans {} rows, more than nrows {}",
                    band.len(),
                    self.nrows
                ));
            }
        }
        let tail = self.ncols % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.bands.last() {
                let keep = (1u64 << tail) - 1;
                for (r, &w) in last.iter().enumerate() {
                    if w & !keep != 0 {
                        return Err(format!(
                            "BitMatrix row {r} tail is dirty: bits beyond {} set ({:#x})",
                            self.ncols,
                            w & !keep
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug-build contract check; a no-op in release builds.
    #[inline]
    fn debug_validate(&self) {
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Word `b` of row `r`, reading rows past the band's materialized
    /// length as zero.
    #[inline]
    fn band_word(band: &[u64], r: usize) -> u64 {
        band.get(r).copied().unwrap_or(0)
    }

    /// Number of word-bands (the granularity of structural sharing).
    #[inline]
    pub fn n_bands(&self) -> usize {
        self.bands.len()
    }

    /// Count of word-bands physically shared (same allocation) with
    /// `other` — a test/bench hook for asserting that copy-on-write appends
    /// actually share prior storage instead of deep-copying it.
    pub fn shared_bands(&self, other: &BitMatrix) -> usize {
        self.bands
            .iter()
            .zip(&other.bands)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Reads cell `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        (Self::band_word(&self.bands[c / WORD_BITS], r) >> (c % WORD_BITS)) & 1 == 1
    }

    /// Writes cell `(r, c)`, un-sharing (copy-on-write) and growing the
    /// band as needed.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(r < self.nrows && c < self.ncols, "index out of range");
        let band = &mut self.bands[c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            let band = Arc::make_mut(band);
            if band.len() <= r {
                band.resize(r + 1, 0);
            }
            band[r] |= mask;
        } else if band.len() > r {
            Arc::make_mut(band)[r] &= !mask;
        }
    }

    /// Copies row `r` out as a [`BitVec`], gathering one word per band.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> BitVec {
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        BitVec {
            nbits: self.ncols,
            words: self
                .bands
                .iter()
                .map(|band| Self::band_word(band, r))
                .collect(),
        }
    }

    /// True if row `r` has any set bit within `mask` (the paper's
    /// "any `V[v, t] = 1` for `t ∈ 𝒯`" test used by the union operator).
    pub fn row_any(&self, r: usize, mask: &BitVec) -> bool {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        self.bands
            .iter()
            .zip(mask.words.iter())
            .any(|(band, &mw)| Self::band_word(band, r) & mw != 0)
    }

    /// True if row `r` has every bit of `mask` set (the projection test
    /// "`𝒯 ⊆ τ(u)`").
    pub fn row_all(&self, r: usize, mask: &BitVec) -> bool {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        self.bands
            .iter()
            .zip(mask.words.iter())
            .all(|(band, &mw)| Self::band_word(band, r) & mw == mw)
    }

    /// Count of set bits in row `r` restricted to `mask`.
    pub fn row_count_masked(&self, r: usize, mask: &BitVec) -> usize {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        self.bands
            .iter()
            .zip(mask.words.iter())
            .map(|(band, &mw)| (Self::band_word(band, r) & mw).count_ones() as usize)
            .sum()
    }

    /// Returns row `r` restricted to `mask` (bits outside `mask` cleared).
    #[must_use]
    pub fn row_masked(&self, r: usize, mask: &BitVec) -> BitVec {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        BitVec {
            nbits: self.ncols,
            words: self
                .bands
                .iter()
                .zip(&mask.words)
                .map(|(band, &mw)| Self::band_word(band, r) & mw)
                .collect(),
        }
    }

    /// Count of set bits in column `c` (one pass over a single band).
    pub fn col_count(&self, c: usize) -> usize {
        assert!(c < self.ncols, "column out of range");
        let mask = 1u64 << (c % WORD_BITS);
        self.bands[c / WORD_BITS]
            .iter()
            .filter(|&&w| w & mask != 0)
            .count()
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bands
            .iter()
            .map(|band| kernels::count_ones(band))
            .sum()
    }

    /// Builds a new matrix keeping only the listed columns, in the given
    /// order (the paper's "restrict the arrays to the columns of 𝒯").
    #[must_use]
    pub fn restrict_columns(&self, cols: &[usize]) -> BitMatrix {
        for &c in cols {
            assert!(c < self.ncols, "column {c} out of range {}", self.ncols);
        }
        let mut out = BitMatrix::zeros(self.nrows, cols.len());
        for (new_c, &old_c) in cols.iter().enumerate() {
            let src = &self.bands[old_c / WORD_BITS];
            let src_mask = 1u64 << (old_c % WORD_BITS);
            let dst_mask = 1u64 << (new_c % WORD_BITS);
            let dst = Arc::make_mut(&mut out.bands[new_c / WORD_BITS]);
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                if s & src_mask != 0 {
                    *d |= dst_mask;
                }
            }
        }
        out.debug_validate();
        out
    }

    /// Builds a copy with `new_ncols ≥ ncols` columns; existing bits keep
    /// their positions, new columns start clear (used when a temporal
    /// graph's domain is extended with fresh time points).
    ///
    /// Copy-on-write: the existing bands are `Arc`-shared with `self`, and
    /// the appended column range starts as empty bands — nothing about the
    /// history is copied. (The old final band's clean tail is exactly what
    /// makes its spare bits valid all-zero columns of the widened matrix.)
    ///
    /// # Panics
    /// Panics if `new_ncols < ncols`.
    #[must_use]
    pub fn widen(&self, new_ncols: usize) -> BitMatrix {
        assert!(
            new_ncols >= self.ncols,
            "widen cannot shrink: {} -> {new_ncols}",
            self.ncols
        );
        let mut bands = self.bands.clone();
        bands.resize_with(words_for(new_ncols), || Arc::new(Vec::new()));
        let out = BitMatrix {
            ncols: new_ncols,
            nrows: self.nrows,
            bands,
        };
        out.debug_validate();
        out
    }

    /// Builds a new matrix keeping only the listed rows, in the given order.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> BitMatrix {
        for &r in rows {
            assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        }
        let bands = self
            .bands
            .iter()
            .map(|band| {
                Arc::new(
                    rows.iter()
                        .map(|&r| Self::band_word(band, r))
                        .collect::<Vec<u64>>(),
                )
            })
            .collect();
        let out = BitMatrix {
            ncols: self.ncols,
            nrows: rows.len(),
            bands,
        };
        out.debug_validate();
        out
    }

    /// Iterates set-bit column positions of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn iter_row_ones(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        self.bands.iter().enumerate().flat_map(move |(wi, band)| {
            let mut w = Self::band_word(band, r);
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Iterates set-bit column positions of `row r & mask` in increasing
    /// order, masking word by word — no row copy is materialized (contrast
    /// with [`row_masked`](Self::row_masked), which clones the row).
    ///
    /// # Panics
    /// Panics if the mask width differs from `ncols` or `r` is out of
    /// range.
    pub fn iter_row_ones_and<'a>(
        &'a self,
        r: usize,
        mask: &'a BitVec,
    ) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        assert!(r < self.nrows, "row {r} out of range {}", self.nrows);
        self.bands
            .iter()
            .zip(mask.words.iter())
            .enumerate()
            .flat_map(move |(wi, (band, &mw))| {
                let mut w = Self::band_word(band, r) & mw;
                std::iter::from_fn(move || {
                    if w == 0 {
                        None
                    } else {
                        let bit = w.trailing_zeros() as usize;
                        w &= w - 1;
                        Some(wi * WORD_BITS + bit)
                    }
                })
            })
    }

    /// Builds the column-major companion of this matrix: one presence
    /// column over the rows per source column (for presence matrices,
    /// "which entities exist at time point `c`" as a single packed vector).
    ///
    /// Equivalent to [`transposed_with`](Self::transposed_with) with
    /// [`SparseMode::Auto`]: each column independently picks the dense or
    /// sparse representation by its own density.
    #[must_use]
    pub fn transposed(&self) -> TransposedBitMatrix {
        self.transposed_with(SparseMode::Auto)
    }

    /// Builds the column-major companion with an explicit representation
    /// policy for the resulting columns.
    ///
    /// The transpose itself is cache-blocked: the matrix is walked in
    /// 64×64-bit tiles (64 consecutive rows × one word of columns), each
    /// tile is flipped in registers by `transpose64`, and the flipped
    /// words are scattered into per-column stores. One pass touches each
    /// source word exactly once, all-zero tiles short-circuit, and the
    /// write stream per tile stays within 64 columns — unlike the naive
    /// per-set-bit scatter, whose writes stride the full column array.
    /// The result is immutable and intended to be built once and cached
    /// (see `TemporalGraph::node_presence_columns`).
    #[must_use]
    pub fn transposed_with(&self, mode: SparseMode) -> TransposedBitMatrix {
        self.transposed_rows_with(0, self.nrows, mode)
    }

    /// Builds the column-major companion of the row range `lo..hi` only:
    /// every resulting column spans `hi - lo` bits, with source row
    /// `lo + i` at bit `i`. This is the fragment builder behind
    /// entity-space sharding — each shard transposes just its own slice of
    /// the presence matrix through the same cache-blocked tile loop as
    /// [`transposed_with`](Self::transposed_with) (which is the `0..nrows`
    /// special case).
    ///
    /// `lo` must be word-aligned (a multiple of 64, the form produced by
    /// [`shard_ranges`]) so tiles gather whole source rows without bit
    /// shifting. Empty ranges (`lo == hi`) are legal and yield zero-width
    /// columns.
    ///
    /// # Panics
    /// Panics if `lo` is not a multiple of 64 or `lo..hi` is not a valid
    /// subrange of `0..nrows()`.
    #[must_use]
    pub fn transposed_rows_with(
        &self,
        lo: usize,
        hi: usize,
        mode: SparseMode,
    ) -> TransposedBitMatrix {
        assert!(
            (lo.is_multiple_of(WORD_BITS) || lo == hi) && lo <= hi && hi <= self.nrows,
            "transposed_rows_with range {lo}..{hi} invalid for {} rows",
            self.nrows
        );
        let frag_rows = hi - lo;
        let col_words = words_for(frag_rows);
        let mut col_data: Vec<Vec<u64>> = vec![vec![0u64; col_words]; self.ncols];
        let mut tile = [0u64; WORD_BITS];
        // Band-major: each band is one contiguous word stream covering 64
        // columns, so the gather reads sequentially.
        for (wb, band) in self.bands.iter().enumerate() {
            let c0 = wb * WORD_BITS;
            let cols_here = (self.ncols - c0).min(WORD_BITS);
            // `rb` both indexes `col_data` rows-of-words and derives `r0`,
            // with an early break past the band's materialized length
            #[allow(clippy::needless_range_loop)]
            for rb in 0..col_words {
                let r0 = lo + rb * WORD_BITS;
                if r0 >= band.len() {
                    // rows past the band's materialized length are all
                    // zero, and `rb` only increases from here
                    break;
                }
                let rows = (hi - r0).min(WORD_BITS);
                // Gather: word `wb` of 64 consecutive rows.
                let mut nonzero = 0u64;
                for (i, t) in tile.iter_mut().take(rows).enumerate() {
                    let w = Self::band_word(band, r0 + i);
                    *t = w;
                    nonzero |= w;
                }
                // Entries past `rows` may hold stale words from the
                // previous tile; they must not leak into these columns.
                for t in tile.iter_mut().skip(rows) {
                    *t = 0;
                }
                if nonzero == 0 {
                    continue;
                }
                transpose64(&mut tile);
                for (j, &t) in tile.iter().take(cols_here).enumerate() {
                    if t != 0 {
                        col_data[c0 + j][rb] = t;
                    }
                }
            }
        }
        let cols: Vec<Arc<PresenceColumn>> = col_data
            .into_iter()
            .map(|words| Arc::new(PresenceColumn::from_raw_words(frag_rows, words, mode)))
            .collect();
        let t = TransposedBitMatrix {
            source_rows: frag_rows,
            cols,
        };
        debug_assert_eq!(t.check_invariants(), Ok(()));
        // Round-trip sampling: corner and center cells must agree with the
        // row-major source (full verification would double the build cost).
        #[cfg(debug_assertions)]
        if frag_rows > 0 && self.ncols > 0 {
            for r in [lo, lo + frag_rows / 2, hi - 1] {
                for c in [0, self.ncols / 2, self.ncols - 1] {
                    debug_assert_eq!(
                        self.get(r, c),
                        t.cols[c].get(r - lo),
                        "transpose round-trip mismatch at ({r}, {c})"
                    );
                }
            }
        }
        t
    }

    /// Per-row popcounts of `row & mask` for every row, in one pass over the
    /// packed storage (the bulk form of
    /// [`row_count_masked`](Self::row_count_masked)).
    ///
    /// # Panics
    /// Panics if the mask width differs from `ncols`.
    pub fn masked_popcounts(&self, mask: &BitVec) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.nrows);
        self.masked_popcounts_into(mask, &mut out);
        out
    }

    /// Allocation-free form of [`masked_popcounts`](Self::masked_popcounts):
    /// clears `out` and fills it with one count per row, reusing its
    /// capacity (evaluation loops call this once per candidate mask).
    ///
    /// # Panics
    /// Panics if the mask width differs from `ncols`.
    pub fn masked_popcounts_into(&self, mask: &BitVec, out: &mut Vec<u32>) {
        assert_eq!(mask.len(), self.ncols, "mask width mismatch");
        out.clear();
        out.resize(self.nrows, 0);
        // Band-major accumulation: each band contributes its masked
        // popcount to the rows it materializes (rows beyond are zero), and
        // bands whose mask word is clear are skipped outright.
        for (band, &mw) in self.bands.iter().zip(mask.words.iter()) {
            if mw == 0 {
                continue;
            }
            for (o, &w) in out.iter_mut().zip(band.iter()) {
                *o += (w & mw).count_ones();
            }
        }
    }
}

/// Column-major view of a [`BitMatrix`]: one packed [`PresenceColumn`] over
/// the source *rows* per source *column*.
///
/// Where a presence [`BitMatrix`] answers "at which time points does entity
/// `r` exist?" row by row, the transposed form answers "which entities
/// exist at time point `c`?" as one whole vector — the layout the
/// chain-incremental exploration cursor folds with `acc |= col[t]` /
/// `acc &= col[t]` in O(rows/64) words per extension step (or O(nnz) when
/// the column chose the sparse representation).
///
/// Columns are individually `Arc`-shared, so cloning the transposed index
/// for a new epoch copies only the column spine; appending a time point is
/// [`push_col`](Self::push_col) + [`grow_rows`](Self::grow_rows), with
/// every prior column left physically shared and read as zero-extended up
/// to the new `source_rows` (entities created after a column's time point
/// are absent at it by construction).
#[derive(Clone, Debug)]
pub struct TransposedBitMatrix {
    source_rows: usize,
    cols: Vec<Arc<PresenceColumn>>,
}

impl PartialEq for TransposedBitMatrix {
    fn eq(&self, other: &Self) -> bool {
        // semantic equality under zero-extension: carried-forward columns
        // may be stored shorter than freshly transposed ones
        self.source_rows == other.source_rows
            && self.cols.len() == other.cols.len()
            && self
                .cols
                .iter()
                .zip(&other.cols)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a.bits_eq(b))
    }
}

impl Eq for TransposedBitMatrix {}

impl TransposedBitMatrix {
    /// Number of columns (source-matrix columns, e.g. time points).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows of the source matrix. Columns may be stored shorter
    /// (zero-extended): a column appended at an earlier epoch spans only
    /// the entities that existed then.
    #[inline]
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// The presence column of source rows set in column `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn col(&self, c: usize) -> &PresenceColumn {
        self.cols[c].as_ref()
    }

    /// Number of columns stored in the sparse sorted-ID representation.
    #[must_use]
    pub fn n_sparse_cols(&self) -> usize {
        self.cols.iter().filter(|c| c.is_sparse()).count()
    }

    /// Number of columns stored in the dense packed-word representation.
    #[must_use]
    pub fn n_dense_cols(&self) -> usize {
        self.cols.len() - self.n_sparse_cols()
    }

    /// Appends one presence column (the incremental-maintenance step for a
    /// freshly appended time point). The column picks its own dense/sparse
    /// representation upstream ([`PresenceColumn::from_bitvec`]); prior
    /// columns are untouched and stay `Arc`-shared with earlier epochs.
    ///
    /// # Panics
    /// Panics if the column spans more bits than `source_rows`.
    pub fn push_col(&mut self, col: PresenceColumn) {
        assert!(
            col.len() <= self.source_rows,
            "pushed column spans {} bits, more than source_rows {}",
            col.len(),
            self.source_rows
        );
        self.cols.push(Arc::new(col));
    }

    /// Declares a larger source-row span (entities appended since this
    /// index was built). Existing columns keep their stored width and are
    /// read as zero-extended — a new entity is absent at every old time
    /// point.
    ///
    /// # Panics
    /// Panics if `rows` is smaller than the current span.
    pub fn grow_rows(&mut self, rows: usize) {
        assert!(
            rows >= self.source_rows,
            "grow_rows cannot shrink: {} -> {rows}",
            self.source_rows
        );
        self.source_rows = rows;
    }

    /// Count of columns physically shared (same allocation) with `other` —
    /// a test/bench hook for asserting incremental maintenance shares
    /// prior columns instead of re-transposing them.
    pub fn shared_cols(&self, other: &TransposedBitMatrix) -> usize {
        self.cols
            .iter()
            .zip(&other.cols)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Validates the structural invariants: every column spans at most
    /// `source_rows` bits (shorter columns are zero-extended) and
    /// satisfies [`PresenceColumn::check_invariants`].
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (c, col) in self.cols.iter().enumerate() {
            if col.len() > self.source_rows {
                return Err(format!(
                    "TransposedBitMatrix column {c} spans {} bits, more than source_rows {}",
                    col.len(),
                    self.source_rows
                ));
            }
            col.check_invariants()
                .map_err(|e| format!("TransposedBitMatrix column {c}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_and_align() {
        for (len, shards) in [
            (0, 1),
            (1, 1),
            (1, 4),
            (63, 2),
            (64, 2),
            (65, 2),
            (1000, 7),
            (100, 64),
            (12_345, 3),
        ] {
            let ranges = shard_ranges(len, shards);
            assert_eq!(ranges.len(), shards, "len={len} shards={shards}");
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[shards - 1].1, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "ranges must tile contiguously");
            }
            for &(lo, hi) in &ranges {
                // empty trailing shards may sit at an unaligned `len`
                assert!(
                    lo.is_multiple_of(WORD_BITS) || lo == hi,
                    "lo {lo} not word aligned"
                );
                assert!(lo <= hi && hi <= len);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_ranges_zero_shards_panics() {
        shard_ranges(10, 0);
    }

    #[test]
    fn slice_aligned_matches_bitwise() {
        let v = BitVec::from_indices(200, [0, 5, 63, 64, 100, 127, 128, 150, 199]);
        for (lo, hi) in [
            (0, 200),
            (0, 64),
            (64, 128),
            (64, 200),
            (128, 130),
            (192, 192),
        ] {
            let s = v.slice_aligned(lo, hi);
            assert_eq!(s.len(), hi - lo);
            assert_eq!(s.check_invariants(), Ok(()));
            for i in lo..hi {
                assert_eq!(s.get(i - lo), v.get(i), "bit {i} in slice {lo}..{hi}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn slice_aligned_rejects_unaligned_lo() {
        BitVec::zeros(128).slice_aligned(1, 64);
    }

    #[test]
    fn transposed_rows_matches_whole_transpose() {
        let mut m = BitMatrix::new(5);
        for r in 0..300 {
            let row = BitVec::from_indices(5, (0..5).filter(|c| (r * 7 + c * 3) % 4 == 0));
            m.push_row(&row);
        }
        let whole = m.transposed();
        for (lo, hi) in [(0, 300), (0, 64), (64, 192), (256, 300), (128, 128)] {
            let frag = m.transposed_rows_with(lo, hi, SparseMode::Auto);
            assert_eq!(frag.source_rows(), hi - lo);
            assert_eq!(frag.n_cols(), 5);
            assert_eq!(frag.check_invariants(), Ok(()));
            for c in 0..5 {
                for r in lo..hi {
                    assert_eq!(
                        frag.col(c).get(r - lo),
                        whole.col(c).get(r),
                        "cell ({r}, {c}) in fragment {lo}..{hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());

        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(!o.is_zero());
        // tail bits beyond nbits must be clear so counts stay exact
        assert_eq!(o.words.len(), 2);
        assert_eq!(o.words[1].count_ones(), 6);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn from_indices_and_iter_ones() {
        let v = BitVec::from_indices(100, [3, 64, 99]);
        let ones: Vec<_> = v.iter_ones().collect();
        assert_eq!(ones, vec![3, 64, 99]);
        assert_eq!(v.first_one(), Some(3));
        assert_eq!(v.last_one(), Some(99));
    }

    #[test]
    fn empty_first_last() {
        let v = BitVec::zeros(10);
        assert_eq!(v.first_one(), None);
        assert_eq!(v.last_one(), None);
    }

    #[test]
    fn intersects_and_contains() {
        let a = BitVec::from_indices(10, [1, 3, 5]);
        let b = BitVec::from_indices(10, [3]);
        let c = BitVec::from_indices(10, [2, 4]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
        assert!(a.contains_all(&BitVec::zeros(10)));
    }

    #[test]
    fn boolean_ops() {
        let a = BitVec::from_indices(10, [1, 3, 5]);
        let b = BitVec::from_indices(10, [3, 4]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let mut d = a.clone();
        d.and_not_assign(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(a.count_ones_masked(&b), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(11);
        a.intersects(&b);
    }

    #[test]
    fn matrix_push_and_get() {
        let mut m = BitMatrix::new(5);
        let r0 = m.push_row(&BitVec::from_indices(5, [0, 2]));
        let r1 = m.push_empty_row();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(m.nrows(), 2);
        assert!(m.get(0, 0) && m.get(0, 2) && !m.get(0, 1));
        m.set(1, 4, true);
        assert!(m.get(1, 4));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn matrix_row_any_all_masked() {
        let mut m = BitMatrix::new(4);
        m.push_row(&BitVec::from_indices(4, [0, 1]));
        m.push_row(&BitVec::from_indices(4, [2]));
        let mask = BitVec::from_indices(4, [0, 1]);
        assert!(m.row_any(0, &mask));
        assert!(m.row_all(0, &mask));
        assert!(!m.row_any(1, &mask));
        assert!(!m.row_all(1, &mask));
        assert_eq!(m.row_count_masked(0, &mask), 2);
        assert_eq!(m.row_count_masked(1, &mask), 0);
        assert_eq!(
            m.row_masked(0, &BitVec::from_indices(4, [1, 2]))
                .iter_ones()
                .collect::<Vec<_>>(),
            vec![1]
        );
    }

    #[test]
    fn matrix_restrict_columns() {
        let mut m = BitMatrix::new(4);
        m.push_row(&BitVec::from_indices(4, [0, 3]));
        m.push_row(&BitVec::from_indices(4, [1, 2]));
        let r = m.restrict_columns(&[3, 1]);
        assert_eq!(r.ncols(), 2);
        assert!(r.get(0, 0) && !r.get(0, 1));
        assert!(!r.get(1, 0) && r.get(1, 1));
    }

    #[test]
    fn matrix_select_rows() {
        let mut m = BitMatrix::new(3);
        m.push_row(&BitVec::from_indices(3, [0]));
        m.push_row(&BitVec::from_indices(3, [1]));
        m.push_row(&BitVec::from_indices(3, [2]));
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.nrows(), 2);
        assert!(s.get(0, 2) && s.get(1, 0));
    }

    #[test]
    fn matrix_widen() {
        let mut m = BitMatrix::new(3);
        m.push_row(&BitVec::from_indices(3, [0, 2]));
        let w = m.widen(70);
        assert_eq!(w.ncols(), 70);
        assert!(w.get(0, 0) && w.get(0, 2));
        assert_eq!(w.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn matrix_widen_shrink_panics() {
        let _ = BitMatrix::new(3).widen(2);
    }

    #[test]
    fn matrix_col_count() {
        let mut m = BitMatrix::new(3);
        m.push_row(&BitVec::from_indices(3, [0, 1]));
        m.push_row(&BitVec::from_indices(3, [1]));
        assert_eq!(m.col_count(0), 1);
        assert_eq!(m.col_count(1), 2);
        assert_eq!(m.col_count(2), 0);
    }

    #[test]
    fn matrix_iter_row_ones_across_words() {
        let mut m = BitMatrix::new(130);
        m.push_row(&BitVec::from_indices(130, [0, 64, 129]));
        assert_eq!(m.iter_row_ones(0).collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn kernel_aliases_match_base_ops() {
        let a = BitVec::from_indices(100, [1, 3, 64, 99]);
        let b = BitVec::from_indices(100, [3, 64]);
        let c = BitVec::from_indices(100, [2, 4]);
        assert_eq!(a.count_ones_and(&b), a.count_ones_masked(&b));
        assert_eq!(a.count_ones_and(&b), 2);
        assert!(a.intersects_mask(&b) && !a.intersects_mask(&c));
        assert!(a.is_superset_of(&b) && !b.is_superset_of(&a));
    }

    #[test]
    fn matrix_iter_row_ones_and_masks_without_cloning() {
        let mut m = BitMatrix::new(130);
        m.push_row(&BitVec::from_indices(130, [0, 5, 64, 100, 129]));
        m.push_empty_row();
        let mask = BitVec::from_indices(130, [5, 64, 128, 129]);
        assert_eq!(
            m.iter_row_ones_and(0, &mask).collect::<Vec<_>>(),
            vec![5, 64, 129]
        );
        assert_eq!(m.iter_row_ones_and(1, &mask).count(), 0);
        // must agree with the cloning path for every row
        for r in 0..m.nrows() {
            assert_eq!(
                m.iter_row_ones_and(r, &mask).collect::<Vec<_>>(),
                m.row_masked(r, &mask).iter_ones().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn matrix_masked_popcounts_bulk() {
        let mut m = BitMatrix::new(70);
        m.push_row(&BitVec::from_indices(70, [0, 1, 65]));
        m.push_row(&BitVec::from_indices(70, [2, 69]));
        m.push_empty_row();
        let mask = BitVec::from_indices(70, [1, 65, 69]);
        let counts = m.masked_popcounts(&mask);
        assert_eq!(counts, vec![2, 1, 0]);
        for (r, &count) in counts.iter().enumerate() {
            assert_eq!(count as usize, m.row_count_masked(r, &mask));
        }
    }

    #[test]
    fn ternary_ops_match_assign_forms() {
        let a = BitVec::from_indices(130, [0, 5, 64, 100, 129]);
        let b = BitVec::from_indices(130, [5, 64, 128]);
        let mut out = BitVec::ones(130);
        a.and_into(&b, &mut out);
        assert_eq!(out, a.and(&b));
        a.and_not_into(&b, &mut out);
        let mut expect = a.clone();
        expect.and_not_assign(&b);
        assert_eq!(out, expect);
        // fused |= a & b
        let mut acc = BitVec::from_indices(130, [1]);
        acc.or_and_assign(&a, &b);
        assert_eq!(acc.iter_ones().collect::<Vec<_>>(), vec![1, 5, 64]);
        // copy_from + clear_all reuse the buffer
        let mut buf = BitVec::zeros(130);
        buf.copy_from(&a);
        assert_eq!(buf, a);
        buf.clear_all();
        assert!(buf.is_zero());
        assert_eq!(buf.len(), 130);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ternary_width_mismatch_panics() {
        let a = BitVec::zeros(10);
        let b = BitVec::zeros(10);
        let mut out = BitVec::zeros(11);
        a.and_into(&b, &mut out);
    }

    #[test]
    fn transposed_round_trips() {
        // 3 columns over 70 rows exercises multi-word column vectors
        let mut m = BitMatrix::new(3);
        for r in 0..70 {
            m.push_row(&BitVec::from_indices(
                3,
                (0..3).filter(|c| (r + c) % (c + 2) == 0),
            ));
        }
        let t = m.transposed();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.source_rows(), 70);
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                assert_eq!(t.col(c).get(r), m.get(r, c), "({r},{c})");
            }
        }
        // column popcounts agree with the row-major col_count
        for c in 0..m.ncols() {
            assert_eq!(t.col(c).count_ones(), m.col_count(c));
        }
    }

    #[test]
    fn transposed_empty_and_rowless() {
        let t = BitMatrix::new(4).transposed();
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.source_rows(), 0);
        assert!(t.col(3).is_empty());
        let t = BitMatrix::zeros(5, 0).transposed();
        assert_eq!(t.n_cols(), 0);
        assert_eq!(t.source_rows(), 5);
    }

    #[test]
    fn matrix_masked_popcounts_zero_width() {
        let mut m = BitMatrix::new(0);
        m.push_empty_row();
        m.push_empty_row();
        assert_eq!(m.masked_popcounts(&BitVec::zeros(0)), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "mask width mismatch")]
    fn matrix_masked_popcounts_width_mismatch_panics() {
        BitMatrix::zeros(2, 8).masked_popcounts(&BitVec::zeros(9));
    }

    #[test]
    fn masked_popcounts_into_reuses_buffer() {
        let mut m = BitMatrix::new(70);
        m.push_row(&BitVec::from_indices(70, [0, 1, 65]));
        m.push_row(&BitVec::from_indices(70, [2, 69]));
        m.push_empty_row();
        let mask = BitVec::from_indices(70, [1, 65, 69]);
        let mut buf = vec![7u32; 99]; // stale contents must be discarded
        m.masked_popcounts_into(&mask, &mut buf);
        assert_eq!(buf, m.masked_popcounts(&mask));
        assert_eq!(buf, vec![2, 1, 0]);
        // zero-width matrices still get one entry per row
        let mut zw = BitMatrix::new(0);
        zw.push_empty_row();
        zw.push_empty_row();
        zw.masked_popcounts_into(&BitVec::zeros(0), &mut buf);
        assert_eq!(buf, vec![0, 0]);
    }

    #[test]
    fn transpose64_matches_naive() {
        // deterministic pseudo-random tile (splitmix64)
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut tile = [0u64; 64];
        for t in &mut tile {
            *t = next();
        }
        let orig = tile;
        transpose64(&mut tile);
        for (i, &row) in orig.iter().enumerate() {
            for (j, &col) in tile.iter().enumerate() {
                assert_eq!(
                    (row >> j) & 1,
                    (col >> i) & 1,
                    "bit ({i},{j}) lost in transpose"
                );
            }
        }
        // involution: transposing twice restores the tile
        transpose64(&mut tile);
        assert_eq!(tile, orig);
    }

    #[test]
    fn blocked_transpose_matches_cells_at_boundaries() {
        // word-boundary row counts exercise the partial final tile; the
        // 130-column case exercises multi-tile column blocks
        for nrows in [1, 63, 64, 65, 130] {
            for ncols in [1, 63, 64, 65, 130] {
                let mut m = BitMatrix::zeros(nrows, ncols);
                for r in 0..nrows {
                    for c in 0..ncols {
                        if (r * 31 + c * 17) % 5 == 0 {
                            m.set(r, c, true);
                        }
                    }
                }
                for mode in [
                    SparseMode::Auto,
                    SparseMode::ForceDense,
                    SparseMode::ForceSparse,
                ] {
                    let t = m.transposed_with(mode);
                    assert_eq!(t.check_invariants(), Ok(()));
                    for r in 0..nrows {
                        for c in 0..ncols {
                            assert_eq!(
                                t.col(c).get(r),
                                m.get(r, c),
                                "({r},{c}) {nrows}x{ncols} {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_transpose_stale_tile_rows_do_not_leak() {
        // 65 rows: the second row-block holds 1 live row; a dense first
        // block must not bleed into rows 64.. of any column.
        let mut m = BitMatrix::zeros(65, 3);
        for r in 0..64 {
            for c in 0..3 {
                m.set(r, c, true);
            }
        }
        let t = m.transposed_with(SparseMode::ForceDense);
        for c in 0..3 {
            assert!(!t.col(c).get(64));
            assert_eq!(t.col(c).count_ones(), 64);
        }
    }

    #[test]
    fn push_col_appends_column_and_matches_push_row_build() {
        // build column-wise and row-wise; results must be equal
        let mut by_col = BitMatrix::new(0);
        for _ in 0..70 {
            by_col.push_empty_row();
        }
        by_col.push_col((0..70).filter(|r| r % 3 == 0));
        by_col.push_col((0..70).filter(|r| r % 7 == 0));
        by_col.push_col(std::iter::empty());
        assert_eq!(by_col.check_invariants(), Ok(()));
        assert_eq!(by_col.ncols(), 3);

        let mut by_row = BitMatrix::new(3);
        for r in 0..70 {
            let mut bits = Vec::new();
            if r % 3 == 0 {
                bits.push(0);
            }
            if r % 7 == 0 {
                bits.push(1);
            }
            by_row.push_row(&BitVec::from_indices(3, bits));
        }
        assert_eq!(by_col, by_row);
        assert_eq!(by_col.col_count(0), by_row.col_count(0));
    }

    #[test]
    fn clone_then_push_col_shares_full_bands() {
        // 130 columns = 3 bands; appending a 131st column touches only
        // the final band — the first two stay physically shared
        let mut m = BitMatrix::new(130);
        for r in 0..50 {
            m.push_row(&BitVec::from_indices(130, [r % 130, (r * 7) % 130]));
        }
        let snapshot = m.clone();
        m.push_col([1, 3, 40]);
        assert_eq!(m.ncols(), 131);
        assert_eq!(m.check_invariants(), Ok(()));
        assert_eq!(m.shared_bands(&snapshot), 2, "full bands must stay shared");
        // the snapshot is unperturbed
        assert_eq!(snapshot.ncols(), 130);
        assert_eq!(snapshot.check_invariants(), Ok(()));
        for r in 0..50 {
            for c in 0..130 {
                assert_eq!(snapshot.get(r, c), m.get(r, c), "({r},{c})");
            }
        }
        assert!(m.get(1, 130) && m.get(3, 130) && m.get(40, 130));
        assert!(!m.get(0, 130));
    }

    #[test]
    fn widen_shares_all_bands_with_source() {
        let mut m = BitMatrix::new(70);
        for r in 0..20 {
            m.push_row(&BitVec::from_indices(70, [r, 69 - r]));
        }
        let w = m.widen(200);
        assert_eq!(w.ncols(), 200);
        assert_eq!(w.check_invariants(), Ok(()));
        assert_eq!(w.shared_bands(&m), m.n_bands());
        assert_eq!(w.count_ones(), m.count_ones());
    }

    #[test]
    fn push_empty_rows_are_implicit_and_semantically_equal() {
        let mut a = BitMatrix::new(5);
        a.push_row(&BitVec::from_indices(5, [1]));
        a.push_empty_row();
        a.push_empty_row();
        let mut b = BitMatrix::new(5);
        b.push_row(&BitVec::from_indices(5, [1]));
        b.push_row(&BitVec::zeros(5));
        b.push_row(&BitVec::zeros(5));
        assert_eq!(a, b);
        assert_eq!(a.row(2), BitVec::zeros(5));
        assert_eq!(a.masked_popcounts(&BitVec::ones(5)), vec![1, 0, 0]);
        // transposes agree too
        assert_eq!(a.transposed(), b.transposed());
    }

    #[test]
    fn transposed_push_col_and_grow_rows_match_full_rebuild() {
        let mut m = BitMatrix::new(3);
        for r in 0..70 {
            m.push_row(&BitVec::from_indices(
                3,
                (0..3).filter(|c| (r + c) % (c + 2) == 0),
            ));
        }
        let mut t = m.transposed();
        // grow the entity space and append a time point incrementally
        for _ in 0..10 {
            m.push_empty_row();
        }
        m.push_col([0, 64, 75, 79]);
        t.grow_rows(80);
        t.push_col(PresenceColumn::from_bitvec(
            BitVec::from_indices(80, [0, 64, 75, 79]),
            SparseMode::Auto,
        ));
        assert_eq!(t.check_invariants(), Ok(()));
        let rebuilt = m.transposed();
        assert_eq!(t, rebuilt, "incremental must equal from-scratch");
        // all prior columns stayed shared with... themselves (no rebuild)
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.source_rows(), 80);
        // zero-extension: old columns read absent for new entities
        for c in 0..3 {
            for r in 70..80 {
                assert!(!t.col(c).get(r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "more than source_rows")]
    fn transposed_push_col_too_wide_panics() {
        let mut t = BitMatrix::zeros(10, 2).transposed();
        t.push_col(PresenceColumn::from_bitvec(
            BitVec::zeros(11),
            SparseMode::Auto,
        ));
    }
}
