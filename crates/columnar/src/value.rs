//! Scalar cell values for labeled arrays.
//!
//! Attribute values in GraphTempo are either categorical (gender, age group,
//! occupation) or numeric (publication counts, rating buckets). A missing
//! cell — an attribute of a node at a time point where the node does not
//! exist, rendered "–" in the paper's Table 2 — is [`Value::Null`].

use std::cmp::Ordering;
use std::fmt;

/// A scalar value stored in a frame cell or an attribute table.
///
/// `Value` has a total order so it can serve as a group-by key:
/// `Null < Int(_) < Cat(_) < Str(_)`, with natural ordering inside each
/// variant. Categorical values are interned codes; the mapping back to the
/// original label is owned by the attribute schema.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Missing value (entity absent at this time point).
    Null,
    /// Integer value (counts, bucketed numerics).
    Int(i64),
    /// Interned categorical code.
    Cat(u32),
    /// Owned string (used mainly by IO before interning).
    Str(String),
}

impl Value {
    /// True if the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the categorical code, if this is a `Cat`.
    pub fn as_cat(&self) -> Option<u32> {
        match self {
            Value::Cat(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Cat(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Cat(a), Value::Cat(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "∅"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "-"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Cat(c) => write!(f, "#{c}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A tuple of values used as a composite key (a node's attribute tuple
/// `a'`, or the pair of endpoint tuples of an aggregate edge).
pub type ValueTuple = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Cat(3).as_cat(), Some(3));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_cat(), None);
        assert_eq!(Value::Cat(1).as_int(), None);
    }

    #[test]
    fn total_order_across_variants() {
        let mut vals = vec![
            Value::Str("b".into()),
            Value::Cat(1),
            Value::Int(-5),
            Value::Null,
            Value::Str("a".into()),
            Value::Int(10),
            Value::Cat(0),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(-5),
                Value::Int(10),
                Value::Cat(0),
                Value::Cat(1),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn display_matches_paper_table() {
        assert_eq!(Value::Null.to_string(), "-");
        assert_eq!(Value::Int(3).to_string(), "3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from("m"), Value::Str("m".into()));
    }
}
