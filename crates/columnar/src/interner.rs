//! Label interning.
//!
//! The paper's arrays are *labeled*: rows carry node or edge identifiers and
//! categorical attributes carry string labels ("m", "f", occupation names).
//! [`Interner`] maps such labels to dense `u32` codes and back, so the hot
//! paths work on integers.

use std::collections::HashMap;
use std::hash::Hash;

/// A bidirectional map from labels to dense `u32` codes.
#[derive(Clone, Debug, Default)]
pub struct Interner<T: Eq + Hash + Clone> {
    to_code: HashMap<T, u32>,
    items: Vec<T>,
}

impl<T: Eq + Hash + Clone> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            to_code: HashMap::new(),
            items: Vec::new(),
        }
    }

    /// Interns `label`, returning its code (existing or freshly assigned).
    ///
    /// # Panics
    /// Panics if more than `u32::MAX` distinct labels are interned.
    pub fn intern(&mut self, label: T) -> u32 {
        if let Some(&c) = self.to_code.get(&label) {
            return c;
        }
        let code = u32::try_from(self.items.len())
            .expect("invariant: fewer than u32::MAX distinct labels (documented capacity)");
        self.items.push(label.clone());
        self.to_code.insert(label, code);
        code
    }

    /// Looks up the code of `label` without interning.
    pub fn code(&self, label: &T) -> Option<u32> {
        self.to_code.get(label).copied()
    }

    /// Resolves a code back to its label.
    pub fn resolve(&self, code: u32) -> Option<&T> {
        self.items.get(code as usize)
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(code, label)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items.iter().enumerate().map(|(i, l)| (i as u32, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("alpha".to_string());
        let b = i.intern("beta".to_string());
        assert_eq!(i.intern("alpha".to_string()), a);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let c = i.intern(42u64);
        assert_eq!(i.resolve(c), Some(&42));
        assert_eq!(i.code(&42), Some(c));
        assert_eq!(i.code(&43), None);
        assert_eq!(i.resolve(99), None);
    }

    #[test]
    fn iter_in_code_order() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(0, &"x"), (1, &"y")]);
    }

    #[test]
    fn empty() {
        let i: Interner<String> = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
