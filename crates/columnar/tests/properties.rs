//! Property-based tests of the columnar engine: bitset algebra, frame
//! group-by invariants, and delimited-text round-trips.

use proptest::prelude::*;
use std::io::Cursor;
use tempo_columnar::{
    read_frame, write_frame, BitMatrix, BitVec, Frame, PresenceColumn, SparseMode, Value,
};

/// Widths crossing the word-tail boundaries (63/64/65) plus small and
/// multi-word shapes.
const WIDTHS: [usize; 8] = [1, 7, 63, 64, 65, 127, 129, 190];

/// Bits from a threshold over uniform draws: `t` sweeps the density from
/// all-zero (`t = 0`) through ~1% / ~10% / ~50% up to all-one (`t = 100`),
/// the shapes the hybrid column's auto-pick must handle.
fn threshold_bits(vals: &[u32], t: u32) -> BitVec {
    BitVec::from_bools(&vals.iter().map(|&v| v < t).collect::<Vec<bool>>())
}

/// One presence-column test case: the column bits plus three independent
/// same-width operand vectors, each at its own random density.
fn column_case() -> impl Strategy<Value = (BitVec, BitVec, BitVec, BitVec)> {
    (
        0usize..WIDTHS.len(),
        0u32..101,
        0u32..101,
        0u32..101,
        0u32..101,
    )
        .prop_flat_map(|(wi, tc, ta, tb, tr)| {
            let n = WIDTHS[wi];
            (
                proptest::collection::vec(0u32..100, n),
                proptest::collection::vec(0u32..100, n),
                proptest::collection::vec(0u32..100, n),
                proptest::collection::vec(0u32..100, n),
            )
                .prop_map(move |(c, a, b, r)| {
                    (
                        threshold_bits(&c, tc),
                        threshold_bits(&a, ta),
                        threshold_bits(&b, tb),
                        threshold_bits(&r, tr),
                    )
                })
        })
}

fn bitvec_strategy(max_bits: usize) -> impl Strategy<Value = BitVec> {
    (1..max_bits).prop_flat_map(|n| {
        proptest::collection::vec(any::<bool>(), n).prop_map(|bits| BitVec::from_bools(&bits))
    })
}

/// Two bit vectors of the same width.
fn bitvec_pair(max_bits: usize) -> impl Strategy<Value = (BitVec, BitVec)> {
    (1..max_bits).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(a, b)| (BitVec::from_bools(&a), BitVec::from_bools(&b)))
    })
}

/// Naive per-bit reference for the fused Definition-2.5 difference count:
/// `popcount(keep & (!drop | rescue) [& sel])`.
fn naive_difference(keep: &BitVec, drop: &BitVec, rescue: &BitVec, sel: Option<&BitVec>) -> usize {
    (0..keep.len())
        .filter(|&i| keep.get(i) && (!drop.get(i) || rescue.get(i)) && sel.is_none_or(|m| m.get(i)))
        .count()
}

proptest! {
    /// Both `PresenceColumn` representations of the same bits satisfy the
    /// container contract: invariants hold, accessors agree, and the
    /// round-trip through `to_bitvec` is lossless — at densities from
    /// all-zero to all-one and widths crossing the 63/64/65 tails.
    #[test]
    fn presence_column_representations_agree((bits, _a, _b, _r) in column_case()) {
        let dense = PresenceColumn::from_bitvec(bits.clone(), SparseMode::ForceDense);
        let sparse = PresenceColumn::from_bitvec(bits.clone(), SparseMode::ForceSparse);
        let auto = PresenceColumn::from_bitvec(bits.clone(), SparseMode::Auto);
        for col in [&dense, &sparse, &auto] {
            prop_assert_eq!(col.check_invariants(), Ok(()));
            prop_assert_eq!(col.len(), bits.len());
            prop_assert_eq!(col.count_ones(), bits.count_ones());
            prop_assert_eq!(&col.to_bitvec(), &bits);
            prop_assert_eq!(col.iter_ones().collect::<Vec<_>>(), bits.iter_ones().collect::<Vec<_>>());
            for i in [0, bits.len() / 2, bits.len() - 1] {
                prop_assert_eq!(col.get(i), bits.get(i));
            }
        }
        prop_assert!(!dense.is_sparse());
        prop_assert!(sparse.is_sparse());
        // the auto pick is by the documented density rule, never by luck
        prop_assert_eq!(auto.is_sparse(), bits.count_ones() * 64 <= bits.len());
    }

    /// Every in-place fold of the op surface produces bit-identical output
    /// (with clean invariants) whichever representation the column uses,
    /// and matches naive `BitVec` algebra.
    #[test]
    fn presence_column_folds_match_dense((bits, a, b, _r) in column_case()) {
        let dense = PresenceColumn::from_bitvec(bits.clone(), SparseMode::ForceDense);
        let sparse = PresenceColumn::from_bitvec(bits.clone(), SparseMode::ForceSparse);
        let n = bits.len();
        let folds: [(&str, fn(&PresenceColumn, &BitVec, &mut BitVec)); 6] = [
            ("copy_into", |c, _o, out| c.copy_into(out)),
            ("or_into", |c, _o, out| c.or_into(out)),
            ("and_assign_into", |c, _o, out| c.and_assign_into(out)),
            ("and_into", |c, o, out| c.and_into(o, out)),
            ("and_not_into", |c, o, out| c.and_not_into(o, out)),
            ("and_not_from", |c, o, out| c.and_not_from(o, out)),
        ];
        for (name, f) in folds {
            // seed the output/accumulator with `a` so accumulator folds
            // (or_into / and_assign_into) start from a meaningful state
            let mut from_dense = a.clone();
            let mut from_sparse = a.clone();
            f(&dense, &b, &mut from_dense);
            f(&sparse, &b, &mut from_sparse);
            prop_assert_eq!(&from_dense, &from_sparse, "fold {} diverged", name);
            prop_assert_eq!(from_sparse.check_invariants(), Ok(()));
            let expect: BitVec = match name {
                "copy_into" => bits.clone(),
                "or_into" => a.or(&bits),
                "and_assign_into" => a.and(&bits),
                "and_into" => bits.and(&b),
                "and_not_into" => BitVec::from_indices(n, bits.iter_ones().filter(|&i| !b.get(i))),
                "and_not_from" => BitVec::from_indices(n, b.iter_ones().filter(|&i| !bits.get(i))),
                _ => unreachable!(),
            };
            prop_assert_eq!(&from_sparse, &expect, "fold {} wrong", name);
        }
        // or_and_into: acc |= col & other
        let mut acc_dense = a.clone();
        let mut acc_sparse = a.clone();
        dense.or_and_into(&b, &mut acc_dense);
        sparse.or_and_into(&b, &mut acc_sparse);
        prop_assert_eq!(&acc_dense, &acc_sparse);
        prop_assert_eq!(acc_sparse.check_invariants(), Ok(()));
        prop_assert_eq!(&acc_sparse, &a.or(&bits.and(&b)));
    }

    /// Every count kernel returns the same value whichever representation
    /// either column uses, and matches a naive per-bit count — including
    /// the fused difference counts with and without a selector mask.
    #[test]
    fn presence_column_counts_match_naive((bits, a, b, r) in column_case()) {
        let dense = PresenceColumn::from_bitvec(bits.clone(), SparseMode::ForceDense);
        let sparse = PresenceColumn::from_bitvec(bits.clone(), SparseMode::ForceSparse);
        let n = bits.len();
        for col in [&dense, &sparse] {
            prop_assert_eq!(col.count_ones_and_dense(&a), bits.count_ones_and(&a));
            prop_assert_eq!(
                col.count_ones_and2(&a, &b),
                (0..n).filter(|&i| bits.get(i) && a.get(i) && b.get(i)).count()
            );
            for sel in [None, Some(&b)] {
                prop_assert_eq!(
                    col.count_difference_keep(&a, &r, sel),
                    naive_difference(&bits, &a, &r, sel),
                    "count_difference_keep"
                );
                prop_assert_eq!(
                    col.count_difference_drop(&a, &r, sel),
                    naive_difference(&a, &bits, &r, sel),
                    "count_difference_drop"
                );
            }
        }
        // column × column intersection count, all four representation pairs
        let other_dense = PresenceColumn::from_bitvec(a.clone(), SparseMode::ForceDense);
        let other_sparse = PresenceColumn::from_bitvec(a.clone(), SparseMode::ForceSparse);
        let expect = bits.count_ones_and(&a);
        for x in [&dense, &sparse] {
            for y in [&other_dense, &other_sparse] {
                prop_assert_eq!(x.count_ones_and(y), expect);
            }
        }
    }

    #[test]
    fn iter_ones_roundtrips(v in bitvec_strategy(200)) {
        let rebuilt = BitVec::from_indices(v.len(), v.iter_ones());
        prop_assert_eq!(&rebuilt, &v);
        prop_assert_eq!(v.iter_ones().count(), v.count_ones());
    }

    #[test]
    fn and_or_de_morgan_style((a, b) in bitvec_pair(200)) {
        // |a ∪ b| + |a ∩ b| = |a| + |b|
        prop_assert_eq!(
            a.or(&b).count_ones() + a.and(&b).count_ones(),
            a.count_ones() + b.count_ones()
        );
        // intersects ⟺ non-empty and
        prop_assert_eq!(a.intersects(&b), !a.and(&b).is_zero());
        // contains_all ⟺ and == b
        prop_assert_eq!(a.contains_all(&b), a.and(&b) == b);
        // and-not removes exactly the intersection
        let mut c = a.clone();
        c.and_not_assign(&b);
        prop_assert_eq!(c.count_ones(), a.count_ones() - a.and(&b).count_ones());
    }

    #[test]
    fn first_last_consistent(v in bitvec_strategy(200)) {
        match (v.first_one(), v.last_one()) {
            (Some(f), Some(l)) => {
                prop_assert!(f <= l);
                prop_assert!(v.get(f) && v.get(l));
            }
            (None, None) => prop_assert!(v.is_zero()),
            _ => prop_assert!(false, "first/last disagree"),
        }
    }

    #[test]
    fn matrix_restrict_columns_preserves_cells(
        rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 12), 1..20),
        keep in proptest::collection::vec(0usize..12, 1..6),
    ) {
        let mut m = BitMatrix::new(12);
        for r in &rows {
            m.push_row(&BitVec::from_bools(r));
        }
        let restricted = m.restrict_columns(&keep);
        for (ri, row) in rows.iter().enumerate() {
            for (new_c, &old_c) in keep.iter().enumerate() {
                prop_assert_eq!(restricted.get(ri, new_c), row[old_c]);
            }
        }
    }

    #[test]
    fn group_count_total_equals_rows(
        keys in proptest::collection::vec(0i64..6, 1..60),
    ) {
        let mut f = Frame::new(vec!["k"]).unwrap();
        for k in &keys {
            f.push_row(vec![Value::Int(*k)]).unwrap();
        }
        let g = f.group_count(&["k"]).unwrap();
        let total: i64 = g
            .iter_rows()
            .map(|r| r.last().unwrap().as_int().unwrap())
            .sum();
        prop_assert_eq!(total as usize, keys.len());
        // dedup leaves one row per distinct key
        let d = f.dedup_by(&["k"]).unwrap();
        prop_assert_eq!(d.nrows(), g.nrows());
    }

    #[test]
    fn unpivot_preserves_non_null_cell_count(
        cells in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(-100i64..100), 4),
            1..30,
        ),
    ) {
        let mut f = Frame::new(vec!["id", "c0", "c1", "c2", "c3"]).unwrap();
        let mut non_null = 0usize;
        for (i, row) in cells.iter().enumerate() {
            let mut r = vec![Value::Int(i as i64)];
            for c in row {
                match c {
                    Some(v) => {
                        non_null += 1;
                        r.push(Value::Int(*v));
                    }
                    None => r.push(Value::Null),
                }
            }
            f.push_row(r).unwrap();
        }
        let long = f.unpivot(&["id"], "var", "value").unwrap();
        prop_assert_eq!(long.nrows(), non_null);
    }

    /// Every `BitVec` operation preserves `check_invariants`: tail-word
    /// hygiene must hold by construction, not by luck — a dirty tail would
    /// silently corrupt every popcount-based kernel downstream.
    #[test]
    fn bitvec_ops_preserve_invariants((a, b) in bitvec_pair(200)) {
        prop_assert_eq!(a.check_invariants(), Ok(()));
        prop_assert_eq!(b.check_invariants(), Ok(()));
        let n = a.len();
        prop_assert_eq!(BitVec::zeros(n).check_invariants(), Ok(()));
        prop_assert_eq!(BitVec::ones(n).check_invariants(), Ok(()));
        prop_assert_eq!(a.and(&b).check_invariants(), Ok(()));
        prop_assert_eq!(a.or(&b).check_invariants(), Ok(()));

        let mut c = a.clone();
        c.and_assign(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.or_assign(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.and_not_assign(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.or_and_assign(&a, &b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.copy_from(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));

        let mut out = BitVec::ones(n);
        a.and_into(&b, &mut out);
        prop_assert_eq!(out.check_invariants(), Ok(()));
        a.and_not_into(&b, &mut out);
        prop_assert_eq!(out.check_invariants(), Ok(()));

        c.clear_all();
        prop_assert_eq!(c.check_invariants(), Ok(()));
        if n > 0 {
            c.set(n - 1, true);
            prop_assert_eq!(c.check_invariants(), Ok(()));
        }
    }

    /// Every `BitMatrix` construction/reshaping op yields a matrix whose
    /// structural invariants hold, and the transposed companion agrees
    /// cell-for-cell with its source.
    #[test]
    fn bitmatrix_ops_preserve_invariants(
        rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 70), 1..12),
        keep in proptest::collection::vec(0usize..70, 1..8),
    ) {
        let mut m = BitMatrix::new(70);
        prop_assert_eq!(m.check_invariants(), Ok(()));
        for r in &rows {
            m.push_row(&BitVec::from_bools(r));
            prop_assert_eq!(m.check_invariants(), Ok(()));
        }
        m.push_empty_row();
        prop_assert_eq!(m.check_invariants(), Ok(()));

        prop_assert_eq!(m.restrict_columns(&keep).check_invariants(), Ok(()));
        prop_assert_eq!(m.widen(133).check_invariants(), Ok(()));
        prop_assert_eq!(m.select_rows(&[0, rows.len()]).check_invariants(), Ok(()));

        let t = m.transposed();
        prop_assert_eq!(t.check_invariants(), Ok(()));
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                prop_assert_eq!(m.get(r, c), t.col(c).get(r));
            }
        }
    }

    #[test]
    fn tsv_roundtrip(
        rows in proptest::collection::vec((any::<i64>(), proptest::option::of(0i64..50)), 0..30),
    ) {
        let mut f = Frame::new(vec!["a", "b"]).unwrap();
        for (a, b) in &rows {
            f.push_row(vec![
                Value::Int(*a),
                b.map(Value::Int).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        let mut buf = Vec::new();
        write_frame(&f, &mut buf, '\t').unwrap();
        let g = read_frame(Cursor::new(buf), '\t').unwrap();
        prop_assert_eq!(f, g);
    }
}
