//! Property-based tests of the columnar engine: bitset algebra, frame
//! group-by invariants, and delimited-text round-trips.

use proptest::prelude::*;
use std::io::Cursor;
use tempo_columnar::{read_frame, write_frame, BitMatrix, BitVec, Frame, Value};

fn bitvec_strategy(max_bits: usize) -> impl Strategy<Value = BitVec> {
    (1..max_bits).prop_flat_map(|n| {
        proptest::collection::vec(any::<bool>(), n).prop_map(|bits| BitVec::from_bools(&bits))
    })
}

/// Two bit vectors of the same width.
fn bitvec_pair(max_bits: usize) -> impl Strategy<Value = (BitVec, BitVec)> {
    (1..max_bits).prop_flat_map(|n| {
        (
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(a, b)| (BitVec::from_bools(&a), BitVec::from_bools(&b)))
    })
}

proptest! {
    #[test]
    fn iter_ones_roundtrips(v in bitvec_strategy(200)) {
        let rebuilt = BitVec::from_indices(v.len(), v.iter_ones());
        prop_assert_eq!(&rebuilt, &v);
        prop_assert_eq!(v.iter_ones().count(), v.count_ones());
    }

    #[test]
    fn and_or_de_morgan_style((a, b) in bitvec_pair(200)) {
        // |a ∪ b| + |a ∩ b| = |a| + |b|
        prop_assert_eq!(
            a.or(&b).count_ones() + a.and(&b).count_ones(),
            a.count_ones() + b.count_ones()
        );
        // intersects ⟺ non-empty and
        prop_assert_eq!(a.intersects(&b), !a.and(&b).is_zero());
        // contains_all ⟺ and == b
        prop_assert_eq!(a.contains_all(&b), a.and(&b) == b);
        // and-not removes exactly the intersection
        let mut c = a.clone();
        c.and_not_assign(&b);
        prop_assert_eq!(c.count_ones(), a.count_ones() - a.and(&b).count_ones());
    }

    #[test]
    fn first_last_consistent(v in bitvec_strategy(200)) {
        match (v.first_one(), v.last_one()) {
            (Some(f), Some(l)) => {
                prop_assert!(f <= l);
                prop_assert!(v.get(f) && v.get(l));
            }
            (None, None) => prop_assert!(v.is_zero()),
            _ => prop_assert!(false, "first/last disagree"),
        }
    }

    #[test]
    fn matrix_restrict_columns_preserves_cells(
        rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 12), 1..20),
        keep in proptest::collection::vec(0usize..12, 1..6),
    ) {
        let mut m = BitMatrix::new(12);
        for r in &rows {
            m.push_row(&BitVec::from_bools(r));
        }
        let restricted = m.restrict_columns(&keep);
        for (ri, row) in rows.iter().enumerate() {
            for (new_c, &old_c) in keep.iter().enumerate() {
                prop_assert_eq!(restricted.get(ri, new_c), row[old_c]);
            }
        }
    }

    #[test]
    fn group_count_total_equals_rows(
        keys in proptest::collection::vec(0i64..6, 1..60),
    ) {
        let mut f = Frame::new(vec!["k"]).unwrap();
        for k in &keys {
            f.push_row(vec![Value::Int(*k)]).unwrap();
        }
        let g = f.group_count(&["k"]).unwrap();
        let total: i64 = g
            .iter_rows()
            .map(|r| r.last().unwrap().as_int().unwrap())
            .sum();
        prop_assert_eq!(total as usize, keys.len());
        // dedup leaves one row per distinct key
        let d = f.dedup_by(&["k"]).unwrap();
        prop_assert_eq!(d.nrows(), g.nrows());
    }

    #[test]
    fn unpivot_preserves_non_null_cell_count(
        cells in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(-100i64..100), 4),
            1..30,
        ),
    ) {
        let mut f = Frame::new(vec!["id", "c0", "c1", "c2", "c3"]).unwrap();
        let mut non_null = 0usize;
        for (i, row) in cells.iter().enumerate() {
            let mut r = vec![Value::Int(i as i64)];
            for c in row {
                match c {
                    Some(v) => {
                        non_null += 1;
                        r.push(Value::Int(*v));
                    }
                    None => r.push(Value::Null),
                }
            }
            f.push_row(r).unwrap();
        }
        let long = f.unpivot(&["id"], "var", "value").unwrap();
        prop_assert_eq!(long.nrows(), non_null);
    }

    /// Every `BitVec` operation preserves `check_invariants`: tail-word
    /// hygiene must hold by construction, not by luck — a dirty tail would
    /// silently corrupt every popcount-based kernel downstream.
    #[test]
    fn bitvec_ops_preserve_invariants((a, b) in bitvec_pair(200)) {
        prop_assert_eq!(a.check_invariants(), Ok(()));
        prop_assert_eq!(b.check_invariants(), Ok(()));
        let n = a.len();
        prop_assert_eq!(BitVec::zeros(n).check_invariants(), Ok(()));
        prop_assert_eq!(BitVec::ones(n).check_invariants(), Ok(()));
        prop_assert_eq!(a.and(&b).check_invariants(), Ok(()));
        prop_assert_eq!(a.or(&b).check_invariants(), Ok(()));

        let mut c = a.clone();
        c.and_assign(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.or_assign(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.and_not_assign(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.or_and_assign(&a, &b);
        prop_assert_eq!(c.check_invariants(), Ok(()));
        c.copy_from(&b);
        prop_assert_eq!(c.check_invariants(), Ok(()));

        let mut out = BitVec::ones(n);
        a.and_into(&b, &mut out);
        prop_assert_eq!(out.check_invariants(), Ok(()));
        a.and_not_into(&b, &mut out);
        prop_assert_eq!(out.check_invariants(), Ok(()));

        c.clear_all();
        prop_assert_eq!(c.check_invariants(), Ok(()));
        if n > 0 {
            c.set(n - 1, true);
            prop_assert_eq!(c.check_invariants(), Ok(()));
        }
    }

    /// Every `BitMatrix` construction/reshaping op yields a matrix whose
    /// structural invariants hold, and the transposed companion agrees
    /// cell-for-cell with its source.
    #[test]
    fn bitmatrix_ops_preserve_invariants(
        rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 70), 1..12),
        keep in proptest::collection::vec(0usize..70, 1..8),
    ) {
        let mut m = BitMatrix::new(70);
        prop_assert_eq!(m.check_invariants(), Ok(()));
        for r in &rows {
            m.push_row(&BitVec::from_bools(r));
            prop_assert_eq!(m.check_invariants(), Ok(()));
        }
        m.push_empty_row();
        prop_assert_eq!(m.check_invariants(), Ok(()));

        prop_assert_eq!(m.restrict_columns(&keep).check_invariants(), Ok(()));
        prop_assert_eq!(m.widen(133).check_invariants(), Ok(()));
        prop_assert_eq!(m.select_rows(&[0, rows.len()]).check_invariants(), Ok(()));

        let t = m.transposed();
        prop_assert_eq!(t.check_invariants(), Ok(()));
        for r in 0..m.nrows() {
            for c in 0..m.ncols() {
                prop_assert_eq!(m.get(r, c), t.col(c).get(r));
            }
        }
    }

    #[test]
    fn tsv_roundtrip(
        rows in proptest::collection::vec((any::<i64>(), proptest::option::of(0i64..50)), 0..30),
    ) {
        let mut f = Frame::new(vec!["a", "b"]).unwrap();
        for (a, b) in &rows {
            f.push_row(vec![
                Value::Int(*a),
                b.map(Value::Int).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        let mut buf = Vec::new();
        write_frame(&f, &mut buf, '\t').unwrap();
        let g = read_frame(Cursor::new(buf), '\t').unwrap();
        prop_assert_eq!(f, g);
    }
}
