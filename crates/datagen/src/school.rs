//! Synthetic primary-school face-to-face contact network.
//!
//! The paper's introduction motivates GraphTempo with the school-contact
//! study of Gemmetto, Barrat & Cattuto (2014): contacts between students
//! and teachers, with class and grade attributes, where homophily in the
//! aggregated network informs targeted class-closure strategies against
//! influenza. This generator produces a day-by-day contact graph with that
//! structure: strong intra-class contact bias, weaker intra-grade bias,
//! and a time-varying contact-intensity attribute.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use tempo_columnar::Value;
use tempo_graph::{
    AttributeSchema, GraphBuilder, GraphError, TemporalGraph, Temporality, TimeDomain, TimePoint,
};

/// Configuration of the school contact-network generator.
#[derive(Clone, Debug)]
pub struct SchoolConfig {
    /// Number of grades.
    pub grades: usize,
    /// Classes per grade.
    pub classes_per_grade: usize,
    /// Students per class.
    pub students_per_class: usize,
    /// Number of school days (time points).
    pub days: usize,
    /// Average contacts per child per day.
    pub contacts_per_child: f64,
    /// Probability a contact stays within the child's class.
    pub intra_class: f64,
    /// Probability a non-class contact stays within the grade.
    pub intra_grade: f64,
    /// Daily attendance probability.
    pub attendance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SchoolConfig {
    fn default() -> Self {
        SchoolConfig {
            grades: 5,
            classes_per_grade: 2,
            students_per_class: 24,
            days: 10,
            contacts_per_child: 6.0,
            intra_class: 0.65,
            intra_grade: 0.6,
            attendance: 0.93,
            seed: 0x0c1a_55e5,
        }
    }
}

impl SchoolConfig {
    /// Total students.
    pub fn n_students(&self) -> usize {
        self.grades * self.classes_per_grade * self.students_per_class
    }

    /// Generates the contact network: static `grade` and `class`
    /// attributes, time-varying `intensity` (1–3, contact load bucket).
    ///
    /// # Errors
    /// Never in practice; propagates builder validation.
    pub fn generate(&self) -> Result<TemporalGraph, GraphError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.n_students();
        let domain = TimeDomain::new(
            (0..self.days.max(1))
                .map(|d| format!("day{d:02}"))
                .collect::<Vec<_>>(),
        )?;
        let mut schema = AttributeSchema::new();
        let grade = schema.declare("grade", Temporality::Static)?;
        let class = schema.declare("class", Temporality::Static)?;
        let intensity = schema.declare("intensity", Temporality::TimeVarying)?;

        let mut b = GraphBuilder::new(domain, schema);
        let grade_values: Vec<Value> = (0..self.grades)
            .map(|gr| b.intern_category(grade, &format!("G{}", gr + 1)))
            .collect();
        let class_values: Vec<Value> = (0..self.grades * self.classes_per_grade)
            .map(|c| {
                let gr = c / self.classes_per_grade;
                let suffix = (b'A' + (c % self.classes_per_grade) as u8) as char;
                b.intern_category(class, &format!("{}{}", gr + 1, suffix))
            })
            .collect();

        let class_of = |s: usize| s / self.students_per_class;
        let grade_of = |s: usize| class_of(s) / self.classes_per_grade;
        let mut ids = Vec::with_capacity(n);
        for s in 0..n {
            let id = b.add_node(&format!("s{s}"))?;
            b.set_static(id, grade, grade_values[grade_of(s)].clone())?;
            b.set_static(id, class, class_values[class_of(s)].clone())?;
            ids.push(id);
        }

        for d in 0..self.days.max(1) {
            let t = TimePoint(d as u32);
            let present: Vec<usize> = (0..n).filter(|_| rng.gen_bool(self.attendance)).collect();
            if present.len() < 2 {
                continue;
            }
            let present_set: HashSet<usize> = present.iter().copied().collect();
            let mut contacts: HashSet<(usize, usize)> = HashSet::new();
            let mut degree = vec![0usize; n];
            let target = (present.len() as f64 * self.contacts_per_child / 2.0) as usize;
            let mut attempts = 0;
            while contacts.len() < target && attempts < target * 40 + 100 {
                attempts += 1;
                let a = present[rng.gen_range(0..present.len())];
                let peer = if rng.gen_bool(self.intra_class) {
                    // classmate
                    let base = class_of(a) * self.students_per_class;
                    base + rng.gen_range(0..self.students_per_class)
                } else if rng.gen_bool(self.intra_grade) {
                    // grademate
                    let gbase = grade_of(a) * self.classes_per_grade * self.students_per_class;
                    gbase + rng.gen_range(0..self.classes_per_grade * self.students_per_class)
                } else {
                    rng.gen_range(0..n)
                };
                if peer == a || !present_set.contains(&peer) {
                    continue;
                }
                let (u, v) = (a.min(peer), a.max(peer));
                if contacts.insert((u, v)) {
                    degree[u] += 1;
                    degree[v] += 1;
                }
            }
            for &(u, v) in &contacts {
                b.add_edge_at(ids[u], ids[v], t)?;
            }
            for &s in &present {
                let bucket = match degree[s] {
                    0..=3 => 1,
                    4..=8 => 2,
                    _ => 3,
                };
                b.set_time_varying(ids[s], intensity, t, Value::Int(bucket))?;
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_attributes() {
        let cfg = SchoolConfig {
            grades: 2,
            classes_per_grade: 2,
            students_per_class: 10,
            days: 4,
            ..Default::default()
        };
        let g = cfg.generate().unwrap();
        assert_eq!(g.n_nodes(), 40);
        assert_eq!(g.domain().len(), 4);
        let grade = g.schema().id("grade").unwrap();
        let class = g.schema().id("class").unwrap();
        assert_eq!(g.schema().def(grade).category_count(), 2);
        assert_eq!(g.schema().def(class).category_count(), 4);
        assert!(g.n_edges() > 0);
    }

    #[test]
    fn homophily_intra_class_dominates() {
        let g = SchoolConfig::default().generate().unwrap();
        let class = g.schema().id("class").unwrap();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            if g.static_value(u, class).unwrap() == g.static_value(v, class).unwrap() {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > inter,
            "class homophily expected: intra={intra} inter={inter}"
        );
    }

    #[test]
    fn deterministic() {
        let a = SchoolConfig::default().generate().unwrap();
        let b = SchoolConfig::default().generate().unwrap();
        assert_eq!(a.n_edges(), b.n_edges());
    }

    #[test]
    fn intensity_in_buckets() {
        let g = SchoolConfig::default().generate().unwrap();
        let intensity = g.schema().id("intensity").unwrap();
        for n in g.node_ids() {
            for t in g.node_timestamp(n).iter() {
                let v = g.attr_value(n, intensity, t);
                if let Some(i) = v.as_int() {
                    assert!((1..=3).contains(&i));
                }
            }
        }
    }
}
