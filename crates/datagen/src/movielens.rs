//! Synthetic MovieLens-like co-rating network (§5's second dataset).
//!
//! The paper's MovieLens graph spans six months (May–Oct 2000); nodes are
//! users with static `gender`, `age` (6 groups) and `occupation` (21
//! values), a time-varying monthly `rating` average, and a directed edge
//! between users who rated the same movie (order = rating precedence). Its
//! distinguishing feature is extreme edge density — August has 610k
//! directed edges over 1.3k nodes. This generator reproduces the Table 4
//! profile and the attribute cardinalities deterministically from a seed.

use crate::common::{evolve_active_set, evolve_edges};
use crate::tables::{scaled, MOVIELENS_EDGES, MOVIELENS_MONTHS, MOVIELENS_NODES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_columnar::Value;
use tempo_graph::{
    AttributeSchema, GraphBuilder, GraphError, NodeId, TemporalGraph, Temporality, TimeDomain,
    TimePoint,
};

/// Number of discrete age groups (per the paper).
pub const AGE_GROUPS: usize = 6;
/// Number of occupation values (per the paper).
pub const OCCUPATIONS: usize = 21;
/// Rating buckets for the monthly average rating (1–5 stars).
pub const RATING_BUCKETS: i64 = 5;

/// Configuration of the MovieLens-like generator.
#[derive(Clone, Debug)]
pub struct MovieLensConfig {
    /// Scale factor on Table 4's node counts (1.0 = paper size).
    pub scale: f64,
    /// Scale factor on Table 4's edge counts; edge counts grow roughly
    /// quadratically with the active user count, so by default this tracks
    /// `scale²` — see [`MovieLensConfig::scaled`].
    pub edge_scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of last month's users active again.
    pub node_persistence: f64,
    /// Fraction of last month's co-ratings repeated.
    pub edge_persistence: f64,
    /// Fraction of female users.
    pub female_ratio: f64,
    /// Number of taste communities biasing co-ratings.
    pub communities: usize,
    /// Probability a co-rating stays within one community.
    pub intra_community: f64,
}

impl Default for MovieLensConfig {
    fn default() -> Self {
        MovieLensConfig {
            scale: 1.0,
            edge_scale: 1.0,
            seed: 0x5eed_0001,
            node_persistence: 0.5,
            edge_persistence: 0.08,
            female_ratio: 0.28,
            communities: 12,
            intra_community: 0.7,
        }
    }
}

impl MovieLensConfig {
    /// A reduced-size config: node counts scale by `scale`, edge counts by
    /// `scale²` (keeping density realistic for a co-rating graph).
    pub fn scaled(scale: f64) -> Self {
        MovieLensConfig {
            scale,
            edge_scale: scale * scale,
            ..Default::default()
        }
    }

    /// Node count target for month index `t`.
    pub fn nodes_at(&self, t: usize) -> usize {
        scaled(MOVIELENS_NODES[t], self.scale, 4)
    }

    /// Edge count target for month index `t`.
    pub fn edges_at(&self, t: usize) -> usize {
        scaled(MOVIELENS_EDGES[t], self.edge_scale, 4)
    }

    /// Generates the temporal attributed graph.
    ///
    /// # Errors
    /// Never in practice; propagates builder validation.
    pub fn generate(&self) -> Result<TemporalGraph, GraphError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nt = MOVIELENS_MONTHS.len();
        let domain = TimeDomain::new(MOVIELENS_MONTHS.to_vec())?;
        let mut schema = AttributeSchema::new();
        let gender = schema.declare("gender", Temporality::Static)?;
        let age = schema.declare("age", Temporality::Static)?;
        let occupation = schema.declare("occupation", Temporality::Static)?;
        let rating = schema.declare("rating", Temporality::TimeVarying)?;

        let pool: usize = (0..nt).map(|t| self.nodes_at(t)).max().unwrap_or(4) * 2;
        let community: Vec<usize> = (0..pool)
            .map(|_| rng.gen_range(0..self.communities.max(1)))
            .collect();
        let profile: Vec<(bool, u32, u32, i64)> = (0..pool)
            .map(|_| {
                (
                    rng.gen_bool(self.female_ratio),
                    rng.gen_range(0..AGE_GROUPS as u32),
                    rng.gen_range(0..OCCUPATIONS as u32),
                    // users have a taste baseline their monthly average
                    // rating wobbles around
                    rng.gen_range(1..=RATING_BUCKETS),
                )
            })
            .collect();

        let mut b = GraphBuilder::new(domain, schema);
        let f = b.intern_category(gender, "F");
        let m = b.intern_category(gender, "M");
        let age_values: Vec<Value> = ["<18", "18-24", "25-34", "35-44", "45-54", "55+"]
            .iter()
            .map(|l| b.intern_category(age, l))
            .collect();
        let occ_values: Vec<Value> = (0..OCCUPATIONS)
            .map(|i| b.intern_category(occupation, &format!("occ{i:02}")))
            .collect();

        let mut ids: Vec<Option<NodeId>> = vec![None; pool];
        let node_of = |b: &mut GraphBuilder, ids: &mut Vec<Option<NodeId>>, n: usize| {
            if let Some(id) = ids[n] {
                return id;
            }
            let id = b.get_or_add_node(&format!("u{n}"));
            ids[n] = Some(id);
            id
        };

        let mut prev_active: Vec<usize> = Vec::new();
        let mut prev_edges: Vec<(usize, usize)> = Vec::new();
        for t in 0..nt {
            let active = evolve_active_set(
                &mut rng,
                pool,
                &prev_active,
                self.nodes_at(t),
                self.node_persistence,
                &[],
            );
            for &n in &active {
                let id = node_of(&mut b, &mut ids, n);
                let (is_f, a, o, base) = profile[n];
                b.set_static(id, gender, if is_f { f.clone() } else { m.clone() })?;
                b.set_static(id, age, age_values[a as usize].clone())?;
                b.set_static(id, occupation, occ_values[o as usize].clone())?;
                let wobble: i64 = rng.gen_range(-1..=1);
                let r = (base + wobble).clamp(1, RATING_BUCKETS);
                b.set_time_varying(id, rating, TimePoint(t as u32), Value::Int(r))?;
            }
            let edges = evolve_edges(
                &mut rng,
                &active,
                &prev_edges,
                self.edges_at(t),
                self.edge_persistence,
                &community,
                self.communities.max(1),
                self.intra_community,
                &[],
            );
            for &(u, v) in &edges {
                let iu = node_of(&mut b, &mut ids, u);
                let iv = node_of(&mut b, &mut ids, v);
                b.add_edge_at(iu, iv, TimePoint(t as u32))?;
            }
            prev_active = active;
            prev_edges = edges;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::GraphStats;

    #[test]
    fn counts_match_scaled_table4() {
        let cfg = MovieLensConfig::scaled(0.15);
        let g = cfg.generate().unwrap();
        let stats = GraphStats::compute(&g);
        for t in 0..MOVIELENS_MONTHS.len() {
            assert_eq!(stats.nodes_per_tp[t], cfg.nodes_at(t), "nodes at {t}");
            assert_eq!(stats.edges_per_tp[t], cfg.edges_at(t), "edges at {t}");
        }
        // August (index 3) must remain the edge peak
        let peak = (0..6).max_by_key(|&t| stats.edges_per_tp[t]).unwrap();
        assert_eq!(peak, 3);
    }

    #[test]
    fn attribute_cardinalities() {
        let g = MovieLensConfig::scaled(0.2).generate().unwrap();
        let schema = g.schema();
        assert_eq!(schema.def(schema.id("gender").unwrap()).category_count(), 2);
        assert_eq!(
            schema.def(schema.id("age").unwrap()).category_count(),
            AGE_GROUPS
        );
        assert_eq!(
            schema
                .def(schema.id("occupation").unwrap())
                .category_count(),
            OCCUPATIONS
        );
        let rating = schema.id("rating").unwrap();
        for n in g.node_ids() {
            for t in g.node_timestamp(n).iter() {
                let r = g.attr_value(n, rating, t).as_int().unwrap();
                assert!((1..=RATING_BUCKETS).contains(&r));
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = MovieLensConfig::scaled(0.1).generate().unwrap();
        let b = MovieLensConfig::scaled(0.1).generate().unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
    }

    #[test]
    fn rating_wobbles_over_months() {
        // at least one user's monthly rating changes (time-varying attr)
        let g = MovieLensConfig::scaled(0.2).generate().unwrap();
        let rating = g.schema().id("rating").unwrap();
        let mut changed = false;
        'outer: for n in g.node_ids() {
            let mut last: Option<i64> = None;
            for t in g.node_timestamp(n).iter() {
                let r = g.attr_value(n, rating, t).as_int().unwrap();
                if let Some(l) = last {
                    if l != r {
                        changed = true;
                        break 'outer;
                    }
                }
                last = Some(r);
            }
        }
        assert!(changed);
    }
}
