//! # tempo-datagen
//!
//! Deterministic synthetic dataset generators for the GraphTempo
//! reproduction.
//!
//! The paper evaluates on two real datasets we cannot redistribute: a DBLP
//! collaboration graph (21 years, Table 3) and a MovieLens co-rating graph
//! (6 months, Table 4). [`DblpConfig`] and [`MovieLensConfig`] generate
//! graphs matching those tables' per-timepoint node/edge counts (exactly at
//! `scale = 1.0`), the published attribute schemas and cardinalities, and
//! realistic cross-snapshot persistence — preserving what the experiments
//! measure: array sizes, aggregate-domain sizes, and snapshot overlap.
//!
//! [`SchoolConfig`] builds the primary-school contact network of the
//! paper's epidemic-mitigation motivating scenario, and
//! [`RandomGraphConfig`] a fully parameterized evolving graph for tests.
//!
//! ```
//! use tempo_datagen::DblpConfig;
//!
//! let g = DblpConfig::scaled(0.01).generate().unwrap();
//! assert_eq!(g.domain().len(), 21);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod common;
mod dblp;
mod large;
mod movielens;
mod random;
mod school;
pub mod tables;

pub use dblp::DblpConfig;
pub use large::LargeConfig;
pub use movielens::{MovieLensConfig, AGE_GROUPS, OCCUPATIONS, RATING_BUCKETS};
pub use random::RandomGraphConfig;
pub use school::SchoolConfig;
