//! Synthetic DBLP-like collaboration network (§5's first dataset).
//!
//! The paper's DBLP graph covers 21 conference years (2000–2020); nodes are
//! authors with a static `gender` and a time-varying `publications` count,
//! and a directed edge records co-authorship within a year. We do not ship
//! the extracted dataset, so this generator reproduces its published
//! profile (Table 3 node/edge counts, the ≈7–18 distinct publication values
//! per year, author persistence across years, community-structured
//! collaborations) deterministically from a seed.

use crate::common::{evolve_active_set, evolve_edges, skewed_count};
use crate::tables::{scaled, DBLP_EDGES, DBLP_NODES, DBLP_YEARS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_columnar::Value;
use tempo_graph::{
    AttributeSchema, GraphBuilder, GraphError, NodeId, TemporalGraph, Temporality, TimeDomain,
    TimePoint,
};

/// Configuration of the DBLP-like generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Scale factor applied to Table 3's node and edge counts
    /// (1.0 reproduces the paper's sizes).
    pub scale: f64,
    /// RNG seed; equal configs generate equal graphs.
    pub seed: u64,
    /// Fraction of the previous year's authors active again.
    pub node_persistence: f64,
    /// Fraction of the previous year's collaborations repeated.
    pub edge_persistence: f64,
    /// Fraction of female authors.
    pub female_ratio: f64,
    /// Maximum publications per author per year (Table 2's attribute domain
    /// reaches ≈18 at the paper's scale).
    pub max_publications: i64,
    /// Number of research communities biasing collaborations.
    pub communities: usize,
    /// Probability a new collaboration stays within one community.
    pub intra_community: f64,
    /// Long-lived collaborations (at scale 1.0): author pairs whose edge
    /// exists every year of [`DblpConfig::stable_span`]. Real DBLP has such
    /// pairs — the paper finds a common edge across [2000, 2017].
    pub stable_pairs: usize,
    /// Number of leading years the stable pairs span.
    pub stable_span: usize,
    /// Fraction of the author pool that are "stars": prolific authors who
    /// publish (>4 papers) every year. High activity is a persistent trait
    /// in real DBLP — it is what makes ≈61% of the paper's Fig.-12
    /// high-activity authors stable across a decade.
    pub star_fraction: f64,
    /// Probability per author-year that an ordinary author spikes above 4
    /// publications (these one-off spikes populate Fig. 12's shrinkage).
    pub spike_prob: f64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            scale: 1.0,
            seed: 0x9e37_79b9,
            node_persistence: 0.6,
            edge_persistence: 0.15,
            female_ratio: 0.22,
            max_publications: 18,
            communities: 64,
            intra_community: 0.8,
            stable_pairs: 24,
            stable_span: 18,
            star_fraction: 0.006,
            spike_prob: 0.003,
        }
    }
}

impl DblpConfig {
    /// A reduced-size config (`scale`) for tests and quick runs.
    pub fn scaled(scale: f64) -> Self {
        DblpConfig {
            scale,
            ..Default::default()
        }
    }

    /// Node count target for year index `t`.
    pub fn nodes_at(&self, t: usize) -> usize {
        scaled(DBLP_NODES[t], self.scale, 2)
    }

    /// Edge count target for year index `t`.
    pub fn edges_at(&self, t: usize) -> usize {
        scaled(DBLP_EDGES[t], self.scale, 1)
    }

    /// Generates the temporal attributed graph.
    ///
    /// # Errors
    /// Never in practice; propagates builder validation.
    pub fn generate(&self) -> Result<TemporalGraph, GraphError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nt = DBLP_YEARS.len();
        let domain = TimeDomain::new(DBLP_YEARS.to_vec())?;
        let mut schema = AttributeSchema::new();
        let gender = schema.declare("gender", Temporality::Static)?;
        let pubs = schema.declare("publications", Temporality::TimeVarying)?;

        // Author pool: large enough that yearly turnover always finds fresh
        // authors (the union of all years exceeds any single year).
        let pool: usize = (0..nt).map(|t| self.nodes_at(t)).max().unwrap_or(2) * 3;
        let community: Vec<usize> = (0..pool)
            .map(|_| rng.gen_range(0..self.communities.max(1)))
            .collect();
        let genders: Vec<bool> = (0..pool).map(|_| rng.gen_bool(self.female_ratio)).collect();

        let mut b = GraphBuilder::new(domain, schema);
        let f = b.intern_category(gender, "f");
        let m = b.intern_category(gender, "m");
        let mut ids: Vec<Option<NodeId>> = vec![None; pool];
        let node_of = |b: &mut GraphBuilder, ids: &mut Vec<Option<NodeId>>, n: usize| {
            if let Some(id) = ids[n] {
                return id;
            }
            let id = b.get_or_add_node(&format!("a{n}"));
            ids[n] = Some(id);
            id
        };

        // Stable core: pairs (2i, 2i+1) collaborate every year of the span.
        let core_pairs = ((self.stable_pairs as f64 * self.scale).round() as usize).max(1);
        let core_authors: Vec<usize> = (0..2 * core_pairs.min(pool / 2)).collect();
        let core_edges: Vec<(usize, usize)> =
            core_authors.chunks_exact(2).map(|p| (p[0], p[1])).collect();

        // Stars: prolific authors publishing >4 papers every year. They sit
        // right after the stable-core indices (disjoint, so no persistent
        // star–star edges — the paper observes no stable collaborations
        // among active authors).
        let n_stars = ((pool as f64 * self.star_fraction).round() as usize).max(1);
        let star_base: Vec<usize> = (0..n_stars)
            .map(|_| rng.gen_range(6..=self.max_publications.max(6)) as usize)
            .collect();
        let stars: Vec<usize> = (0..n_stars)
            .map(|i| core_authors.len() + i)
            .filter(|&n| n < pool)
            .collect();
        let is_star =
            |n: usize| -> Option<usize> { stars.binary_search(&n).ok().map(|i| star_base[i]) };
        let forced_active: Vec<usize> = {
            let mut v = core_authors.clone();
            v.extend(&stars);
            v
        };

        let mut prev_active: Vec<usize> = Vec::new();
        let mut prev_edges: Vec<(usize, usize)> = Vec::new();
        for t in 0..nt {
            let in_span = t < self.stable_span;
            let active = evolve_active_set(
                &mut rng,
                pool,
                &prev_active,
                self.nodes_at(t),
                self.node_persistence,
                if in_span { &forced_active } else { &stars },
            );
            for &n in &active {
                let id = node_of(&mut b, &mut ids, n);
                let g = if genders[n] { f.clone() } else { m.clone() };
                b.set_static(id, gender, g)?;
                // Stars publish around their personal baseline (always >4);
                // ordinary authors stay in 1..=4 with rare spikes above.
                let yearly = if let Some(base) = is_star(n) {
                    let wobble: i64 = rng.gen_range(-1..=1);
                    (base as i64 + wobble).clamp(5, self.max_publications.max(5))
                } else if rng.gen_bool(self.spike_prob) {
                    rng.gen_range(5..=self.max_publications.clamp(5, 9))
                } else {
                    skewed_count(&mut rng, 4)
                };
                b.set_time_varying(id, pubs, TimePoint(t as u32), Value::Int(yearly))?;
            }
            // Tiny scales can truncate the forced active set; only force
            // edges whose endpoints made it in.
            let forced_edges: Vec<(usize, usize)> = if in_span {
                core_edges
                    .iter()
                    .copied()
                    .filter(|&(u, v)| {
                        active.binary_search(&u).is_ok() && active.binary_search(&v).is_ok()
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let edges = evolve_edges(
                &mut rng,
                &active,
                &prev_edges,
                self.edges_at(t),
                self.edge_persistence,
                &community,
                self.communities.max(1),
                self.intra_community,
                &forced_edges,
            );
            for &(u, v) in &edges {
                let iu = node_of(&mut b, &mut ids, u);
                let iv = node_of(&mut b, &mut ids, v);
                // edge value: papers co-authored that year (mostly 1)
                let joint = skewed_count(&mut rng, 3);
                b.set_edge_value(iu, iv, TimePoint(t as u32), Value::Int(joint))?;
            }
            prev_active = active;
            prev_edges = edges;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::GraphStats;

    #[test]
    fn counts_match_scaled_table3() {
        let cfg = DblpConfig::scaled(0.02);
        let g = cfg.generate().unwrap();
        let stats = GraphStats::compute(&g);
        for t in 0..DBLP_YEARS.len() {
            assert_eq!(stats.nodes_per_tp[t], cfg.nodes_at(t), "nodes at {t}");
            assert_eq!(stats.edges_per_tp[t], cfg.edges_at(t), "edges at {t}");
        }
    }

    #[test]
    fn deterministic() {
        let a = DblpConfig::scaled(0.01).generate().unwrap();
        let b = DblpConfig::scaled(0.01).generate().unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
        let mut cfg = DblpConfig::scaled(0.01);
        cfg.seed = 1;
        let c = cfg.generate().unwrap();
        assert_ne!(
            (a.n_nodes(), a.n_edges()),
            (c.n_nodes(), c.n_edges()),
            "different seed should give a different graph"
        );
    }

    #[test]
    fn attributes_present_for_active_authors() {
        let g = DblpConfig::scaled(0.01).generate().unwrap();
        let pubs = g.schema().id("publications").unwrap();
        let gender = g.schema().id("gender").unwrap();
        for n in g.node_ids() {
            assert!(!g.static_value(n, gender).unwrap().is_null());
            for t in g.node_timestamp(n).iter() {
                let v = g.attr_value(n, pubs, t);
                let p = v.as_int().expect("publications set where active");
                assert!((1..=18).contains(&p));
            }
        }
    }

    #[test]
    fn edges_carry_coauthorship_values() {
        let g = DblpConfig::scaled(0.01).generate().unwrap();
        assert!(g.has_edge_values());
        let mut seen = 0;
        for e in g.edge_ids().take(50) {
            for t in g.edge_timestamp(e).iter() {
                let v = g
                    .edge_value(e, t)
                    .as_int()
                    .expect("value set where present");
                assert!((1..=3).contains(&v));
                seen += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn has_both_genders_and_year_overlap() {
        let g = DblpConfig::scaled(0.02).generate().unwrap();
        let gender = g.schema().id("gender").unwrap();
        let f = g.schema().category(gender, "f").unwrap();
        let m = g.schema().category(gender, "m").unwrap();
        let mut nf = 0;
        let mut nm = 0;
        for n in g.node_ids() {
            match g.static_value(n, gender).unwrap() {
                v if v == f => nf += 1,
                v if v == m => nm += 1,
                _ => panic!("unexpected gender"),
            }
        }
        assert!(nf > 0 && nm > nf, "female minority per config");
        // persistence: some authors span consecutive years
        let spanning = g
            .node_ids()
            .filter(|&n| g.node_timestamp(n).len() >= 2)
            .count();
        assert!(spanning > 0);
    }
}
