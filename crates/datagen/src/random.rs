//! Parameterized random evolving graphs for tests and property checks.

use crate::common::{evolve_active_set, evolve_edges};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tempo_columnar::Value;
use tempo_graph::{
    AttributeSchema, GraphBuilder, GraphError, TemporalGraph, Temporality, TimeDomain, TimePoint,
};

/// Configuration of the generic evolving random-graph generator.
///
/// Produces a graph with one static categorical attribute (`kind`) and one
/// time-varying integer attribute (`level`), suitable for exercising every
/// operator and both aggregation paths.
#[derive(Clone, Debug)]
pub struct RandomGraphConfig {
    /// Node pool size.
    pub pool: usize,
    /// Number of time points.
    pub timepoints: usize,
    /// Active nodes per time point.
    pub active_per_tp: usize,
    /// Directed edges per time point.
    pub edges_per_tp: usize,
    /// Node carry-over fraction between consecutive points.
    pub node_persistence: f64,
    /// Edge carry-over fraction between consecutive points.
    pub edge_persistence: f64,
    /// Number of values of the static `kind` attribute.
    pub kinds: usize,
    /// Domain size of the time-varying `level` attribute (values `1..=levels`).
    pub levels: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            pool: 60,
            timepoints: 6,
            active_per_tp: 30,
            edges_per_tp: 60,
            node_persistence: 0.6,
            edge_persistence: 0.3,
            kinds: 3,
            levels: 4,
            seed: 0xabcd,
        }
    }
}

impl RandomGraphConfig {
    /// Generates the graph.
    ///
    /// # Errors
    /// Never in practice; propagates builder validation.
    pub fn generate(&self) -> Result<TemporalGraph, GraphError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nt = self.timepoints.max(2);
        let pool = self.pool.max(2);
        let domain = TimeDomain::indexed(nt);
        let mut schema = AttributeSchema::new();
        let kind = schema.declare("kind", Temporality::Static)?;
        let level = schema.declare("level", Temporality::TimeVarying)?;

        let mut b = GraphBuilder::new(domain, schema);
        let kind_values: Vec<Value> = (0..self.kinds.max(1))
            .map(|k| b.intern_category(kind, &format!("k{k}")))
            .collect();
        let node_kind: Vec<usize> = (0..pool)
            .map(|_| rng.gen_range(0..self.kinds.max(1)))
            .collect();
        let community: Vec<usize> = (0..pool).map(|n| n % 4).collect();

        let ids: Vec<_> = (0..pool)
            .map(|n| b.get_or_add_node(&format!("n{n}")))
            .collect();
        for (n, &id) in ids.iter().enumerate() {
            b.set_static(id, kind, kind_values[node_kind[n]].clone())?;
        }

        let mut prev_active: Vec<usize> = Vec::new();
        let mut prev_edges: Vec<(usize, usize)> = Vec::new();
        for t in 0..nt {
            let active = evolve_active_set(
                &mut rng,
                pool,
                &prev_active,
                self.active_per_tp.max(2),
                self.node_persistence,
                &[],
            );
            for &n in &active {
                b.set_time_varying(
                    ids[n],
                    level,
                    TimePoint(t as u32),
                    Value::Int(rng.gen_range(1..=self.levels.max(1))),
                )?;
            }
            let edges = evolve_edges(
                &mut rng,
                &active,
                &prev_edges,
                self.edges_per_tp,
                self.edge_persistence,
                &community,
                4,
                0.5,
                &[],
            );
            for &(u, v) in &edges {
                b.add_edge_at(ids[u], ids[v], TimePoint(t as u32))?;
            }
            prev_active = active;
            prev_edges = edges;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_graph() {
        let g = RandomGraphConfig::default().generate().unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.domain().len(), 6);
        assert!(g.n_edges() > 0);
    }

    #[test]
    fn respects_parameters() {
        let cfg = RandomGraphConfig {
            timepoints: 4,
            active_per_tp: 10,
            edges_per_tp: 15,
            ..Default::default()
        };
        let g = cfg.generate().unwrap();
        for t in g.domain().iter() {
            // node count may exceed active_per_tp because edges imply presence,
            // but never falls below it
            assert!(g.nodes_at(t) >= 10);
            assert_eq!(g.edges_at(t), 15);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomGraphConfig::default().generate().unwrap();
        let b = RandomGraphConfig::default().generate().unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
    }
}
