//! Shared machinery for the evolving-graph generators.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Chooses the active node set of the next time point: the `forced` members
/// first, then `keep` nodes carried over from the previous active set, then
/// fresh nodes drawn from the pool, to a total of `target` (bounded by the
/// pool size).
pub fn evolve_active_set(
    rng: &mut StdRng,
    pool_size: usize,
    previous: &[usize],
    target: usize,
    persistence: f64,
    forced: &[usize],
) -> Vec<usize> {
    let target = target.min(pool_size);
    let mut active: Vec<usize> = Vec::with_capacity(target);
    let mut taken: HashSet<usize> = HashSet::with_capacity(target);
    for &n in forced.iter().take(target) {
        debug_assert!(n < pool_size, "forced member outside pool");
        if taken.insert(n) {
            active.push(n);
        }
    }

    let mut carried: Vec<usize> = previous.to_vec();
    carried.shuffle(rng);
    let keep = ((previous.len() as f64 * persistence).round() as usize).min(target);
    for &n in carried.iter().take(keep) {
        if active.len() >= target {
            break;
        }
        if taken.insert(n) {
            active.push(n);
        }
    }
    while active.len() < target {
        let n = rng.gen_range(0..pool_size);
        if taken.insert(n) {
            active.push(n);
        }
    }
    active.sort_unstable();
    active
}

/// Draws `target` distinct directed edges among `active` nodes:
/// first inserting the `forced` pairs (whose endpoints must be active),
/// then re-using up to `persistence` of `previous` edges whose endpoints
/// are still active, then filling with biased random pairs — with
/// probability `intra_prob` both endpoints come from the same community
/// (`community[n]`), otherwise they are arbitrary.
///
/// Self-loops are excluded. If the active set is too small to host `target`
/// distinct pairs, fewer edges are returned.
#[allow(clippy::too_many_arguments)]
pub fn evolve_edges(
    rng: &mut StdRng,
    active: &[usize],
    previous: &[(usize, usize)],
    target: usize,
    persistence: f64,
    community: &[usize],
    n_communities: usize,
    intra_prob: f64,
    forced: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let max_pairs = active.len().saturating_mul(active.len().saturating_sub(1));
    let target = target.min(max_pairs);
    let active_set: HashSet<usize> = active.iter().copied().collect();
    let mut chosen: HashSet<(usize, usize)> = HashSet::with_capacity(target);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(target);
    for &(u, v) in forced.iter().take(target) {
        debug_assert!(
            u != v && active_set.contains(&u) && active_set.contains(&v),
            "forced edge endpoints must be active and distinct"
        );
        if chosen.insert((u, v)) {
            edges.push((u, v));
        }
    }

    let mut carried: Vec<(usize, usize)> = previous
        .iter()
        .copied()
        .filter(|(u, v)| active_set.contains(u) && active_set.contains(v))
        .collect();
    carried.shuffle(rng);
    let keep = ((previous.len() as f64 * persistence).round() as usize).min(target);
    for &(u, v) in carried.iter().take(keep) {
        if edges.len() >= target {
            break;
        }
        if chosen.insert((u, v)) {
            edges.push((u, v));
        }
    }

    // Bucket active nodes by community for intra-community draws.
    let mut by_comm: Vec<Vec<usize>> = vec![Vec::new(); n_communities.max(1)];
    for &n in active {
        by_comm[community[n] % n_communities.max(1)].push(n);
    }
    let nonempty: Vec<usize> = (0..by_comm.len())
        .filter(|&c| by_comm[c].len() >= 2)
        .collect();

    let mut attempts = 0usize;
    let attempt_budget = target.saturating_mul(50) + 1000;
    while edges.len() < target && attempts < attempt_budget {
        attempts += 1;
        let (u, v) = if !nonempty.is_empty() && rng.gen_bool(intra_prob) {
            let c = nonempty[rng.gen_range(0..nonempty.len())];
            let members = &by_comm[c];
            (
                members[rng.gen_range(0..members.len())],
                members[rng.gen_range(0..members.len())],
            )
        } else {
            (
                active[rng.gen_range(0..active.len())],
                active[rng.gen_range(0..active.len())],
            )
        };
        if u == v {
            continue;
        }
        if chosen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    // Dense graphs (MovieLens August reaches ~36% of all ordered pairs) can
    // exhaust rejection sampling; finish deterministically by scanning.
    if edges.len() < target {
        'outer: for &u in active {
            for &v in active {
                if u != v && chosen.insert((u, v)) {
                    edges.push((u, v));
                    if edges.len() == target {
                        break 'outer;
                    }
                }
            }
        }
    }
    edges
}

/// Draws a skewed positive integer in `1..=max` (geometric-ish: small
/// values dominate, as publication counts per author do).
pub fn skewed_count(rng: &mut StdRng, max: i64) -> i64 {
    let mut v = 1;
    while v < max && rng.gen_bool(0.45) {
        v += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn active_set_size_and_distinctness() {
        let mut rng = StdRng::seed_from_u64(7);
        let prev: Vec<usize> = (0..50).collect();
        let a = evolve_active_set(&mut rng, 1000, &prev, 80, 0.7, &[]);
        assert_eq!(a.len(), 80);
        let set: HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 80);
        // roughly persistence * |prev| carried over
        let carried = a.iter().filter(|&&n| n < 50).count();
        assert!(carried >= 30, "expected ~35 carried, got {carried}");
    }

    #[test]
    fn active_set_bounded_by_pool() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = evolve_active_set(&mut rng, 10, &[], 50, 0.5, &[]);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn edges_distinct_no_self_loops() {
        let mut rng = StdRng::seed_from_u64(42);
        let active: Vec<usize> = (0..30).collect();
        let comm: Vec<usize> = (0..30).map(|n| n % 3).collect();
        let e = evolve_edges(&mut rng, &active, &[], 100, 0.0, &comm, 3, 0.8, &[]);
        assert_eq!(e.len(), 100);
        let set: HashSet<_> = e.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(e.iter().all(|(u, v)| u != v));
    }

    #[test]
    fn edges_saturate_dense_targets() {
        let mut rng = StdRng::seed_from_u64(42);
        let active: Vec<usize> = (0..10).collect();
        let comm = vec![0; 10];
        // request more than the 90 possible ordered pairs
        let e = evolve_edges(&mut rng, &active, &[], 500, 0.0, &comm, 1, 0.5, &[]);
        assert_eq!(e.len(), 90);
    }

    #[test]
    fn edges_reuse_previous() {
        let mut rng = StdRng::seed_from_u64(1);
        let active: Vec<usize> = (0..20).collect();
        let comm = vec![0; 20];
        let prev: Vec<(usize, usize)> = (0..10).map(|i| (i, i + 10)).collect();
        let e = evolve_edges(&mut rng, &active, &prev, 20, 1.0, &comm, 1, 0.5, &[]);
        let kept = prev.iter().filter(|p| e.contains(p)).count();
        assert_eq!(kept, 10, "full persistence keeps every surviving edge");
    }

    #[test]
    fn skewed_counts_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = skewed_count(&mut rng, 12);
            assert!((1..=12).contains(&v));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let active: Vec<usize> = (0..40).collect();
            let comm: Vec<usize> = (0..40).map(|n| n % 4).collect();
            evolve_edges(&mut rng, &active, &[], 60, 0.0, &comm, 4, 0.7, &[])
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }
}

#[cfg(test)]
mod forced_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forced_members_always_active() {
        let mut rng = StdRng::seed_from_u64(3);
        let forced = [1usize, 5, 9];
        let a = evolve_active_set(&mut rng, 100, &[], 20, 0.5, &forced);
        for f in forced {
            assert!(a.contains(&f));
        }
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn forced_members_respect_target() {
        let mut rng = StdRng::seed_from_u64(3);
        let forced: Vec<usize> = (0..10).collect();
        let a = evolve_active_set(&mut rng, 100, &[], 4, 0.5, &forced);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn forced_edges_always_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let active: Vec<usize> = (0..20).collect();
        let comm = vec![0; 20];
        let forced = [(0usize, 1usize), (2, 3)];
        let e = evolve_edges(&mut rng, &active, &[], 10, 0.0, &comm, 1, 0.5, &forced);
        assert!(e.contains(&(0, 1)) && e.contains(&(2, 3)));
        assert_eq!(e.len(), 10);
    }
}
