//! Million-node evolving graphs for bit-kernel stress benchmarks.

use crate::common::{evolve_active_set, evolve_edges};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tempo_columnar::Value;
use tempo_graph::{
    AttributeSchema, GraphBuilder, GraphError, TemporalGraph, Temporality, TimeDomain, TimePoint,
};

/// Configuration of the `large` preset: a node pool big enough that one
/// transposed presence column spans tens of thousands of packed words
/// (≥1M nodes at `scale = 1.0`), with per-timepoint presence density as the
/// primary knob.
///
/// Every pool node is registered up front — including ones never present —
/// so the node dimension (and with it the dense column width) is exactly
/// `pool` regardless of density. The schema carries a single *static*
/// categorical attribute (`kind`): at this scale a time-varying table would
/// cost hundreds of megabytes, and a static table is also what routes
/// exploration through the popcount fast path the benchmark measures.
#[derive(Clone, Debug)]
pub struct LargeConfig {
    /// Node pool size (= node dimension of the built graph).
    pub pool: usize,
    /// Number of time points.
    pub timepoints: usize,
    /// Fraction of the pool active per time point (presence density).
    pub density: f64,
    /// Directed edges per active node per time point.
    pub edges_per_node: f64,
    /// Node carry-over fraction between consecutive points.
    pub node_persistence: f64,
    /// Edge carry-over fraction between consecutive points.
    pub edge_persistence: f64,
    /// Number of values of the static `kind` attribute.
    pub kinds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LargeConfig {
    fn default() -> Self {
        LargeConfig {
            pool: 1_000_000,
            timepoints: 24,
            density: 0.002,
            edges_per_node: 1.5,
            node_persistence: 0.6,
            edge_persistence: 0.3,
            kinds: 8,
            seed: 0x1a46e,
        }
    }
}

impl LargeConfig {
    /// Default configuration with the pool scaled by `scale` (so CI smoke
    /// tests run the same code path on a few thousand nodes).
    #[must_use]
    pub fn scaled(scale: f64) -> Self {
        let base = LargeConfig::default();
        LargeConfig {
            pool: ((base.pool as f64 * scale) as usize).max(100),
            ..base
        }
    }

    /// This configuration with a different presence density.
    #[must_use]
    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density;
        self
    }

    /// Active nodes per time point implied by `pool` and `density`.
    #[must_use]
    pub fn active_per_tp(&self) -> usize {
        ((self.pool as f64 * self.density).round() as usize).clamp(2, self.pool)
    }

    /// Generates the graph.
    ///
    /// # Errors
    /// Never in practice; propagates builder validation.
    pub fn generate(&self) -> Result<TemporalGraph, GraphError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let nt = self.timepoints.max(2);
        let pool = self.pool.max(100);
        let domain = TimeDomain::indexed(nt);
        let mut schema = AttributeSchema::new();
        let kind = schema.declare("kind", Temporality::Static)?;

        let mut b = GraphBuilder::new(domain, schema);
        let kind_values: Vec<Value> = (0..self.kinds.max(1))
            .map(|k| b.intern_category(kind, &format!("k{k}")))
            .collect();
        let n_communities = 64usize;
        let ids: Vec<_> = (0..pool)
            .map(|n| b.get_or_add_node(&format!("n{n}")))
            .collect();
        for (n, &id) in ids.iter().enumerate() {
            b.set_static(id, kind, kind_values[n % self.kinds.max(1)].clone())?;
        }

        let active_target = self.active_per_tp();
        let edge_target = ((active_target as f64 * self.edges_per_node).round() as usize).max(1);
        // Communities are taken modulo the id, so a node keeps its
        // community across time points without a pool-sized side table.
        let community: Vec<usize> = (0..pool).map(|n| n % n_communities).collect();
        let mut prev_active: Vec<usize> = Vec::new();
        let mut prev_edges: Vec<(usize, usize)> = Vec::new();
        for t in 0..nt {
            let active = evolve_active_set(
                &mut rng,
                pool,
                &prev_active,
                active_target,
                self.node_persistence,
                &[],
            );
            for &n in &active {
                b.set_presence(ids[n], TimePoint(t as u32))?;
            }
            let edges = evolve_edges(
                &mut rng,
                &active,
                &prev_edges,
                edge_target,
                self.edge_persistence,
                &community,
                n_communities,
                0.5,
                &[],
            );
            for &(u, v) in &edges {
                b.add_edge_at(ids[u], ids[v], TimePoint(t as u32))?;
            }
            prev_active = active;
            prev_edges = edges;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generate-and-validate at tiny scale: the full code path of the
    /// preset on a pool small enough for CI.
    #[test]
    fn tiny_scale_smoke() {
        let cfg = LargeConfig::scaled(0.002); // 2 000-node pool
        let g = cfg.generate().unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.n_nodes(), 2_000);
        assert_eq!(g.domain().len(), 24);
        assert!(g.n_edges() > 0);
        // density knob drives the per-timepoint presence
        let expect = cfg.active_per_tp();
        for t in g.domain().iter() {
            let at = g.nodes_at(t);
            assert!(
                at >= expect && at <= expect + 2 * cfg.active_per_tp(),
                "nodes_at({t:?}) = {at}, want ≥ {expect}"
            );
        }
    }

    #[test]
    fn density_knob_changes_presence() {
        let sparse = LargeConfig::scaled(0.002).with_density(0.002);
        let dense = LargeConfig::scaled(0.002).with_density(0.2);
        assert!(dense.active_per_tp() > 10 * sparse.active_per_tp());
        let g = dense.generate().unwrap();
        assert!(g.validate().is_ok());
        let t0 = g.domain().iter().next().unwrap();
        assert!(g.nodes_at(t0) >= dense.active_per_tp());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = LargeConfig::scaled(0.001).generate().unwrap();
        let b = LargeConfig::scaled(0.001).generate().unwrap();
        assert_eq!(a.n_nodes(), b.n_nodes());
        assert_eq!(a.n_edges(), b.n_edges());
    }
}
