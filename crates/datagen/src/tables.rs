//! The evaluation datasets' published statistics (Tables 3 and 4 of the
//! paper), used to calibrate the synthetic generators.

/// Year labels of the DBLP dataset (Table 3).
pub const DBLP_YEARS: [&str; 21] = [
    "2000", "2001", "2002", "2003", "2004", "2005", "2006", "2007", "2008", "2009", "2010", "2011",
    "2012", "2013", "2014", "2015", "2016", "2017", "2018", "2019", "2020",
];

/// Nodes per year of the DBLP dataset (Table 3).
pub const DBLP_NODES: [usize; 21] = [
    1708, 2165, 1761, 2827, 3278, 4466, 4730, 5193, 5501, 5363, 6236, 6535, 6769, 7457, 7035, 8581,
    8966, 9660, 11037, 12377, 12996,
];

/// Edges per year of the DBLP dataset (Table 3).
pub const DBLP_EDGES: [usize; 21] = [
    2336, 2949, 2458, 4130, 4821, 7145, 7296, 7620, 8528, 8740, 10163, 10090, 11871, 12989, 12072,
    15844, 16873, 18470, 21197, 27455, 28546,
];

/// Month labels of the MovieLens dataset (Table 4).
pub const MOVIELENS_MONTHS: [&str; 6] = ["May", "Jun", "Jul", "Aug", "Sep", "Oct"];

/// Nodes per month of the MovieLens dataset (Table 4).
pub const MOVIELENS_NODES: [usize; 6] = [486, 508, 778, 1309, 575, 498];

/// Edges per month of the MovieLens dataset (Table 4).
pub const MOVIELENS_EDGES: [usize; 6] = [100202, 85334, 201800, 610050, 77216, 48516];

/// Scales a count, keeping at least `min`.
pub fn scaled(count: usize, scale: f64, min: usize) -> usize {
    ((count as f64 * scale).round() as usize).max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lengths_consistent() {
        assert_eq!(DBLP_YEARS.len(), DBLP_NODES.len());
        assert_eq!(DBLP_YEARS.len(), DBLP_EDGES.len());
        assert_eq!(MOVIELENS_MONTHS.len(), MOVIELENS_NODES.len());
        assert_eq!(MOVIELENS_MONTHS.len(), MOVIELENS_EDGES.len());
    }

    #[test]
    fn peak_month_is_august() {
        let max = MOVIELENS_EDGES.iter().max().unwrap();
        assert_eq!(*max, MOVIELENS_EDGES[3]);
    }

    #[test]
    fn scaled_respects_min() {
        assert_eq!(scaled(100, 0.5, 1), 50);
        assert_eq!(scaled(3, 0.1, 2), 2);
        assert_eq!(scaled(0, 1.0, 1), 1);
    }
}
