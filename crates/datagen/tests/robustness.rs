//! Robustness tests for the dataset generators: extreme parameters must
//! still produce valid graphs, and scaling must behave monotonically.

use proptest::prelude::*;
use tempo_datagen::{DblpConfig, MovieLensConfig, RandomGraphConfig, SchoolConfig};
use tempo_graph::GraphStats;

#[test]
fn dblp_scaling_is_monotone() {
    let small = DblpConfig::scaled(0.01).generate().unwrap();
    let large = DblpConfig::scaled(0.03).generate().unwrap();
    let (s, l) = (GraphStats::compute(&small), GraphStats::compute(&large));
    for t in 0..21 {
        assert!(s.nodes_per_tp[t] <= l.nodes_per_tp[t]);
        assert!(s.edges_per_tp[t] <= l.edges_per_tp[t]);
    }
}

#[test]
fn dblp_zero_persistence_still_valid() {
    let cfg = DblpConfig {
        node_persistence: 0.0,
        edge_persistence: 0.0,
        ..DblpConfig::scaled(0.01)
    };
    let g = cfg.generate().unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn dblp_full_persistence_still_valid() {
    let cfg = DblpConfig {
        node_persistence: 1.0,
        edge_persistence: 1.0,
        ..DblpConfig::scaled(0.01)
    };
    let g = cfg.generate().unwrap();
    assert!(g.validate().is_ok());
    // with full node persistence the node overlap between consecutive years
    // must be high wherever the year shrinks or stays equal
    let j = tempo_graph::metrics::node_jaccard(
        &g,
        tempo_graph::TimePoint(1),
        tempo_graph::TimePoint(2),
    );
    assert!(j > 0.5, "full persistence should overlap heavily: {j}");
}

#[test]
fn dblp_no_stars_no_stable_core_edge_case() {
    let cfg = DblpConfig {
        star_fraction: 0.0,
        stable_pairs: 0,
        stable_span: 0,
        spike_prob: 0.0,
        ..DblpConfig::scaled(0.01)
    };
    // star/stable counts clamp to at least 1 internally; the graph stays valid
    let g = cfg.generate().unwrap();
    assert!(g.validate().is_ok());
}

#[test]
fn movielens_extreme_density_saturates_gracefully() {
    // node scale small but edge scale large → targets exceed possible pairs
    let cfg = MovieLensConfig {
        scale: 0.02,
        edge_scale: 1.0,
        ..MovieLensConfig::scaled(0.02)
    };
    let g = cfg.generate().unwrap();
    assert!(g.validate().is_ok());
    for t in g.domain().iter() {
        let n = g.nodes_at(t);
        assert!(g.edges_at(t) <= n * n.saturating_sub(1));
    }
}

#[test]
fn school_minimal_configuration() {
    let cfg = SchoolConfig {
        grades: 1,
        classes_per_grade: 1,
        students_per_class: 3,
        days: 2,
        ..Default::default()
    };
    let g = cfg.generate().unwrap();
    assert_eq!(g.n_nodes(), 3);
    assert!(g.validate().is_ok());
}

#[test]
fn school_zero_attendance_produces_empty_days() {
    let cfg = SchoolConfig {
        attendance: 0.0,
        days: 3,
        ..Default::default()
    };
    let g = cfg.generate().unwrap();
    for t in g.domain().iter() {
        assert_eq!(g.nodes_at(t), 0);
        assert_eq!(g.edges_at(t), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random-graph configuration in a sane range builds a valid graph
    /// with the requested per-timepoint shape.
    #[test]
    fn random_config_always_valid(
        pool in 2usize..50,
        tps in 2usize..8,
        active in 2usize..30,
        edges in 0usize..80,
        np in 0u8..=10,
        ep in 0u8..=10,
        seed in any::<u64>(),
    ) {
        let cfg = RandomGraphConfig {
            pool,
            timepoints: tps,
            active_per_tp: active,
            edges_per_tp: edges,
            node_persistence: f64::from(np) / 10.0,
            edge_persistence: f64::from(ep) / 10.0,
            kinds: 2,
            levels: 3,
            seed,
        };
        let g = cfg.generate().unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.domain().len(), tps.max(2));
        for t in g.domain().iter() {
            let max_pairs = g.nodes_at(t) * g.nodes_at(t).saturating_sub(1);
            prop_assert!(g.edges_at(t) <= max_pairs.max(edges));
        }
    }
}
