//! Concurrent-server study: spawns `tempo-server` in process, loads one
//! shared snapshot, and drives it with 32 concurrent clients replaying a
//! fixed query mix. Every response is asserted byte-identical to the
//! single-connection reference run, a zero-budget request must come back
//! as a timeout error, and the run reports client-side and server-side
//! latency quantiles plus throughput. Writes `BENCH_server.json`.
//!
//! Latency is measured through the `server.client_request_ns` histogram
//! (instrument spans), so the numbers land in the same registry the
//! server's own `metrics` command exposes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tempo_bench::datasets::scale;
use tempo_bench::report::{metrics_json, secs, timed, Json};
use tempo_server::{spawn, ServerConfig};

const CLIENTS: usize = 32;
const ROUNDS: usize = 8;

/// The fixed per-round query mix every client replays.
const QUERIES: &[&str] = &[
    "stats bench",
    "schema bench",
    "agg bench dist attrs=gender",
    "explore bench event=growth semantics=union extend=new k=2 attrs=gender",
    "explore bench event=stability semantics=intersect extend=old k=2 attrs=gender",
    "suggest bench event=shrinkage semantics=union extend=new attrs=gender",
];

/// Minimal blocking client for the `OK <n>` / `ERR …` protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        let writer = stream.try_clone().expect("clone client stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// One request/response round trip; returns the full wire response.
    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("write request");
        self.writer.flush().expect("flush request");
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("read status");
        let mut response = status.clone();
        if let Some(rest) = status.trim_end().strip_prefix("OK ") {
            // the count is the first token; snapshot-scoped responses
            // append an `epoch=<e>` token after it
            let n: usize = rest
                .split_whitespace()
                .next()
                .unwrap_or("")
                .parse()
                .expect("payload line count");
            for _ in 0..n {
                let mut l = String::new();
                self.reader.read_line(&mut l).expect("read payload");
                response.push_str(&l);
            }
        }
        response
    }

    /// A round trip timed through the shared client-latency histogram.
    fn request_timed(&mut self, line: &str) -> String {
        let _span = tempo_instrument::global()
            .histogram("server.client_request_ns")
            .span();
        self.request(line)
    }
}

fn main() {
    tempo_instrument::global().reset();
    let server = spawn(ServerConfig::default()).expect("spawn in-process server");
    let addr = server.addr();
    println!("tempo-server bench instance on {addr}");

    // One shared snapshot, deterministic across runs.
    let mut setup = Client::connect(addr);
    let gen = format!("generate bench dblp scale={} seed=1", scale());
    let resp = setup.request(&gen);
    assert!(resp.starts_with("OK "), "snapshot setup failed: {resp}");

    // Single-connection reference answers: the bit-identity oracle.
    let reference: Vec<String> = QUERIES.iter().map(|q| setup.request(q)).collect();

    // Request-scoped timeout enforcement.
    let resp = setup.request(
        "explore bench event=growth semantics=union extend=new k=2 attrs=gender timeout_ms=0",
    );
    assert!(
        resp.starts_with("ERR timeout:"),
        "zero budget must trip the deadline: {resp}"
    );

    println!(
        "driving {CLIENTS} clients x {ROUNDS} rounds x {} queries",
        QUERIES.len()
    );
    let (divergences, wall) = timed(|| {
        std::thread::scope(|s| {
            let reference = &reference;
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    s.spawn(move || {
                        let mut c = Client::connect(addr);
                        let mut diverged = 0usize;
                        for _ in 0..ROUNDS {
                            for (q, want) in QUERIES.iter().zip(reference) {
                                if c.request_timed(q) != *want {
                                    diverged += 1;
                                }
                            }
                        }
                        diverged
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum::<usize>()
        })
    });
    assert_eq!(
        divergences, 0,
        "concurrent responses must be bit-identical to the serial reference"
    );

    let total_requests = CLIENTS * ROUNDS * QUERIES.len();
    let wall_s = secs(wall);
    let throughput = total_requests as f64 / wall_s;
    let snap = tempo_instrument::global().snapshot();
    let client = snap
        .histogram("server.client_request_ns")
        .expect("client latency histogram recorded");
    let served = snap
        .histogram("server.request_ns")
        .expect("server latency histogram recorded");
    println!(
        "{total_requests} requests over {wall_s:.2}s = {throughput:.0} req/s; \
         client p50 {:.3} ms, p99 {:.3} ms",
        client.p50 as f64 / 1e6,
        client.p99 as f64 / 1e6
    );

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("server")),
        ("dataset".into(), Json::str("dblp_synthetic")),
        ("scale".into(), Json::Num(scale())),
        ("clients".into(), Json::Int(CLIENTS as u64)),
        ("rounds".into(), Json::Int(ROUNDS as u64)),
        ("queries_per_round".into(), Json::Int(QUERIES.len() as u64)),
        ("total_requests".into(), Json::Int(total_requests as u64)),
        ("bit_identical_to_serial".into(), Json::Bool(true)),
        ("timeout_enforced".into(), Json::Bool(true)),
        ("wall_s".into(), Json::Num(wall_s)),
        ("throughput_rps".into(), Json::Num(throughput)),
        ("client_p50_ns".into(), Json::Int(client.p50)),
        ("client_p99_ns".into(), Json::Int(client.p99)),
        ("server_p50_ns".into(), Json::Int(served.p50)),
        ("server_p99_ns".into(), Json::Int(served.p99)),
        ("metrics".into(), metrics_json(&snap)),
    ]);

    drop(setup);
    server.shutdown();

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".to_owned());
    std::fs::write(&path, report.render()).expect("write server report");
    println!("wrote {path}");
}
