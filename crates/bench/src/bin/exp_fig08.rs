//! Figure 8: difference `𝒯old(∪) − 𝒯new` + aggregation (DIST, ALL) time
//! while extending 𝒯old backward with union semantics; 𝒯new is the last
//! time point.
//!
//! Shape to reproduce: total time grows as 𝒯old expands (the operator
//! output grows); for static attributes the operation dominates both
//! aggregation modes, for time-varying attributes aggregation is the
//! expensive part.

use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::difference;
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_bench::report::{print_series, secs, timed, Series};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn run(g: &TemporalGraph, attr_names: &[&str], title: &str) {
    let n = g.domain().len();
    let tnew = TimeSet::point(n, TimePoint((n - 1) as u32));
    let mut op_series = Series::new("diff-op");
    let mut series: Vec<Series> = Vec::new();
    for name in attr_names {
        series.push(Series::new(&format!("{name}+DIST")));
        series.push(Series::new(&format!("{name}+ALL")));
    }
    // extend 𝒯old backward: [n-2, n-2], [n-3, n-2], … , [0, n-2]
    for start in (0..n - 1).rev() {
        let told = TimeSet::range(n, start, n - 2);
        let (d, op_time) = timed(|| difference(g, &told, &tnew).expect("difference"));
        let label = g.domain().label(TimePoint(start as u32)).to_owned();
        op_series.push(&label, secs(op_time));
        for (i, name) in attr_names.iter().enumerate() {
            let ids = attrs(&d, &[name]);
            let (_, t_dist) = timed(|| aggregate(&d, &ids, AggMode::Distinct));
            let (_, t_all) = timed(|| aggregate(&d, &ids, AggMode::All));
            series[2 * i].push(&label, secs(op_time) + secs(t_dist));
            series[2 * i + 1].push(&label, secs(op_time) + secs(t_all));
        }
    }
    let mut all = vec![op_series];
    all.extend(series);
    print_series(title, &all);
}

fn main() {
    let g = dblp();
    run(
        &g,
        &["gender", "publications"],
        "Fig. 8a–c — DBLP difference 𝒯old(∪)−𝒯new while extending 𝒯old (s); x = start of 𝒯old",
    );
    let g = movielens();
    run(
        &g,
        &["gender", "rating"],
        "Fig. 8d — MovieLens difference 𝒯old(∪)−𝒯new while extending 𝒯old (s)",
    );
}
