//! Figure 14: exploration of female→female collaborations in DBLP —
//! (a) maximal stability intervals under intersection semantics,
//! (b) minimal growth and (c) minimal shrinkage intervals under union
//! semantics, across a k schedule initialized from w_th (§3.5).
//!
//! Shape to reproduce: stability and growth concentrate in the late years
//! (the graph keeps growing), and large shrinkage thresholds require long
//! 𝒯old intervals.

use tempo_bench::datasets::{attrs, dblp};
use tempo_bench::explore_runner::run_edge_exploration;
use tempo_graph::GraphStats;

fn main() {
    let g = dblp();
    println!("{}", GraphStats::compute(&g).render_table());
    let gender = attrs(&g, &["gender"])[0];
    let f = g
        .schema()
        .category(gender, "f")
        .expect("female category exists");
    println!("exploring f→f collaborations");
    run_edge_exploration(&g, gender, f.clone(), f);
}
