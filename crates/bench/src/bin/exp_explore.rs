//! Exploration pruning study (§3, implicit in the paper): evaluations and
//! wall-clock time of the monotonicity-pruned strategies versus naive
//! enumeration of every interval pair, across all twelve Table-1 cases —
//! plus the three-way ablation of the evaluation paths (chain-incremental
//! cursor vs per-pair kernel vs materializing oracle) and the entity-space
//! sharding arm (sharded vs chain-parallel at an equal thread budget,
//! `GRAPHTEMPO_SHARDS` shards, asserted bit-identical), written to
//! `BENCH_explore_kernel.json`.

use graphtempo::explore::{
    explore, explore_materializing, explore_naive, explore_pairwise, explore_parallel,
    explore_sharded_parallel, suggest_k, ExploreConfig, ExtendSide, Selector, Semantics,
};
use graphtempo::ops::Event;
use tempo_bench::datasets::{attrs, dblp, scale};
use tempo_bench::report::{metrics_json, secs, timed, timed_min, Json};
use tempo_graph::TemporalGraph;

fn all_cases(g: &TemporalGraph, selector: &Selector) -> Vec<ExploreConfig> {
    let gender = attrs(g, &["gender"])[0];
    let mut out = Vec::new();
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let mut cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 1,
                    attrs: vec![gender],
                    selector: selector.clone(),
                };
                cfg.k = suggest_k(g, &cfg)
                    .expect("suggest_k succeeds")
                    .unwrap_or(1)
                    .max(1);
                out.push(cfg);
            }
        }
    }
    out
}

fn case_name(cfg: &ExploreConfig) -> (String, String, &'static str) {
    (
        format!("{:?}", cfg.event),
        format!("{:?}", cfg.extend),
        match cfg.semantics {
            Semantics::Union => "union",
            Semantics::Intersection => "intersection",
        },
    )
}

fn pruning_study(g: &TemporalGraph, cases: &[ExploreConfig]) {
    println!(
        "{:<12} {:<6} {:<4} {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6}",
        "event", "extend", "sem", "k", "evals", "naive", "time(s)", "par4(s)", "naive(s)", "same"
    );
    for cfg in cases {
        let (event, extend, sem) = case_name(cfg);
        let (fast, fast_t) = timed(|| explore(g, cfg).expect("explore"));
        let (par, par_t) = timed(|| explore_parallel(g, cfg, 4).expect("parallel"));
        assert_eq!(par.pairs, fast.pairs, "parallel must match sequential");
        let (slow, slow_t) = timed(|| explore_naive(g, cfg).expect("naive"));
        println!(
            "{:<12} {:<6} {:<4} {:>4} {:>8} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>6}",
            event,
            extend,
            if sem == "union" { "∪" } else { "∩" },
            cfg.k,
            fast.evaluations,
            slow.evaluations,
            secs(fast_t),
            secs(par_t),
            secs(slow_t),
            fast.pairs == slow.pairs
        );
        assert_eq!(fast.pairs, slow.pairs, "pruned results must match naive");
    }
}

/// Ablates the three evaluation paths with pruning behavior held fixed
/// (identical pair enumeration, identical `evaluations` counts): the
/// chain-incremental cursor (`explore`), the per-pair kernel
/// (`explore_pairwise`), and the materializing oracle
/// (`explore_materializing`). Returns the report.
fn kernel_ablation(g: &TemporalGraph, cases: &[ExploreConfig]) -> Json {
    const REPS: usize = 3;
    println!(
        "\n{:<12} {:<6} {:<13} {:>4} {:>8} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "event",
        "extend",
        "semantics",
        "k",
        "evals",
        "chain(s)",
        "kernel(s)",
        "mater.(s)",
        "ch/kern",
        "ch/mat"
    );
    let mut entries = Vec::new();
    let mut log_vs_pairwise = Vec::new();
    let mut log_vs_materializing = Vec::new();
    for cfg in cases {
        let (event, extend, sem) = case_name(cfg);
        let (chained, chain_t) = timed_min(REPS, || explore(g, cfg).expect("chain explore"));
        let (pairwise, pair_t) =
            timed_min(REPS, || explore_pairwise(g, cfg).expect("pairwise explore"));
        let (slow, slow_t) = timed_min(REPS, || {
            explore_materializing(g, cfg).expect("materializing explore")
        });
        assert_eq!(chained.pairs, pairwise.pairs, "cursor must match kernel");
        assert_eq!(chained.pairs, slow.pairs, "cursor must match materializing");
        assert_eq!(
            chained.evaluations, pairwise.evaluations,
            "all evaluators share the pruning strategies, so the number of \
             pair evaluations must be identical"
        );
        assert_eq!(chained.evaluations, slow.evaluations);
        let evals = chained.evaluations.max(1) as f64;
        let chain_us = secs(chain_t) * 1e6 / evals;
        let kernel_us = secs(pair_t) * 1e6 / evals;
        let mater_us = secs(slow_t) * 1e6 / evals;
        let vs_pairwise = secs(pair_t) / secs(chain_t).max(f64::EPSILON);
        let vs_materializing = secs(slow_t) / secs(chain_t).max(f64::EPSILON);
        log_vs_pairwise.push(vs_pairwise.ln());
        log_vs_materializing.push(vs_materializing.ln());
        println!(
            "{:<12} {:<6} {:<13} {:>4} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>7.2}x {:>7.2}x",
            event,
            extend,
            sem,
            cfg.k,
            chained.evaluations,
            secs(chain_t),
            secs(pair_t),
            secs(slow_t),
            vs_pairwise,
            vs_materializing
        );
        entries.push(Json::Obj(vec![
            ("event".into(), Json::str(&event)),
            ("extend".into(), Json::str(&extend)),
            ("semantics".into(), Json::str(sem)),
            ("k".into(), Json::Int(cfg.k)),
            ("evaluations".into(), Json::Int(chained.evaluations as u64)),
            ("pairs".into(), Json::Int(chained.pairs.len() as u64)),
            ("chain_s".into(), Json::Num(secs(chain_t))),
            ("pairwise_s".into(), Json::Num(secs(pair_t))),
            ("materializing_s".into(), Json::Num(secs(slow_t))),
            ("chain_us_per_eval".into(), Json::Num(chain_us)),
            ("pairwise_us_per_eval".into(), Json::Num(kernel_us)),
            ("materializing_us_per_eval".into(), Json::Num(mater_us)),
            ("speedup_chain_vs_pairwise".into(), Json::Num(vs_pairwise)),
            (
                "speedup_chain_vs_materializing".into(),
                Json::Num(vs_materializing),
            ),
        ]));
    }
    let geomean = |logs: &[f64]| (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp();
    let gm_pairwise = geomean(&log_vs_pairwise);
    let gm_materializing = geomean(&log_vs_materializing);
    println!("\ngeomean chain-incremental speedup over per-pair kernel: {gm_pairwise:.2}x");
    println!("geomean chain-incremental speedup over materializing path: {gm_materializing:.2}x");
    Json::Obj(vec![
        ("experiment".into(), Json::str("explore_kernel_ablation")),
        ("dataset".into(), Json::str("dblp_synthetic")),
        ("scale".into(), Json::Num(scale())),
        ("reps".into(), Json::Int(REPS as u64)),
        ("timepoints".into(), Json::Int(g.domain().len() as u64)),
        ("nodes".into(), Json::Int(g.n_nodes() as u64)),
        ("edges".into(), Json::Int(g.n_edges() as u64)),
        ("geomean_chain_vs_pairwise".into(), Json::Num(gm_pairwise)),
        (
            "geomean_chain_vs_materializing".into(),
            Json::Num(gm_materializing),
        ),
        ("cases".into(), Json::Arr(entries)),
    ])
}

/// Shard count for the sharded arm (`GRAPHTEMPO_SHARDS`, default 4;
/// 1 forces the degenerate unsharded delegate for ablation).
fn shard_count() -> usize {
    std::env::var("GRAPHTEMPO_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .max(1)
}

/// Ablates entity-space sharding against chain-only parallelism at an
/// equal thread budget: `explore_sharded_parallel` (shards × chain
/// groups) versus `explore_parallel` (chains only), both asserted
/// bit-identical to the sequential chain path. Returns the report
/// section.
fn sharded_ablation(g: &TemporalGraph, cases: &[ExploreConfig]) -> Json {
    const REPS: usize = 3;
    let shards = shard_count();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let threads = cores.max(shards);
    println!(
        "\nsharded arm: {shards} shards, {threads} threads, {cores} cores\n\
         {:<12} {:<6} {:<13} {:>4} {:>8} {:>10} {:>10} {:>8}",
        "event", "extend", "semantics", "k", "evals", "chainpar(s)", "sharded(s)", "sh/cp"
    );
    let mut entries = Vec::new();
    let mut log_speedups = Vec::new();
    for cfg in cases {
        let (event, extend, sem) = case_name(cfg);
        let seq = explore(g, cfg).expect("chain explore");
        let (par, par_t) = timed_min(REPS, || {
            explore_parallel(g, cfg, threads).expect("chain-parallel explore")
        });
        let (sh, sh_t) = timed_min(REPS, || {
            explore_sharded_parallel(g, cfg, shards, threads).expect("sharded explore")
        });
        assert_eq!(par.pairs, seq.pairs, "chain-parallel must match chain");
        assert_eq!(sh.pairs, seq.pairs, "sharded must match chain");
        assert_eq!(sh.evaluations, seq.evaluations);
        let speedup = secs(par_t) / secs(sh_t).max(f64::EPSILON);
        log_speedups.push(speedup.ln());
        println!(
            "{:<12} {:<6} {:<13} {:>4} {:>8} {:>10.4} {:>10.4} {:>7.2}x",
            event,
            extend,
            sem,
            cfg.k,
            sh.evaluations,
            secs(par_t),
            secs(sh_t),
            speedup
        );
        entries.push(Json::Obj(vec![
            ("event".into(), Json::str(&event)),
            ("extend".into(), Json::str(&extend)),
            ("semantics".into(), Json::str(sem)),
            ("k".into(), Json::Int(cfg.k)),
            ("evaluations".into(), Json::Int(sh.evaluations as u64)),
            ("pairs".into(), Json::Int(sh.pairs.len() as u64)),
            ("chain_parallel_s".into(), Json::Num(secs(par_t))),
            ("sharded_s".into(), Json::Num(secs(sh_t))),
            (
                "speedup_sharded_vs_chain_parallel".into(),
                Json::Num(speedup),
            ),
        ]));
    }
    let geomean = (log_speedups.iter().sum::<f64>() / log_speedups.len().max(1) as f64).exp();
    println!("geomean sharded speedup over chain-parallel: {geomean:.2}x");
    Json::Obj(vec![
        ("shards".into(), Json::Int(shards as u64)),
        ("threads".into(), Json::Int(threads as u64)),
        ("cores".into(), Json::Int(cores as u64)),
        ("reps".into(), Json::Int(REPS as u64)),
        (
            "geomean_sharded_vs_chain_parallel".into(),
            Json::Num(geomean),
        ),
        ("cases".into(), Json::Arr(entries)),
    ])
}

fn main() {
    let g = dblp();
    let gender = attrs(&g, &["gender"])[0];
    let f = g.schema().category(gender, "f").expect("category");
    let selector = Selector::edge_1attr(f.clone(), f);
    let cases = all_cases(&g, &selector);

    pruning_study(&g, &cases);
    // reset so the report's `metrics` section covers exactly the ablation
    tempo_instrument::global().reset();
    let report = kernel_ablation(&g, &cases);
    let Json::Obj(mut fields) = report else {
        unreachable!("kernel_ablation returns an object")
    };
    fields.push(("sharded".into(), sharded_ablation(&g, &cases)));
    fields.push((
        "metrics".into(),
        metrics_json(&tempo_instrument::global().snapshot()),
    ));
    let report = Json::Obj(fields);

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_explore_kernel.json".to_owned());
    std::fs::write(&path, report.render()).expect("write ablation report");
    println!("wrote {path}");
}
