//! Exploration pruning study (§3, implicit in the paper): evaluations and
//! wall-clock time of the monotonicity-pruned strategies versus naive
//! enumeration of every interval pair, across all twelve Table-1 cases.

use graphtempo::explore::{
    explore, explore_naive, explore_parallel, suggest_k, ExploreConfig, ExtendSide, Selector,
    Semantics,
};
use graphtempo::ops::Event;
use tempo_bench::datasets::{attrs, dblp};
use tempo_bench::report::{secs, timed};

fn main() {
    let g = dblp();
    let gender = attrs(&g, &["gender"])[0];
    let f = g.schema().category(gender, "f").expect("category");
    let selector = Selector::edge_1attr(f.clone(), f);

    println!(
        "{:<12} {:<6} {:<4} {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6}",
        "event", "extend", "sem", "k", "evals", "naive", "time(s)", "par4(s)", "naive(s)", "same"
    );
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let mut cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 1,
                    attrs: vec![gender],
                    selector: selector.clone(),
                };
                let k = suggest_k(&g, &cfg)
                    .expect("suggest_k succeeds")
                    .unwrap_or(1)
                    .max(1);
                cfg.k = k;
                let (fast, fast_t) = timed(|| explore(&g, &cfg).expect("explore"));
                let (par, par_t) = timed(|| explore_parallel(&g, &cfg, 4).expect("parallel"));
                assert_eq!(par.pairs, fast.pairs, "parallel must match sequential");
                let (slow, slow_t) = timed(|| explore_naive(&g, &cfg).expect("naive"));
                println!(
                    "{:<12} {:<6} {:<4} {:>4} {:>8} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>6}",
                    format!("{event:?}"),
                    format!("{extend:?}"),
                    match semantics {
                        Semantics::Union => "∪",
                        Semantics::Intersection => "∩",
                    },
                    k,
                    fast.evaluations,
                    slow.evaluations,
                    secs(fast_t),
                    secs(par_t),
                    secs(slow_t),
                    fast.pairs == slow.pairs
                );
                assert_eq!(fast.pairs, slow.pairs, "pruned results must match naive");
            }
        }
    }
}
