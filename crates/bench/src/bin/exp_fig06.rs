//! Figure 6: union operator + aggregation (DIST and ALL) time per
//! attribute while extending the interval `[t₀, t]`.
//!
//! Shape to reproduce: static-attribute aggregation stays cheap as the
//! interval grows, time-varying aggregation dominates (its domain keeps
//! growing); the union operation itself costs about the same for all
//! attribute types.

use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::union;
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_bench::report::{print_series, secs, timed, Series};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn run(g: &TemporalGraph, attr_names: &[&str], title: &str) {
    let n = g.domain().len();
    let mut op_series = Series::new("union-op");
    let mut series: Vec<Series> = Vec::new();
    for name in attr_names {
        series.push(Series::new(&format!("{name}+DIST")));
        series.push(Series::new(&format!("{name}+ALL")));
    }
    for end in 1..n {
        let t1 = TimeSet::range(n, 0, end - 1);
        let t2 = TimeSet::point(n, TimePoint(end as u32));
        let (u, op_time) = timed(|| union(g, &t1, &t2).expect("union of non-empty intervals"));
        let label = g.domain().label(TimePoint(end as u32)).to_owned();
        op_series.push(&label, secs(op_time));
        for (i, name) in attr_names.iter().enumerate() {
            let ids = attrs(&u, &[name]);
            let (_, d_dist) = timed(|| aggregate(&u, &ids, AggMode::Distinct));
            let (_, d_all) = timed(|| aggregate(&u, &ids, AggMode::All));
            series[2 * i].push(&label, secs(op_time) + secs(d_dist));
            series[2 * i + 1].push(&label, secs(op_time) + secs(d_all));
        }
    }
    let mut all = vec![op_series];
    all.extend(series);
    print_series(title, &all);
}

fn main() {
    let g = dblp();
    run(
        &g,
        &["gender", "publications"],
        "Fig. 6a–c — DBLP union+aggregation while extending [2000, t] (s)",
    );
    let g = movielens();
    run(
        &g,
        &["gender", "rating"],
        "Fig. 6d — MovieLens union+aggregation while extending [May, t] (s)",
    );
}
