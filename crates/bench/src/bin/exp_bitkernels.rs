//! Bit-kernel raw-speed study: per-primitive microbenchmarks of the
//! word-parallel kernels and sparse-column folds, plus the end-to-end
//! chain-exploration ablation of the hybrid dense/sparse presence columns
//! against the all-dense layout, on the million-node `large` preset across
//! a density sweep. Writes `BENCH_bitkernels.json`.
//!
//! The PR 5 baseline arm forces all-dense presence columns (the pre-hybrid
//! column layout) driving the mask-materializing cursor (the pre-fusion
//! evaluation path), so `geomean_vs_pr5_baseline` is the per-evaluation
//! speedup of this PR's tentpole with pruning, dataset and kernel build
//! held fixed. A tiny-pool oracle pass additionally checks both column
//! modes bit-for-bit against the materializing evaluator.

use graphtempo::explore::{
    explore, explore_materializing, explore_prepared, explore_prepared_masked, suggest_k,
    ExploreConfig, ExploreKernel, ExploreOutcome, ExtendSide, Selector, Semantics,
};
use graphtempo::ops::Event;
use tempo_bench::datasets::{attrs, scale};
use tempo_bench::report::{metrics_json, secs, timed_min, Json};
use tempo_columnar::{BitMatrix, BitVec, PresenceColumn, SparseMode};
use tempo_datagen::LargeConfig;
use tempo_graph::TemporalGraph;

const REPS: usize = 3;
/// Densities swept by the end-to-end ablation: around the auto threshold
/// (1/64 ≈ 1.6%), well below it, and far below it.
const DENSITIES: &[f64] = &[0.02, 0.002, 0.0005];

/// One per-primitive microbench entry: median-of-min wall clock divided by
/// inner iterations.
fn prim(name: &str, iters: usize, mut f: impl FnMut()) -> Json {
    let ((), t) = timed_min(REPS, || {
        for _ in 0..iters {
            f();
        }
    });
    let ns = secs(t) * 1e9 / iters as f64;
    println!("  {name:<38} {ns:>12.1} ns/op");
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("iters".into(), Json::Int(iters as u64)),
        ("ns_per_op".into(), Json::Num(ns)),
    ])
}

/// Deterministic vector with every `stride`-th bit set.
fn strided(nbits: usize, stride: usize, phase: usize) -> BitVec {
    BitVec::from_indices(nbits, (phase..nbits).step_by(stride))
}

fn microbench() -> Json {
    // Entity-dimension width scales with the experiment scale so CI smoke
    // stays fast; 1M bits (15 625 words per vector) at scale 1.0.
    let nbits = ((1_000_000.0 * scale()) as usize).max(65_536);
    println!("\n== per-primitive microbench ({nbits} bits) ==");
    let a = strided(nbits, 3, 0);
    let b = strided(nbits, 5, 1);
    let mut out = BitVec::zeros(nbits);
    let mut entries = Vec::new();

    entries.push(prim("bitvec.and_into", 200, || {
        a.and_into(&b, &mut out);
        std::hint::black_box(&out);
    }));
    entries.push(prim("bitvec.and_not_into", 200, || {
        a.and_not_into(&b, &mut out);
        std::hint::black_box(&out);
    }));
    entries.push(prim("bitvec.or_and_assign", 200, || {
        out.or_and_assign(&a, &b);
        std::hint::black_box(&out);
    }));
    entries.push(prim("bitvec.count_ones_and", 200, || {
        std::hint::black_box(a.count_ones_and(&b));
    }));

    // Presence-column folds, dense vs sparse, at ~0.1% density.
    let sparse_bits = strided(nbits, 1000, 7);
    let dense_col = PresenceColumn::from_bitvec(sparse_bits.clone(), SparseMode::ForceDense);
    let sparse_col = PresenceColumn::from_bitvec(sparse_bits, SparseMode::ForceSparse);
    let mut acc = strided(nbits, 2, 0);
    entries.push(prim("column.or_into.dense", 200, || {
        dense_col.or_into(&mut acc);
        std::hint::black_box(&acc);
    }));
    entries.push(prim("column.or_into.sparse", 200, || {
        sparse_col.or_into(&mut acc);
        std::hint::black_box(&acc);
    }));
    entries.push(prim("column.and_assign_into.dense", 200, || {
        dense_col.and_assign_into(&mut acc);
        std::hint::black_box(&acc);
    }));
    entries.push(prim("column.and_assign_into.sparse", 200, || {
        sparse_col.and_assign_into(&mut acc);
        std::hint::black_box(&acc);
    }));
    let other_sparse = PresenceColumn::from_bitvec(strided(nbits, 900, 3), SparseMode::ForceSparse);
    entries.push(prim("column.count_ones_and.sparse_x_sparse", 200, || {
        std::hint::black_box(sparse_col.count_ones_and(&other_sparse));
    }));

    // Matrix bulk primitives on an entity×time presence shape.
    let tps = 24usize;
    let mut m = BitMatrix::zeros(nbits, tps);
    for r in (0..nbits).step_by(500) {
        for t in 0..tps {
            if (r / 500 + t) % 3 == 0 {
                m.set(r, t, true);
            }
        }
    }
    let mask = BitVec::ones(tps);
    let mut counts: Vec<u32> = Vec::new();
    entries.push(prim("matrix.masked_popcounts_into", 5, || {
        m.masked_popcounts_into(&mask, &mut counts);
        std::hint::black_box(&counts);
    }));
    entries.push(prim("matrix.iter_row_ones_and(all rows)", 2, || {
        let mut total = 0usize;
        for r in 0..m.nrows() {
            total += m.iter_row_ones_and(r, &mask).count();
        }
        std::hint::black_box(total);
    }));
    entries.push(prim("matrix.transposed_with(Auto)", 2, || {
        std::hint::black_box(m.transposed_with(SparseMode::Auto));
    }));
    entries.push(prim("matrix.transposed_with(ForceDense)", 2, || {
        std::hint::black_box(m.transposed_with(SparseMode::ForceDense));
    }));

    Json::Arr(entries)
}

/// The twelve Table-1 strategy combinations over the `kind` attribute with
/// an all-nodes selector (the node dimension is what the hybrid columns
/// accelerate).
fn all_cases(g: &TemporalGraph) -> Vec<ExploreConfig> {
    let kind = attrs(g, &["kind"])[0];
    let mut out = Vec::new();
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let mut cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 1,
                    attrs: vec![kind],
                    selector: Selector::AllNodes,
                };
                cfg.k = suggest_k(g, &cfg)
                    .expect("suggest_k succeeds")
                    .unwrap_or(1)
                    .max(1);
                out.push(cfg);
            }
        }
    }
    out
}

/// Per-case measurement of one column mode: exploration outcome plus the
/// fused (counting-cursor) and masked (mask-materializing cursor, the
/// pre-fusion evaluation path) wall times.
struct CaseRun {
    cfg: ExploreConfig,
    outcome: ExploreOutcome,
    fused_s: f64,
    masked_s: f64,
}

/// Generates the `large` graph with the given column representation forced
/// explicitly on the graph (per-graph state, no environment involved),
/// then runs every case through both evaluation paths over a kernel built
/// once outside the timed region — so the times measure chain exploration
/// itself, not group-table interning.
fn run_mode(density: f64, force: SparseMode) -> (TemporalGraph, Vec<CaseRun>) {
    let mut g = LargeConfig::scaled(scale())
        .with_density(density)
        .generate()
        .expect("large generator produces a valid graph");
    g.set_sparse_mode(force);
    let cases = all_cases(&g);
    let mut out = Vec::with_capacity(cases.len());
    for cfg in cases {
        let kernel = ExploreKernel::new(&g, &cfg);
        let (outcome, fused_t) =
            timed_min(REPS, || explore_prepared(&kernel).expect("fused explore"));
        let (masked, masked_t) = timed_min(REPS, || {
            explore_prepared_masked(&kernel).expect("masked explore")
        });
        assert_eq!(
            outcome.pairs,
            masked.pairs,
            "fused and masked evaluation must be bit-identical ({})",
            case_label(&cfg)
        );
        assert_eq!(outcome.evaluations, masked.evaluations);
        out.push(CaseRun {
            cfg,
            outcome,
            fused_s: secs(fused_t),
            masked_s: secs(masked_t),
        });
    }
    (g, out)
}

fn case_label(cfg: &ExploreConfig) -> String {
    format!(
        "{:?}/{:?}/{}",
        cfg.event,
        cfg.extend,
        match cfg.semantics {
            Semantics::Union => "union",
            Semantics::Intersection => "intersection",
        }
    )
}

/// End-to-end chain-exploration ablation at one density. The PR 5 baseline
/// arm is all-dense columns driving the mask-materializing cursor — the
/// exact per-evaluation path before this PR (the group-table build is
/// excluded from every arm alike, so the comparison is conservative). The
/// two intermediate arms isolate each contribution: fused counting with
/// dense columns (kernel fusion alone) and the hybrid column pick with
/// fused counting (column layout on top). All arms are asserted
/// bit-identical.
fn end_to_end(density: f64) -> (Json, f64) {
    println!("\n== end-to-end chain exploration, density {density} ==");
    let (gd, dense) = run_mode(density, SparseMode::ForceDense);
    let (gh, hybrid) = run_mode(density, SparseMode::Auto);
    assert_eq!(
        gd.n_nodes(),
        gh.n_nodes(),
        "generator must be deterministic"
    );
    assert_eq!(
        gd.n_edges(),
        gh.n_edges(),
        "generator must be deterministic"
    );
    let sparse_node_cols = gh.node_presence_columns().n_sparse_cols();
    let sparse_edge_cols = gh.edge_presence_columns().n_sparse_cols();
    println!(
        "   {} nodes, {} edges; hybrid picked {sparse_node_cols}/{} sparse node cols, \
         {sparse_edge_cols}/{} sparse edge cols",
        gd.n_nodes(),
        gd.n_edges(),
        gh.node_presence_columns().n_cols(),
        gh.edge_presence_columns().n_cols()
    );
    println!(
        "   {:<34} {:>6} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "case", "evals", "pr5(s)", "fused(s)", "hybrid(s)", "fuse", "total"
    );
    let mut entries = Vec::new();
    let mut logs_total = Vec::new();
    let mut logs_fuse = Vec::new();
    let mut logs_cols = Vec::new();
    for (d, h) in dense.iter().zip(&hybrid) {
        assert_eq!(d.cfg.k, h.cfg.k, "modes must run identical configurations");
        assert_eq!(
            d.outcome.pairs,
            h.outcome.pairs,
            "dense and hybrid modes must be bit-identical ({})",
            case_label(&d.cfg)
        );
        assert_eq!(d.outcome.evaluations, h.outcome.evaluations);
        let clamp = f64::EPSILON;
        let fuse = d.masked_s / d.fused_s.max(clamp); // fused kernels, columns fixed
        let cols = d.fused_s / h.fused_s.max(clamp); // hybrid columns, fusion fixed
        let total = d.masked_s / h.fused_s.max(clamp); // this PR vs PR 5 path
        logs_fuse.push(fuse.ln());
        logs_cols.push(cols.ln());
        logs_total.push(total.ln());
        println!(
            "   {:<34} {:>6} {:>9.4} {:>9.4} {:>9.4} {:>7.2}x {:>7.2}x",
            case_label(&d.cfg),
            d.outcome.evaluations,
            d.masked_s,
            d.fused_s,
            h.fused_s,
            fuse,
            total
        );
        entries.push(Json::Obj(vec![
            ("case".into(), Json::str(case_label(&d.cfg))),
            ("k".into(), Json::Int(d.cfg.k)),
            (
                "evaluations".into(),
                Json::Int(d.outcome.evaluations as u64),
            ),
            ("pairs".into(), Json::Int(d.outcome.pairs.len() as u64)),
            ("pr5_dense_masked_s".into(), Json::Num(d.masked_s)),
            ("dense_fused_s".into(), Json::Num(d.fused_s)),
            ("hybrid_fused_s".into(), Json::Num(h.fused_s)),
            ("hybrid_masked_s".into(), Json::Num(h.masked_s)),
            ("speedup_fused_over_masked".into(), Json::Num(fuse)),
            ("speedup_hybrid_over_dense".into(), Json::Num(cols)),
            ("speedup_vs_pr5_baseline".into(), Json::Num(total)),
        ]));
    }
    let geomean = |logs: &[f64]| (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp();
    let gm_total = geomean(&logs_total);
    let gm_fuse = geomean(&logs_fuse);
    let gm_cols = geomean(&logs_cols);
    println!(
        "   density {density} geomeans: fused/masked {gm_fuse:.2}x, hybrid/dense {gm_cols:.2}x, \
         vs PR5 baseline {gm_total:.2}x"
    );
    (
        Json::Obj(vec![
            ("density".into(), Json::Num(density)),
            ("nodes".into(), Json::Int(gd.n_nodes() as u64)),
            ("edges".into(), Json::Int(gd.n_edges() as u64)),
            ("timepoints".into(), Json::Int(gd.domain().len() as u64)),
            (
                "sparse_node_cols".into(),
                Json::Int(sparse_node_cols as u64),
            ),
            (
                "sparse_edge_cols".into(),
                Json::Int(sparse_edge_cols as u64),
            ),
            ("geomean_fused_over_masked".into(), Json::Num(gm_fuse)),
            ("geomean_hybrid_over_dense".into(), Json::Num(gm_cols)),
            ("geomean_vs_pr5_baseline".into(), Json::Num(gm_total)),
            ("cases".into(), Json::Arr(entries)),
        ]),
        gm_total,
    )
}

/// Tiny-pool oracle pass: both column modes must agree with the
/// materializing evaluator pair-for-pair (the oracle is O(rows) per
/// evaluation, so it only runs at a pool size where that is affordable).
fn oracle_check() -> Json {
    println!("\n== oracle check (tiny pool) ==");
    let cfg0 = LargeConfig::scaled(0.002).with_density(0.01);
    let mut checked = 0u64;
    for force in [SparseMode::ForceDense, SparseMode::ForceSparse] {
        let mut g = cfg0.generate().expect("large generator (tiny pool)");
        g.set_sparse_mode(force);
        for cfg in all_cases(&g) {
            let fast = explore(&g, &cfg).expect("explore");
            let oracle = explore_materializing(&g, &cfg).expect("materializing explore");
            assert_eq!(
                fast.pairs,
                oracle.pairs,
                "{force:?} mode must match the materializing oracle ({})",
                case_label(&cfg)
            );
            checked += 1;
        }
    }
    println!("   {checked} case runs bit-identical to the oracle");
    Json::Obj(vec![
        ("cases_checked".into(), Json::Int(checked)),
        ("ok".into(), Json::Bool(true)),
    ])
}

fn main() {
    tempo_instrument::global().reset();
    let micro = microbench();
    let mut sweeps = Vec::new();
    let mut best_gm = f64::NEG_INFINITY;
    for &density in DENSITIES {
        let (entry, gm) = end_to_end(density);
        best_gm = best_gm.max(gm);
        sweeps.push(entry);
    }
    let oracle = oracle_check();
    println!("\nbest geomean speedup vs the PR 5 baseline across densities: {best_gm:.2}x");

    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("bitkernels")),
        ("dataset".into(), Json::str("large_synthetic")),
        ("scale".into(), Json::Num(scale())),
        ("reps".into(), Json::Int(REPS as u64)),
        (
            "pr5_baseline".into(),
            Json::str(
                "all-dense presence columns driving the mask-materializing chain cursor \
                 (the per-evaluation path before this PR), kernel build excluded from \
                 every arm",
            ),
        ),
        ("microbench".into(), micro),
        ("end_to_end".into(), Json::Arr(sweeps)),
        ("best_geomean_vs_pr5_baseline".into(), Json::Num(best_gm)),
        ("oracle_check".into(), oracle),
        (
            "metrics".into(),
            metrics_json(&tempo_instrument::global().snapshot()),
        ),
    ]);
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_bitkernels.json".to_owned());
    std::fs::write(&path, report.render()).expect("write bitkernels report");
    println!("wrote {path}");
}
