//! Figure 5: aggregation time per attribute (and combinations) on single
//! time points, for DBLP (a) and MovieLens (b).
//!
//! The paper's observations to reproduce in shape: times track the number
//! of distinct values in the aggregation domain (gender is cheapest, the
//! full attribute combination is most expensive), and MovieLens peaks in
//! August, its largest month.

use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::project_point;
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_bench::report::{print_series, secs, timed, Series};
use tempo_graph::TemporalGraph;

fn series_for(g: &TemporalGraph, combos: &[&[&str]]) -> Vec<Series> {
    let mut out = Vec::new();
    for combo in combos {
        let ids = attrs(g, combo);
        let mut s = Series::new(&combo.join("+"));
        for t in g.domain().iter() {
            let proj = project_point(g, t).expect("projection of a domain point");
            let (_, d) = timed(|| aggregate(&proj, &ids, AggMode::Distinct));
            s.push(g.domain().label(t), secs(d));
        }
        out.push(s);
    }
    out
}

fn main() {
    let g = dblp();
    let series = series_for(
        &g,
        &[&["gender"], &["publications"], &["gender", "publications"]],
    );
    print_series(
        "Fig. 5a — DBLP aggregation time per time point (s)",
        &series,
    );

    let g = movielens();
    let series = series_for(
        &g,
        &[
            &["gender"],
            &["age"],
            &["occupation"],
            &["rating"],
            &["gender", "rating"],
            &["gender", "age", "rating"],
            &["gender", "age", "occupation", "rating"],
        ],
    );
    print_series(
        "Fig. 5b — MovieLens aggregation time per time point (s)",
        &series,
    );
}
