//! Figure 7: intersection operator + aggregation (DIST) time per attribute
//! while extending the interval — entities must exist throughout the whole
//! interval (intersection semantics), so the result shrinks as the
//! interval grows.
//!
//! Shape to reproduce: the operation dominates aggregation for static
//! attributes (the result graph keeps shrinking); for time-varying
//! attributes aggregation takes over. The sweep stops at the longest
//! interval with at least one common edge (the paper reaches [2000, 2017]
//! for DBLP and [May, July] for MovieLens).

use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::{event_graph, Event, SideTest};
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_bench::report::{print_series, secs, timed, Series};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn run(g: &TemporalGraph, attr_names: &[&str], title: &str) {
    let n = g.domain().len();
    let mut op_series = Series::new("intersect-op");
    let mut series: Vec<Series> = attr_names
        .iter()
        .map(|name| Series::new(&format!("{name}+DIST")))
        .collect();
    for end in 1..n {
        let t1 = TimeSet::range(n, 0, end - 1);
        let t2 = TimeSet::point(n, TimePoint(end as u32));
        // entities alive at EVERY point of [0, end-1] and at `end`
        let (ix, op_time) = timed(|| {
            event_graph(g, Event::Stability, &t1, &t2, SideTest::All, SideTest::Any)
                .expect("intersection of non-empty intervals")
        });
        if ix.n_edges() == 0 {
            println!(
                "(stopping at {}: no edge spans the whole interval)",
                g.domain().label(TimePoint(end as u32))
            );
            break;
        }
        let label = g.domain().label(TimePoint(end as u32)).to_owned();
        op_series.push(&label, secs(op_time));
        for (i, name) in attr_names.iter().enumerate() {
            let ids = attrs(&ix, &[name]);
            let (_, d) = timed(|| aggregate(&ix, &ids, AggMode::Distinct));
            series[i].push(&label, secs(op_time) + secs(d));
        }
    }
    let mut all = vec![op_series];
    all.extend(series);
    print_series(title, &all);
}

fn main() {
    let g = dblp();
    run(
        &g,
        &["gender", "publications"],
        "Fig. 7a–c — DBLP intersection+aggregation while extending (s)",
    );
    let g = movielens();
    run(
        &g,
        &["gender", "rating"],
        "Fig. 7d — MovieLens intersection+aggregation while extending (s)",
    );
}
