//! Figure 13: exploration of female→female co-rating relationships in
//! MovieLens — (a) maximal stability intervals under intersection
//! semantics, (b) minimal growth and (c) minimal shrinkage intervals under
//! union semantics, across a k schedule initialized from w_th (§3.5).
//!
//! Shape to reproduce: the strongest stability sits between adjacent late
//! months; the biggest growth lands on August (the month edge counts
//! explode) and the biggest shrinkage right after it.

use tempo_bench::datasets::{attrs, movielens};
use tempo_bench::explore_runner::run_edge_exploration;
use tempo_graph::GraphStats;

fn main() {
    let g = movielens();
    println!("{}", GraphStats::compute(&g).render_table());
    let gender = attrs(&g, &["gender"])[0];
    let f = g
        .schema()
        .category(gender, "F")
        .expect("female category exists");
    println!("exploring F→F co-rating relationships");
    run_edge_exploration(&g, gender, f.clone(), f);
}
