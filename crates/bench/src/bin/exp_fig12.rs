//! Figure 12: qualitative evolution of the DBLP graph — gender-aggregated
//! evolution of highly active authors (#Publications > 4), (a) 2010 versus
//! the 2000s and (b) 2020 versus the 2010s.
//!
//! Shape to reproduce: nodes show high stability (the paper reports ≈61%
//! stable authors in 2010, higher in 2020, with male authors far
//! outnumbering female), while collaborations between active authors show
//! heavy shrinkage and little stability.

use graphtempo::evolution::evolution_aggregate;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::{NodeId, TemporalGraph, TimePoint, TimeSet};

fn main() {
    let g = dblp();
    let n = g.domain().len();
    let gender = attrs(&g, &["gender"]);
    let pubs = g.schema().id("publications").unwrap();
    let high_activity = move |gr: &TemporalGraph, node: NodeId, t: TimePoint| {
        gr.attr_value(node, pubs, t).as_int().unwrap_or(0) > 4
    };

    for (title, t1, t2) in [
        (
            "Fig. 12a — 2010 w.r.t. the 2000s",
            TimeSet::range(n, 0, 9),
            TimeSet::point(n, TimePoint(10)),
        ),
        (
            "Fig. 12b — 2020 w.r.t. the 2010s",
            TimeSet::range(n, 10, 19),
            TimeSet::point(n, TimePoint(20)),
        ),
    ] {
        let evo = evolution_aggregate(&g, &t1, &t2, &gender, Some(&high_activity))
            .expect("non-empty intervals");
        println!("\n== {title} ==");
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>9}",
            "gender", "stable", "grown", "shrunk", "%stable"
        );
        for (tuple, w) in evo.iter_nodes() {
            let total = w.stability + w.growth + w.shrinkage;
            if total == 0 {
                continue;
            }
            println!(
                "{:<8} {:>8} {:>8} {:>8} {:>8.1}%",
                g.schema().def(gender[0]).render(&tuple[0]),
                w.stability,
                w.growth,
                w.shrinkage,
                100.0 * w.stability as f64 / total as f64
            );
        }
        let e = evo.edge_totals();
        let etotal = (e.stability + e.growth + e.shrinkage).max(1);
        println!(
            "edges    {:>8} {:>8} {:>8} {:>8.1}%  (collaborations between active authors)",
            e.stability,
            e.growth,
            e.shrinkage,
            100.0 * e.stability as f64 / etotal as f64
        );
    }
}
