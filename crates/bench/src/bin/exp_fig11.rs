//! Figure 11: speedup of attribute roll-up (§4.3's D-distributivity) —
//! deriving a coarser per-timepoint aggregate from a precomputed finer one
//! instead of aggregating from scratch.
//!
//! Shape to reproduce: single attributes from pairs gain the most, pairs
//! from the full set less, triplets least (the paper reports up to 48× for
//! single attributes on MovieLens, 6–21× for DBLP).

use graphtempo::aggregate::{rollup, AggregateGraph};
use graphtempo::materialize::aggregate_at_point;
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_bench::report::{print_series, secs, timed, Series};
use tempo_graph::TemporalGraph;

/// Per-timepoint speedup of deriving `subset` from a precomputed aggregate
/// on `superset`, vs aggregating `subset` from scratch.
fn rollup_speedup(g: &TemporalGraph, superset: &[&str], subset: &[&str], label: &str) -> Series {
    let sup_ids = attrs(g, superset);
    let sub_ids = attrs(g, subset);
    let mut s = Series::new(label);
    for t in g.domain().iter() {
        let full: AggregateGraph = aggregate_at_point(g, &sup_ids, t);
        let (direct, direct_time) = timed(|| aggregate_at_point(g, &sub_ids, t));
        let (rolled, roll_time) = timed(|| rollup(&full, subset).expect("subset of superset"));
        assert_eq!(direct, rolled, "roll-up must equal direct aggregation");
        s.push(
            g.domain().label(t),
            secs(direct_time) / secs(roll_time).max(1e-9),
        );
    }
    s
}

fn main() {
    let g = dblp();
    let series = vec![
        rollup_speedup(&g, &["gender", "publications"], &["gender"], "G from (G,P)"),
        rollup_speedup(
            &g,
            &["gender", "publications"],
            &["publications"],
            "P from (G,P)",
        ),
    ];
    print_series(
        "Fig. 11a — DBLP roll-up speedup per time point (×)",
        &series,
    );

    let g = movielens();
    let series = vec![
        rollup_speedup(&g, &["gender", "age"], &["gender"], "G1 from (G,A)"),
        rollup_speedup(&g, &["gender", "rating"], &["gender"], "G2 from (G,R)"),
        rollup_speedup(&g, &["gender", "occupation"], &["gender"], "G3 from (G,O)"),
        rollup_speedup(&g, &["rating", "gender"], &["rating"], "R1 from (R,G)"),
        rollup_speedup(&g, &["rating", "age"], &["rating"], "R2 from (R,A)"),
        rollup_speedup(&g, &["rating", "occupation"], &["rating"], "R3 from (R,O)"),
    ];
    print_series(
        "Fig. 11b — MovieLens single-attribute roll-up speedup (×)",
        &series,
    );

    let all4 = ["gender", "age", "occupation", "rating"];
    let series = vec![
        rollup_speedup(&g, &all4, &["gender", "age"], "(G,A) from all"),
        rollup_speedup(&g, &all4, &["gender", "rating"], "(G,R) from all"),
        rollup_speedup(&g, &all4, &["age", "occupation"], "(A,O) from all"),
        rollup_speedup(&g, &all4, &["occupation", "rating"], "(O,R) from all"),
    ];
    print_series("Fig. 11c — MovieLens pair roll-up speedup (×)", &series);

    let series = vec![
        rollup_speedup(
            &g,
            &all4,
            &["gender", "age", "occupation"],
            "(G,A,O) from all",
        ),
        rollup_speedup(&g, &all4, &["gender", "age", "rating"], "(G,A,R) from all"),
        rollup_speedup(
            &g,
            &all4,
            &["age", "occupation", "rating"],
            "(A,O,R) from all",
        ),
    ];
    print_series("Fig. 11d — MovieLens triplet roll-up speedup (×)", &series);
}
