//! Tables 3 & 4: per-timepoint node and edge counts of the two datasets,
//! printed next to the paper's published values.

use tempo_bench::datasets::{dblp, movielens, scale};
use tempo_datagen::tables::{
    DBLP_EDGES, DBLP_NODES, DBLP_YEARS, MOVIELENS_EDGES, MOVIELENS_MONTHS, MOVIELENS_NODES,
};
use tempo_graph::GraphStats;

fn main() {
    let s = scale();
    println!("scale factor: {s} (paper values at scale 1.0)\n");

    println!("Table 3 — DBLP");
    let g = dblp();
    let stats = GraphStats::compute(&g);
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "year", "nodes", "paper", "edges", "paper"
    );
    for (t, year) in DBLP_YEARS.iter().enumerate() {
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10}",
            year, stats.nodes_per_tp[t], DBLP_NODES[t], stats.edges_per_tp[t], DBLP_EDGES[t]
        );
    }

    println!("\nTable 4 — MovieLens");
    let g = movielens();
    let stats = GraphStats::compute(&g);
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "month", "nodes", "paper", "edges", "paper"
    );
    for (t, month) in MOVIELENS_MONTHS.iter().enumerate() {
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10}",
            month,
            stats.nodes_per_tp[t],
            MOVIELENS_NODES[t],
            stats.edges_per_tp[t],
            MOVIELENS_EDGES[t]
        );
    }
}
