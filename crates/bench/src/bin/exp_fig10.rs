//! Figure 10: speedup of the T-distributive union aggregation (§4.3) —
//! combining precomputed per-timepoint ALL-aggregates instead of running
//! the union operator + aggregation from scratch.
//!
//! Shape to reproduce: speedups grow with interval length, larger for
//! time-varying attributes (the paper reports 8–20× for static and up to
//! 78× for time-varying on DBLP).

use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::materialize::TimepointStore;
use graphtempo::ops::union;
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_bench::report::{print_series, secs, timed, Series};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn run(g: &TemporalGraph, attr_names: &[&str], title: &str) {
    let n = g.domain().len();
    let mut series: Vec<Series> = Vec::new();
    for name in attr_names {
        let ids = attrs(g, &[name]);
        // precomputation cost is excluded from the speedup, as in the paper
        let store = TimepointStore::build(g, &ids);
        let mut s = Series::new(&format!("{name} speedup"));
        for end in 1..n {
            let t1 = TimeSet::range(n, 0, end - 1);
            let t2 = TimeSet::point(n, TimePoint(end as u32));
            let scope = t1.union(&t2);
            let (direct_agg, direct_time) = timed(|| {
                let u = union(g, &t1, &t2).expect("union");
                aggregate(&u, &attrs(&u, &[name]), AggMode::All)
            });
            let (opt_agg, opt_time) =
                timed(|| store.union_all(&scope).expect("scope within domain"));
            assert_eq!(
                direct_agg, opt_agg,
                "T-distributive union must equal the direct aggregate"
            );
            s.push(
                g.domain().label(TimePoint(end as u32)),
                secs(direct_time) / secs(opt_time).max(1e-9),
            );
        }
        series.push(s);
    }
    print_series(title, &series);
}

fn main() {
    let g = dblp();
    run(
        &g,
        &["gender", "publications"],
        "Fig. 10a — DBLP speedup of precomputed union aggregation (×)",
    );
    let g = movielens();
    run(
        &g,
        &["gender", "rating"],
        "Fig. 10b — MovieLens speedup of precomputed union aggregation (×)",
    );
}
