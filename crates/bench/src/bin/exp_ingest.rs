//! Live-ingestion study for the versioned snapshot layer: measures the
//! per-append cost of [`GraphVersions::append_timepoint`] as history grows
//! (it must stay flat — amortized O(new column), never an O(T × entities)
//! re-transpose), asserts every epoch is bit-identical to a from-scratch
//! builder rebuild of the same history, and measures ingest rate against
//! concurrent query latency with readers hammering the currently published
//! epoch while the writer appends. Writes `BENCH_ingest.json`.

use graphtempo::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::ops::Event;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use tempo_bench::datasets::scale;
use tempo_bench::report::{metrics_json, secs, timed, Json};
use tempo_datagen::RandomGraphConfig;
use tempo_graph::{GraphBuilder, GraphVersions, TemporalGraph, TimePoint, TimepointPatch};

/// Appends in the per-append-cost phase, scaled by `GRAPHTEMPO_SCALE`.
fn n_appends() -> usize {
    ((40.0 * (scale() / 0.1)) as usize).clamp(12, 200)
}

fn base_graph(pool: usize, timepoints: usize, seed: u64) -> TemporalGraph {
    RandomGraphConfig {
        pool,
        timepoints,
        active_per_tp: (pool / 2).max(4),
        edges_per_tp: pool.max(8),
        node_persistence: 0.6,
        edge_persistence: 0.5,
        kinds: 3,
        levels: 3,
        seed,
    }
    .generate()
    .expect("random generator produces valid graphs")
}

/// A deterministic patch over the base entity pool: a handful of edges,
/// one returning node, and one brand-new node per step.
fn make_patch(base_names: &[String], i: usize, width: usize) -> TimepointPatch {
    let mut p = TimepointPatch::new(format!("a{i}"));
    let n = base_names.len();
    for j in 0..width {
        let u = &base_names[(i * 7 + j * 13) % n];
        let v = &base_names[(i * 11 + j * 17 + 1) % n];
        if u == v {
            p.mark_node(u.clone());
        } else {
            p.add_edge(u.clone(), v.clone());
        }
    }
    p.mark_node(base_names[i % n].clone());
    p.mark_node(format!("ing{i}"));
    p
}

fn median(sorted: &[Duration]) -> Duration {
    sorted[sorted.len() / 2]
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Phase 1 — per-append cost versus history length. Returns (early median,
/// late median, per-append durations).
fn append_cost_phase(appends: usize) -> (Duration, Duration, Vec<Duration>) {
    let pool = ((400.0 * (scale() / 0.1)) as usize).clamp(40, 4000);
    let base = base_graph(pool, 4, 0xbeef);
    let base_names: Vec<String> = base
        .node_ids()
        .map(|n| base.node_name(n).to_owned())
        .collect();
    // warm the transposed indexes once so every append exercises the
    // incremental carry-forward
    let _ = base.node_presence_columns();
    let _ = base.edge_presence_columns();

    let before = tempo_instrument::global().snapshot();
    let mut versions = GraphVersions::new(base);
    let mut durations = Vec::with_capacity(appends);
    for i in 0..appends {
        let patch = make_patch(&base_names, i, 8);
        let prev = versions.current();
        let (next, d) = timed(|| {
            versions
                .append_timepoint(&patch)
                .expect("append over unique labels")
        });
        durations.push(d);
        // structural sharing with the previous epoch, not a rebuild: every
        // pre-existing transposed column is carried forward as the same Arc
        // (word bands only become shareable once history exceeds one word,
        // so the column check is the universal one)
        for (which, next_cols, prev_cols) in [
            (
                "node",
                next.node_presence_columns(),
                prev.node_presence_columns(),
            ),
            (
                "edge",
                next.edge_presence_columns(),
                prev.edge_presence_columns(),
            ),
        ] {
            assert_eq!(
                next_cols.shared_cols(prev_cols),
                prev_cols.n_cols(),
                "append {i} must carry every prior transposed {which} column forward"
            );
        }
    }
    let after = tempo_instrument::global().snapshot();
    let transposes =
        after.counter("graph.transpose_builds") - before.counter("graph.transpose_builds");
    assert_eq!(
        transposes, 0,
        "appends must never re-transpose the presence history"
    );
    let append_cols =
        after.counter("graph.index.append_cols") - before.counter("graph.index.append_cols");
    assert_eq!(
        append_cols,
        2 * appends as u64,
        "each append extends both transposed indexes by exactly one column"
    );

    let third = durations.len() / 3;
    let mut early: Vec<Duration> = durations[..third].to_vec();
    let mut late: Vec<Duration> = durations[durations.len() - third..].to_vec();
    early.sort();
    late.sort();
    (median(&early), median(&late), durations)
}

/// All twelve Table-1 strategies on `attr`, compared pairwise.
fn explore_outputs_match(a: &TemporalGraph, b: &TemporalGraph, ctx: &str) -> usize {
    let attr = a.schema().id("kind").expect("random graphs have `kind`");
    let mut checked = 0;
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 1,
                    attrs: vec![attr],
                    selector: Selector::AllEdges,
                };
                let pa = explore(a, &cfg).expect("explore appended").pairs;
                let pb = explore(b, &cfg).expect("explore rebuilt").pairs;
                assert_eq!(
                    pa, pb,
                    "{ctx}: explore {event:?}/{extend:?}/{semantics:?} diverged"
                );
                checked += 1;
            }
        }
    }
    checked
}

/// Phase 2 — every epoch bit-identical to a from-scratch rebuild.
fn identity_phase(appends: usize) -> usize {
    let base = base_graph(40, 3, 0xfeed);
    let base_names: Vec<String> = base
        .node_ids()
        .map(|n| base.node_name(n).to_owned())
        .collect();
    let patches: Vec<TimepointPatch> = (0..appends)
        .map(|i| make_patch(&base_names, i, 5))
        .collect();

    let mut versions = GraphVersions::new(base.clone());
    let mut checks = 0;
    for (i, patch) in patches.iter().enumerate() {
        let inc = versions.append_timepoint(patch).expect("append");

        let labels: Vec<String> = (0..=i).map(|j| format!("a{j}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let mut b =
            GraphBuilder::from_graph(base.clone(), &label_refs).expect("widen base for rebuild");
        for (j, p) in patches.iter().take(i + 1).enumerate() {
            p.apply_to_builder(&mut b, TimePoint((3 + j) as u32))
                .expect("replay patch");
        }
        let reb = b.build().expect("rebuild");

        let ctx = format!("epoch {}", i + 1);
        assert_eq!(
            inc.node_presence_matrix(),
            reb.node_presence_matrix(),
            "{ctx}: node presence"
        );
        assert_eq!(
            inc.edge_presence_matrix(),
            reb.edge_presence_matrix(),
            "{ctx}: edge presence"
        );
        assert_eq!(
            inc.node_presence_columns(),
            reb.node_presence_columns(),
            "{ctx}: transposed node columns"
        );
        assert_eq!(
            inc.edge_presence_columns(),
            reb.edge_presence_columns(),
            "{ctx}: transposed edge columns"
        );
        checks += explore_outputs_match(&inc, &reb, &ctx);
    }
    checks
}

/// Phase 3 — ingest rate with concurrent readers. Returns
/// (appends, writer wall, query latencies, queries served).
fn concurrent_phase(appends: usize) -> (usize, Duration, Vec<Duration>, usize) {
    let pool = ((200.0 * (scale() / 0.1)) as usize).clamp(30, 2000);
    let base = base_graph(pool, 4, 0xcafe);
    let base_names: Vec<String> = base
        .node_ids()
        .map(|n| base.node_name(n).to_owned())
        .collect();
    let attr = base.schema().id("kind").expect("random graphs have `kind`");
    let _ = base.node_presence_columns();
    let _ = base.edge_presence_columns();
    let versions = Mutex::new(GraphVersions::new(base));
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut lat = Vec::new();
                    let mut last_epoch = 0u64;
                    let mut served = 0usize;
                    loop {
                        // grab the currently published epoch; the lock is
                        // held only for the Arc clone, never the query
                        let g = versions
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .current();
                        assert!(g.epoch() >= last_epoch, "published epochs must be monotone");
                        last_epoch = g.epoch();
                        let cfg = ExploreConfig {
                            event: Event::Growth,
                            extend: ExtendSide::New,
                            semantics: Semantics::Union,
                            k: 1,
                            attrs: vec![attr],
                            selector: Selector::AllEdges,
                        };
                        let (out, d) = timed(|| explore(&g, &cfg).expect("concurrent explore"));
                        assert!(out.evaluations > 0);
                        lat.push(d);
                        served += 1;
                        // ordering: pure stop flag for the benchmark's
                        // reader loop; all data flows through the mutex.
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    (lat, served)
                })
            })
            .collect();

        let ((), ingest_wall) = timed(|| {
            for i in 0..appends {
                let patch = make_patch(&base_names, i, 8);
                let mut v = versions
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                v.append_timepoint(&patch).expect("concurrent append");
            }
        });
        // ordering: see the reader-side load; join() below synchronizes.
        done.store(true, Ordering::Relaxed);

        let mut latencies = Vec::new();
        let mut served = 0;
        for r in readers {
            let (lat, n) = r.join().expect("reader thread");
            latencies.extend(lat);
            served += n;
        }
        (appends, ingest_wall, latencies, served)
    })
}

fn main() {
    tempo_instrument::global().reset();
    let appends = n_appends();
    println!(
        "ingest study: {appends} appends per phase (scale {})",
        scale()
    );

    let (early, late, durations) = append_cost_phase(appends);
    let ratio = secs(late) / secs(early).max(1e-9);
    println!(
        "per-append cost: early median {:.3} ms, late median {:.3} ms (ratio {ratio:.2})",
        secs(early) * 1e3,
        secs(late) * 1e3
    );
    assert!(
        ratio < 5.0,
        "per-append cost must stay flat as history grows, got ratio {ratio:.2}"
    );

    let identity_appends = appends.min(24);
    let identity_checks = identity_phase(identity_appends);
    println!(
        "bit-identity: {identity_appends} epochs x 12 explore strategies = {identity_checks} checks, all equal"
    );

    let (ing, ingest_wall, mut latencies, served) = concurrent_phase(appends);
    let ingest_rate = ing as f64 / secs(ingest_wall).max(1e-9);
    assert!(ingest_rate > 0.0, "ingest rate must be nonzero");
    assert!(served > 0, "readers must serve queries during ingest");
    latencies.sort();
    let (qp50, qp99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));
    println!(
        "concurrent: {ing} appends in {:.2}s = {ingest_rate:.0} appends/s while {served} \
         queries ran (p50 {:.3} ms, p99 {:.3} ms)",
        secs(ingest_wall),
        secs(qp50) * 1e3,
        secs(qp99) * 1e3
    );

    let snap = tempo_instrument::global().snapshot();
    let mut sorted = durations.clone();
    sorted.sort();
    let report = Json::Obj(vec![
        ("experiment".into(), Json::str("ingest")),
        ("dataset".into(), Json::str("random_synthetic")),
        ("scale".into(), Json::Num(scale())),
        ("appends".into(), Json::Int(appends as u64)),
        (
            "append_early_median_ns".into(),
            Json::Int(early.as_nanos() as u64),
        ),
        (
            "append_late_median_ns".into(),
            Json::Int(late.as_nanos() as u64),
        ),
        ("append_cost_ratio".into(), Json::Num(ratio)),
        ("append_cost_flat".into(), Json::Bool(ratio < 5.0)),
        (
            "append_p50_ns".into(),
            Json::Int(median(&sorted).as_nanos() as u64),
        ),
        (
            "append_p99_ns".into(),
            Json::Int(percentile(&sorted, 0.99).as_nanos() as u64),
        ),
        ("retransposes_during_appends".into(), Json::Int(0)),
        ("identity_epochs".into(), Json::Int(identity_appends as u64)),
        ("identity_checks".into(), Json::Int(identity_checks as u64)),
        ("bit_identical_to_rebuild".into(), Json::Bool(true)),
        ("concurrent_appends".into(), Json::Int(ing as u64)),
        ("ingest_wall_s".into(), Json::Num(secs(ingest_wall))),
        ("ingest_rate_appends_per_s".into(), Json::Num(ingest_rate)),
        ("concurrent_queries".into(), Json::Int(served as u64)),
        (
            "concurrent_query_p50_ns".into(),
            Json::Int(qp50.as_nanos() as u64),
        ),
        (
            "concurrent_query_p99_ns".into(),
            Json::Int(qp99.as_nanos() as u64),
        ),
        ("metrics".into(), metrics_json(&snap)),
    ]);

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingest.json".to_owned());
    std::fs::write(&path, report.render()).expect("write ingest report");
    println!("wrote {path}");
}
