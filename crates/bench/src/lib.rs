//! # tempo-bench
//!
//! Benchmark and experiment harness for the GraphTempo reproduction: one
//! Criterion bench per performance figure (Figs. 5–11) plus `exp_*`
//! binaries that print the paper-style series for every table and figure
//! (Tables 3–4, Figs. 5–14). See EXPERIMENTS.md at the workspace root.
//!
//! Scale is controlled by `GRAPHTEMPO_SCALE` (default 0.1); 1.0 reproduces
//! the paper's dataset sizes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod datasets;
pub mod explore_runner;
pub mod report;
