//! Shared dataset construction for benches and experiment binaries.
//!
//! All experiments run on the synthetic DBLP- and MovieLens-like graphs at
//! a scale controlled by the `GRAPHTEMPO_SCALE` environment variable
//! (default 0.1; `GRAPHTEMPO_SCALE=1.0` reproduces the paper's dataset
//! sizes from Tables 3 and 4).

use tempo_datagen::{DblpConfig, LargeConfig, MovieLensConfig};
use tempo_graph::{AttrId, TemporalGraph};

/// The experiment scale factor (`GRAPHTEMPO_SCALE`, default 0.1).
pub fn scale() -> f64 {
    std::env::var("GRAPHTEMPO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

/// Generates the DBLP-like graph at the experiment scale.
pub fn dblp() -> TemporalGraph {
    DblpConfig::scaled(scale())
        .generate()
        .expect("DBLP generator produces a valid graph")
}

/// Generates the MovieLens-like graph at the experiment scale.
pub fn movielens() -> TemporalGraph {
    MovieLensConfig::scaled(scale())
        .generate()
        .expect("MovieLens generator produces a valid graph")
}

/// Generates the million-node `large` preset at the experiment scale with
/// the given per-timepoint presence density (1M-node pool at scale 1.0).
pub fn large(density: f64) -> TemporalGraph {
    LargeConfig::scaled(scale())
        .with_density(density)
        .generate()
        .expect("large generator produces a valid graph")
}

/// Resolves attribute names to ids, panicking on unknown names (experiment
/// configuration errors should fail loudly).
pub fn attrs(g: &TemporalGraph, names: &[&str]) -> Vec<AttrId> {
    names
        .iter()
        .map(|n| {
            g.schema()
                .id(n)
                .unwrap_or_else(|_| panic!("attribute {n:?} missing from schema"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_generate_at_tiny_scale() {
        std::env::set_var("GRAPHTEMPO_SCALE", "0.01");
        let d = dblp();
        assert_eq!(d.domain().len(), 21);
        let m = movielens();
        assert_eq!(m.domain().len(), 6);
        assert_eq!(attrs(&d, &["gender", "publications"]).len(), 2);
        std::env::remove_var("GRAPHTEMPO_SCALE");
    }
}
