//! Shared dataset construction for benches and experiment binaries.
//!
//! All experiments run on the synthetic DBLP- and MovieLens-like graphs at
//! a scale controlled by the `GRAPHTEMPO_SCALE` environment variable
//! (default 0.1; `GRAPHTEMPO_SCALE=1.0` reproduces the paper's dataset
//! sizes from Tables 3 and 4).

use std::sync::OnceLock;
use tempo_columnar::SparseMode;
use tempo_datagen::{DblpConfig, LargeConfig, MovieLensConfig};
use tempo_graph::{AttrId, TemporalGraph};

/// The experiment scale factor (`GRAPHTEMPO_SCALE`, default 0.1), read
/// from the environment exactly once per process.
pub fn scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("GRAPHTEMPO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.1)
    })
}

/// The sparse-mode policy for experiment graphs (`GRAPHTEMPO_SPARSE`),
/// read from the environment exactly once per process. Experiments that
/// need a specific representation set it explicitly per graph instead.
pub fn sparse_mode() -> SparseMode {
    static MODE: OnceLock<SparseMode> = OnceLock::new();
    *MODE.get_or_init(|| {
        SparseMode::from_env_value(std::env::var("GRAPHTEMPO_SPARSE").ok().as_deref())
    })
}

/// Applies the process-wide experiment policy to a freshly generated graph.
fn with_policy(mut g: TemporalGraph) -> TemporalGraph {
    g.set_sparse_mode(sparse_mode());
    g
}

/// Generates the DBLP-like graph at the experiment scale.
pub fn dblp() -> TemporalGraph {
    with_policy(
        DblpConfig::scaled(scale())
            .generate()
            .expect("DBLP generator produces a valid graph"),
    )
}

/// Generates the MovieLens-like graph at the experiment scale.
pub fn movielens() -> TemporalGraph {
    with_policy(
        MovieLensConfig::scaled(scale())
            .generate()
            .expect("MovieLens generator produces a valid graph"),
    )
}

/// Generates the million-node `large` preset at the experiment scale with
/// the given per-timepoint presence density (1M-node pool at scale 1.0).
pub fn large(density: f64) -> TemporalGraph {
    with_policy(
        LargeConfig::scaled(scale())
            .with_density(density)
            .generate()
            .expect("large generator produces a valid graph"),
    )
}

/// Resolves attribute names to ids, panicking on unknown names (experiment
/// configuration errors should fail loudly).
pub fn attrs(g: &TemporalGraph, names: &[&str]) -> Vec<AttrId> {
    names
        .iter()
        .map(|n| {
            g.schema()
                .id(n)
                .unwrap_or_else(|_| panic!("attribute {n:?} missing from schema"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_generate_at_tiny_scale() {
        // scale()/sparse_mode() are one-shot env reads, so the tiny scale
        // is pinned on the generator configs directly — no set_var, which
        // would race other tests in this process.
        let d = DblpConfig::scaled(0.01)
            .generate()
            .expect("DBLP generator at tiny scale");
        assert_eq!(d.domain().len(), 21);
        let m = MovieLensConfig::scaled(0.01)
            .generate()
            .expect("MovieLens generator at tiny scale");
        assert_eq!(m.domain().len(), 6);
        assert_eq!(attrs(&d, &["gender", "publications"]).len(), 2);
    }

    #[test]
    fn policy_is_applied_to_generated_graphs() {
        let g = large(0.01);
        assert_eq!(g.sparse_mode(), sparse_mode());
    }
}
