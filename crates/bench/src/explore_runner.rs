//! Shared driver for the exploration experiments (Figs. 13 and 14):
//! stability (maximal, intersection semantics), growth and shrinkage
//! (minimal, union semantics) of a single aggregate edge, across a
//! threshold schedule derived from `w_th` (§3.5).

use graphtempo::explore::{explore, suggest_k, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::ops::Event;
use tempo_columnar::Value;
use tempo_graph::{AttrId, TemporalGraph};

/// One exploration case of Fig. 13/14: event, semantics, and the k
/// schedule multipliers relative to `w_th`.
pub struct Case {
    /// Display name ("stability", "growth", "shrinkage").
    pub name: &'static str,
    /// Event explored.
    pub event: Event,
    /// Extension side.
    pub extend: ExtendSide,
    /// Union (minimal pairs) or intersection (maximal pairs).
    pub semantics: Semantics,
    /// Threshold schedule as (label, numerator, denominator) of `w_th`:
    /// k = max(1, w_th * num / den).
    pub schedule: [(&'static str, u64, u64); 3],
}

/// The three cases the paper explores for a specific relationship.
pub fn paper_cases() -> Vec<Case> {
    vec![
        Case {
            name: "stability (maximal, ∩)",
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Intersection,
            // w_th is the max; decrease: k3 = w_th, k2 = w_th/2, k1 small
            schedule: [("k1", 1, 64), ("k2", 1, 2), ("k3", 1, 1)],
        },
        Case {
            name: "growth (minimal, ∪)",
            event: Event::Growth,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            schedule: [("k1", 1, 12), ("k2", 1, 2), ("k3", 1, 1)],
        },
        Case {
            name: "shrinkage (minimal, ∪)",
            event: Event::Shrinkage,
            extend: ExtendSide::Old,
            semantics: Semantics::Union,
            // w_th is the min; increase: k1 = w_th, k2 = 2·w_th, k3 = 5·w_th
            schedule: [("k1", 1, 1), ("k2", 2, 1), ("k3", 5, 1)],
        },
    ]
}

/// Runs all cases for the `src → dst` aggregate edge on `attr` and prints
/// the qualifying interval pairs per threshold.
pub fn run_edge_exploration(g: &TemporalGraph, attr: AttrId, src: Value, dst: Value) {
    let selector = Selector::edge_1attr(src, dst);
    for case in paper_cases() {
        let mut cfg = ExploreConfig {
            event: case.event,
            extend: case.extend,
            semantics: case.semantics,
            k: 1,
            attrs: vec![attr],
            selector: selector.clone(),
        };
        let Some(wth) = suggest_k(g, &cfg).expect("domain has ≥2 points") else {
            println!(
                "\n-- {}: no events between any consecutive points --",
                case.name
            );
            continue;
        };
        println!("\n-- {} — w_th = {wth} --", case.name);
        for (label, num, den) in case.schedule {
            let k = (wth.saturating_mul(num) / den).max(1);
            cfg.k = k;
            let out = explore(g, &cfg).expect("exploration succeeds");
            println!(
                "  {label} = {k}: {} qualifying pairs ({} evaluations)",
                out.pairs.len(),
                out.evaluations
            );
            for (pair, r) in out.pairs.iter().take(4) {
                println!("    {} → {r} events", pair.display(g.domain()));
            }
        }
    }
}
