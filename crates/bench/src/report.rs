//! Timing and reporting helpers for the experiment binaries.

use std::time::{Duration, Instant};

/// Times one invocation of `f`, returning its result and wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times `reps` invocations of `f` and returns the last result with the
/// *minimum* wall-clock time — the usual noise-resistant statistic for
/// ablation comparisons on a shared machine.
pub fn timed_min<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps > 0, "timed_min needs at least one repetition");
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (o, d) = timed(&mut f);
        if d < best {
            best = d;
        }
        out = o;
    }
    (out, best)
}

/// Seconds as the paper's figures report them.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// A named series of (x-label, seconds) points, printed as an aligned
/// table — the textual form of one line in a paper figure.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Line label (e.g. the attribute combination).
    pub label: String,
    /// Points in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str) -> Self {
        Series {
            label: label.to_owned(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: &str, y: f64) {
        self.points.push((x.to_owned(), y));
    }
}

/// Prints several series sharing an x axis as one aligned table.
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    if series.is_empty() {
        return;
    }
    let xs: Vec<&str> = series[0].points.iter().map(|(x, _)| x.as_str()).collect();
    let label_w = series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut header = format!("{:<label_w$}", "series");
    for x in &xs {
        header.push_str(&format!(" {x:>9}"));
    }
    println!("{header}");
    for s in series {
        let mut line = format!("{:<label_w$}", s.label);
        for (_, y) in &s.points {
            line.push_str(&format!(" {y:>9.4}"));
        }
        println!("{line}");
    }
}

/// Minimal JSON value for machine-readable experiment reports (the build
/// environment vendors no serialization crates, so rendering is by hand).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// A string, escaped on render.
    Str(String),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders pretty-printed JSON with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            Json::Str(s) => {
                out.push('"');
                out.push_str(&json_escape(s));
                out.push('"');
            }
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(i) => out.push_str(&format!("{i}")),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    out.push('"');
                    out.push_str(&json_escape(k));
                    out.push_str("\": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Converts a live instrumentation snapshot into the report [`Json`]
/// dialect so experiment binaries can embed a `metrics` section next to
/// their wall-clock numbers. Histograms keep their summary statistics but
/// drop per-bucket detail, which is noise at report granularity.
pub fn metrics_json(snap: &tempo_instrument::Snapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), Json::Int(*v)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                Json::Obj(vec![
                    ("count".into(), Json::Int(h.count)),
                    ("sum_ns".into(), Json::Int(h.sum)),
                    ("min_ns".into(), Json::Int(h.min)),
                    ("max_ns".into(), Json::Int(h.max)),
                    ("p50_ns".into(), Json::Int(h.p50)),
                    ("p90_ns".into(), Json::Int(h.p90)),
                    ("p99_ns".into(), Json::Int(h.p99)),
                    ("mean_ns".into(), Json::Num(h.mean())),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("histograms".into(), Json::Obj(histograms)),
    ])
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_and_returns() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
        assert!(secs(d) > 0.0);
    }

    #[test]
    fn series_accumulates() {
        let mut s = Series::new("gender");
        s.push("2000", 0.1);
        s.push("2001", 0.2);
        assert_eq!(s.points.len(), 2);
        print_series("smoke", &[s]);
    }

    #[test]
    fn timed_min_takes_best_of_reps() {
        let mut calls = 0;
        let (v, d) = timed_min(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 3);
        assert_eq!(v, 3);
        assert!(d <= Duration::from_secs(1));
    }

    #[test]
    fn json_renders_escaped_and_nested() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("a\"b\n")),
            ("speedup".into(), Json::Num(3.25)),
            ("evals".into(), Json::Int(42)),
            ("ok".into(), Json::Bool(true)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "cases".into(),
                Json::Arr(vec![
                    Json::Obj(vec![("k".into(), Json::Int(1))]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let s = doc.render();
        assert!(s.contains("\"a\\\"b\\n\""));
        assert!(s.contains("\"speedup\": 3.25"));
        assert!(s.contains("\"evals\": 42"));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"k\": 1"));
        assert!(s.ends_with("}\n"));
    }
}
