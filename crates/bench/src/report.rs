//! Timing and reporting helpers for the experiment binaries.

use std::time::{Duration, Instant};

/// Times one invocation of `f`, returning its result and wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Seconds as the paper's figures report them.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// A named series of (x-label, seconds) points, printed as an aligned
/// table — the textual form of one line in a paper figure.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Line label (e.g. the attribute combination).
    pub label: String,
    /// Points in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str) -> Self {
        Series {
            label: label.to_owned(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: &str, y: f64) {
        self.points.push((x.to_owned(), y));
    }
}

/// Prints several series sharing an x axis as one aligned table.
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    if series.is_empty() {
        return;
    }
    let xs: Vec<&str> = series[0].points.iter().map(|(x, _)| x.as_str()).collect();
    let label_w = series
        .iter()
        .map(|s| s.label.len())
        .max()
        .unwrap_or(0)
        .max(8);
    let mut header = format!("{:<label_w$}", "series");
    for x in &xs {
        header.push_str(&format!(" {x:>9}"));
    }
    println!("{header}");
    for s in series {
        let mut line = format!("{:<label_w$}", s.label);
        for (_, y) in &s.points {
            line.push_str(&format!(" {y:>9.4}"));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_and_returns() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(4));
        assert!(secs(d) > 0.0);
    }

    #[test]
    fn series_accumulates() {
        let mut s = Series::new("gender");
        s.push("2000", 0.1);
        s.push("2001", 0.2);
        assert_eq!(s.points.len(), 2);
        print_series("smoke", &[s]);
    }
}
