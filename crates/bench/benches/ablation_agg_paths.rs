//! Ablation: the three aggregation implementations.
//!
//! * `direct` — hash aggregation over the presence matrices (our default);
//! * `frames` — the paper's Algorithm 2 verbatim on the columnar engine
//!   (unpivot → merge → dedup → group-count), the authors' pandas shape;
//! * `static_fast` — the §4.2 shortcut valid when all attributes are static.
//!
//! Quantifies what the paper's static-attribute optimization buys and what
//! the dataframe formulation costs relative to direct hashing.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::{aggregate, aggregate_static_fast, aggregate_via_frames, AggMode};
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::TemporalGraph;

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_agg_paths");
    group.sample_size(10);

    let gender = attrs(g, &["gender"]);
    let mixed = attrs(g, &["gender", "publications"]);
    for mode in [AggMode::Distinct, AggMode::All] {
        let tag = match mode {
            AggMode::Distinct => "DIST",
            AggMode::All => "ALL",
        };
        group.bench_function(format!("direct/gender/{tag}"), |b| {
            b.iter(|| aggregate(g, &gender, mode))
        });
        group.bench_function(format!("static_fast/gender/{tag}"), |b| {
            b.iter(|| aggregate_static_fast(g, &gender, mode).expect("static attrs"))
        });
        group.bench_function(format!("frames/gender/{tag}"), |b| {
            b.iter(|| aggregate_via_frames(g, &gender, mode).expect("valid graph"))
        });
        group.bench_function(format!("direct/gender+pubs/{tag}"), |b| {
            b.iter(|| aggregate(g, &mixed, mode))
        });
        group.bench_function(format!("frames/gender+pubs/{tag}"), |b| {
            b.iter(|| aggregate_via_frames(g, &mixed, mode).expect("valid graph"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
