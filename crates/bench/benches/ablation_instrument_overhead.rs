//! Ablation of the instrumentation subsystem itself: full exploration runs
//! with the metrics registry recording (the default) versus globally
//! disabled via `tempo_instrument::set_enabled(false)`. The disabled path
//! must stay within noise of the enabled path minus recording cost — the
//! acceptance bar for shipping instrumentation on by default is that
//! *disabling* it buys back less than ~2% on exploration workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::ops::Event;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::TemporalGraph;

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let gender = attrs(g, &["gender"])[0];
    let f = g.schema().category(gender, "f").expect("category");
    let mut group = c.benchmark_group("ablation_instrument_overhead");
    group.sample_size(10);
    for (name, event, extend, semantics, k) in [
        (
            "stability_union",
            Event::Stability,
            ExtendSide::New,
            Semantics::Union,
            50,
        ),
        (
            "growth_union",
            Event::Growth,
            ExtendSide::New,
            Semantics::Union,
            100,
        ),
        (
            "shrinkage_union",
            Event::Shrinkage,
            ExtendSide::Old,
            Semantics::Union,
            100,
        ),
    ] {
        let cfg = ExploreConfig {
            event,
            extend,
            semantics,
            k,
            attrs: vec![gender],
            selector: Selector::edge_1attr(f.clone(), f.clone()),
        };
        tempo_instrument::set_enabled(true);
        group.bench_function(format!("enabled/{name}"), |b| {
            b.iter(|| explore(g, &cfg).expect("explore"))
        });
        tempo_instrument::set_enabled(false);
        group.bench_function(format!("disabled/{name}"), |b| {
            b.iter(|| explore(g, &cfg).expect("explore"))
        });
        tempo_instrument::set_enabled(true);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
