//! Criterion bench for the exploration strategies: monotonicity-pruned
//! U-/I-Explore vs naive enumeration of every interval pair.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::explore::{
    explore, explore_naive, explore_parallel, ExploreConfig, ExtendSide, Selector, Semantics,
};
use graphtempo::ops::Event;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::TemporalGraph;

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let gender = attrs(g, &["gender"])[0];
    let f = g.schema().category(gender, "f").expect("category");
    let mut group = c.benchmark_group("explore_pruning");
    group.sample_size(10);
    for (name, event, extend, semantics, k) in [
        (
            "stability_union",
            Event::Stability,
            ExtendSide::New,
            Semantics::Union,
            50,
        ),
        (
            "stability_intersection",
            Event::Stability,
            ExtendSide::New,
            Semantics::Intersection,
            1,
        ),
        (
            "growth_union",
            Event::Growth,
            ExtendSide::New,
            Semantics::Union,
            100,
        ),
        (
            "shrinkage_union",
            Event::Shrinkage,
            ExtendSide::Old,
            Semantics::Union,
            100,
        ),
    ] {
        let cfg = ExploreConfig {
            event,
            extend,
            semantics,
            k,
            attrs: vec![gender],
            selector: Selector::edge_1attr(f.clone(), f.clone()),
        };
        group.bench_function(format!("pruned/{name}"), |b| {
            b.iter(|| explore(g, &cfg).expect("explore"))
        });
        group.bench_function(format!("naive/{name}"), |b| {
            b.iter(|| explore_naive(g, &cfg).expect("naive"))
        });
        group.bench_function(format!("parallel4/{name}"), |b| {
            b.iter(|| explore_parallel(g, &cfg, 4).expect("parallel explore"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
