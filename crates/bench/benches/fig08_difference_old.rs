//! Criterion bench for Fig. 8: difference 𝒯old(∪) − 𝒯new + aggregation as
//! 𝒯old extends backward (output grows).

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::difference;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let n = g.domain().len();
    let tnew = TimeSet::point(n, TimePoint((n - 1) as u32));
    let mut group = c.benchmark_group("fig08_difference_old_minus_new");
    group.sample_size(10);
    for start in [n - 2, n / 2, 0] {
        let told = TimeSet::range(n, start, n - 2);
        let len = n - 1 - start;
        group.bench_function(format!("op/old_len{len}"), |b| {
            b.iter(|| difference(g, &told, &tnew).expect("difference"))
        });
        let d = difference(g, &told, &tnew).expect("difference");
        for name in ["gender", "publications"] {
            let ids = attrs(&d, &[name]);
            for (mode, tag) in [(AggMode::Distinct, "DIST"), (AggMode::All, "ALL")] {
                group.bench_function(format!("agg/{name}/{tag}/old_len{len}"), |b| {
                    b.iter(|| aggregate(&d, &ids, mode))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
