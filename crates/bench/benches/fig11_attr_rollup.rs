//! Criterion bench for Fig. 11: aggregating a subset of attributes from
//! scratch vs rolling it up from a precomputed finer aggregate.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::rollup;
use graphtempo::materialize::aggregate_at_point;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, movielens};
use tempo_graph::{TemporalGraph, TimePoint};

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(movielens)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let aug = TimePoint(3); // the densest month
    let mut group = c.benchmark_group("fig11_attr_rollup");
    group.sample_size(20);

    let all4 = attrs(g, &["gender", "age", "occupation", "rating"]);
    let full = aggregate_at_point(g, &all4, aug);
    for subset in [
        &["gender"][..],
        &["rating"][..],
        &["gender", "age"][..],
        &["gender", "age", "occupation"][..],
    ] {
        let ids = attrs(g, subset);
        group.bench_function(format!("scratch/{}", subset.join("+")), |b| {
            b.iter(|| aggregate_at_point(g, &ids, aug))
        });
        group.bench_function(format!("rollup/{}", subset.join("+")), |b| {
            b.iter(|| rollup(&full, subset).expect("subset of the full attribute set"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
