//! Criterion bench for Fig. 6: union + aggregation (DIST, ALL) cost as the
//! interval extends, static vs time-varying attributes.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::union;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let n = g.domain().len();
    let mut group = c.benchmark_group("fig06_union");
    group.sample_size(10);
    for end in [5usize, 10, n - 1] {
        let t1 = TimeSet::range(n, 0, end - 1);
        let t2 = TimeSet::point(n, TimePoint(end as u32));
        group.bench_function(format!("op/len{}", end + 1), |b| {
            b.iter(|| union(g, &t1, &t2).expect("union"))
        });
        let u = union(g, &t1, &t2).expect("union");
        for name in ["gender", "publications"] {
            let ids = attrs(&u, &[name]);
            for (mode, tag) in [(AggMode::Distinct, "DIST"), (AggMode::All, "ALL")] {
                group.bench_function(format!("agg/{name}/{tag}/len{}", end + 1), |b| {
                    b.iter(|| aggregate(&u, &ids, mode))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
