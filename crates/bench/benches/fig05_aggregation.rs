//! Criterion bench for Fig. 5: per-timepoint aggregation cost per
//! attribute combination (DIST).

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::project_point;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp, movielens};
use tempo_graph::{TemporalGraph, TimePoint};

fn dblp_graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn ml_graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(movielens)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig05_aggregation");
    group.sample_size(20);

    let g = dblp_graph();
    let last = TimePoint((g.domain().len() - 1) as u32);
    let proj = project_point(g, last).expect("projection");
    for combo in [
        &["gender"][..],
        &["publications"][..],
        &["gender", "publications"][..],
    ] {
        let ids = attrs(&proj, combo);
        group.bench_function(format!("dblp_2020/{}", combo.join("+")), |b| {
            b.iter(|| aggregate(&proj, &ids, AggMode::Distinct))
        });
    }

    let g = ml_graph();
    let aug = TimePoint(3);
    let proj = project_point(g, aug).expect("projection");
    for combo in [
        &["gender"][..],
        &["rating"][..],
        &["gender", "age", "occupation", "rating"][..],
    ] {
        let ids = attrs(&proj, combo);
        group.bench_function(format!("movielens_aug/{}", combo.join("+")), |b| {
            b.iter(|| aggregate(&proj, &ids, AggMode::Distinct))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
