//! Ablation: parallel per-timepoint materialization.
//!
//! The paper's implementation leans on the Modin multiprocess dataframe
//! library; our analogue fans per-timepoint aggregation out over crossbeam
//! scoped threads. This bench measures the store-build speedup across
//! thread counts.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::materialize::TimepointStore;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::TemporalGraph;

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let ids = attrs(g, &["gender", "publications"]);
    let mut group = c.benchmark_group("ablation_parallel_store");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| TimepointStore::build(g, &ids)));
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| TimepointStore::build_parallel(g, &ids, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
