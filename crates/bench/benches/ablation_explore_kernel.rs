//! Ablation of the zero-materialization exploration kernel: full
//! exploration runs and single pair evaluations through the kernel
//! (`EventMask` + interned `GroupTable`) versus the materializing reference
//! path (`event_graph` + hash-map aggregation). Both share the pruning
//! strategies, so any difference is pure evaluation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::explore::{
    evaluate_pair_materialized, explore, explore_materializing, ExploreConfig, ExploreKernel,
    ExtendSide, Selector, Semantics,
};
use graphtempo::ops::Event;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::{TemporalGraph, TimeSet};

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let gender = attrs(g, &["gender"])[0];
    let f = g.schema().category(gender, "f").expect("category");
    let mut group = c.benchmark_group("ablation_explore_kernel");
    group.sample_size(10);
    for (name, event, extend, semantics, k) in [
        (
            "stability_union",
            Event::Stability,
            ExtendSide::New,
            Semantics::Union,
            50,
        ),
        (
            "stability_intersection",
            Event::Stability,
            ExtendSide::New,
            Semantics::Intersection,
            1,
        ),
        (
            "growth_union",
            Event::Growth,
            ExtendSide::New,
            Semantics::Union,
            100,
        ),
        (
            "shrinkage_union",
            Event::Shrinkage,
            ExtendSide::Old,
            Semantics::Union,
            100,
        ),
    ] {
        let cfg = ExploreConfig {
            event,
            extend,
            semantics,
            k,
            attrs: vec![gender],
            selector: Selector::edge_1attr(f.clone(), f.clone()),
        };
        group.bench_function(format!("kernel/{name}"), |b| {
            b.iter(|| explore(g, &cfg).expect("kernel explore"))
        });
        group.bench_function(format!("materializing/{name}"), |b| {
            b.iter(|| explore_materializing(g, &cfg).expect("materializing explore"))
        });
        // Single-pair evaluation over the widest interval pair: the unit of
        // work the kernel optimizes, without the enumeration loop around it.
        let n = g.domain().len();
        let told = TimeSet::range(n, 0, n / 2);
        let tnew = TimeSet::range(n, n / 2 + 1, n - 1);
        let kernel = ExploreKernel::new(g, &cfg);
        group.bench_function(format!("kernel_pair/{name}"), |b| {
            b.iter(|| kernel.evaluate(&told, &tnew).expect("kernel pair"))
        });
        group.bench_function(format!("materializing_pair/{name}"), |b| {
            b.iter(|| evaluate_pair_materialized(g, &cfg, &told, &tnew).expect("materialized pair"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
