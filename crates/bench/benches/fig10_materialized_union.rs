//! Criterion bench for Fig. 10: from-scratch union + ALL aggregation vs
//! the T-distributive combination of precomputed per-timepoint aggregates.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::materialize::TimepointStore;
use graphtempo::ops::union;
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let n = g.domain().len();
    let mut group = c.benchmark_group("fig10_materialized_union");
    group.sample_size(10);
    for name in ["gender", "publications"] {
        let ids = attrs(g, &[name]);
        let store = TimepointStore::build(g, &ids);
        for end in [5usize, n - 1] {
            let t1 = TimeSet::range(n, 0, end - 1);
            let t2 = TimeSet::point(n, TimePoint(end as u32));
            let scope = t1.union(&t2);
            group.bench_function(format!("scratch/{name}/len{}", end + 1), |b| {
                b.iter(|| {
                    let u = union(g, &t1, &t2).expect("union");
                    aggregate(&u, &attrs(&u, &[name]), AggMode::All)
                })
            });
            group.bench_function(format!("precomputed/{name}/len{}", end + 1), |b| {
                b.iter(|| store.union_all(&scope).expect("scope within domain"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
