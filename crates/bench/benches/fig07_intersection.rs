//! Criterion bench for Fig. 7: intersection (entities spanning the whole
//! interval) + aggregation cost as the interval extends.

use criterion::{criterion_group, criterion_main, Criterion};
use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::ops::{event_graph, Event, SideTest};
use std::sync::OnceLock;
use tempo_bench::datasets::{attrs, dblp};
use tempo_graph::{TemporalGraph, TimePoint, TimeSet};

fn graph() -> &'static TemporalGraph {
    static G: OnceLock<TemporalGraph> = OnceLock::new();
    G.get_or_init(dblp)
}

fn bench(c: &mut Criterion) {
    let g = graph();
    let n = g.domain().len();
    let mut group = c.benchmark_group("fig07_intersection");
    group.sample_size(10);
    for end in [2usize, 5, 10] {
        let t1 = TimeSet::range(n, 0, end - 1);
        let t2 = TimeSet::point(n, TimePoint(end as u32));
        group.bench_function(format!("op/len{}", end + 1), |b| {
            b.iter(|| {
                event_graph(g, Event::Stability, &t1, &t2, SideTest::All, SideTest::Any)
                    .expect("intersection")
            })
        });
        let ix = event_graph(g, Event::Stability, &t1, &t2, SideTest::All, SideTest::Any)
            .expect("intersection");
        for name in ["gender", "publications"] {
            let ids = attrs(&ix, &[name]);
            group.bench_function(format!("agg/{name}/DIST/len{}", end + 1), |b| {
                b.iter(|| aggregate(&ix, &ids, AggMode::Distinct))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
