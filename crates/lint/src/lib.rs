//! `tempo-lint`: repo-specific static analysis for the GraphTempo workspace.
//!
//! The exploration speedups rest on word-level bitset kernels whose
//! correctness depends on conventions a generic linter cannot check: which
//! crates may panic, where wall-clock reads are allowed, and that every
//! metric name recorded anywhere matches the central registry consumed by
//! `report::metrics_json`. This crate walks the workspace sources with a
//! small line/token scanner (no syn, no proc-macro machinery — it must build
//! with `--offline --locked` before anything else) and enforces:
//!
//! * **`no-panic`** — no `.unwrap()` / `.expect(..)` / `panic!(..)` in
//!   library-crate code outside `#[cfg(test)]`. An `.expect("invariant: ..")`
//!   whose message documents the invariant that makes the failure impossible
//!   is permitted; everything else needs a typed error or an allowlist entry
//!   (see `crates/lint/allowlist.txt`, burned down per crate).
//! * **`no-instant`** — no `std::time::Instant` outside `tempo-instrument`:
//!   all timing flows through the registry so it can be disabled and
//!   snapshotted coherently.
//! * **`no-print`** — no `println!` / `eprintln!` in library crates; output
//!   belongs to the CLI and the bench binaries.
//! * **`metric-registry`** — every string literal passed to
//!   `.counter("…")` / `.gauge("…")` / `.histogram("…")` must appear in
//!   `crates/instrument/src/names.rs`, catching counter-name drift between
//!   emitters and consumers.
//! * **`must-use`** — a pure `pub fn` returning an owned `BitVec`,
//!   `BitMatrix`, `TransposedBitMatrix`, `EventMask` or `GroupTable` must
//!   carry `#[must_use]`: silently dropping one of these values almost
//!   always means a mask or table was computed and thrown away.
//!
//! The scanner strips comments and string/char literals before matching, so
//! doc examples and message text never trigger rules; `#[cfg(test)]` items
//! (and whole `tests/` / `benches/` / `examples/` directories) are exempt.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, also used in the allowlist file.
pub const RULE_NO_PANIC: &str = "no-panic";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_INSTANT: &str = "no-instant";
/// See [`RULE_NO_PANIC`].
pub const RULE_NO_PRINT: &str = "no-print";
/// See [`RULE_NO_PANIC`].
pub const RULE_METRIC_REGISTRY: &str = "metric-registry";
/// See [`RULE_NO_PANIC`].
pub const RULE_MUST_USE: &str = "must-use";
/// See [`RULE_NO_PANIC`].
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
/// See [`RULE_NO_PANIC`].
pub const RULE_LOCK_SCOPE: &str = "lock-scope";
/// See [`RULE_NO_PANIC`].
pub const RULE_CACHE_SEAM: &str = "cache-seam";
/// See [`RULE_NO_PANIC`].
pub const RULE_ENV_READ: &str = "env-read";

/// Expect messages beginning with this prefix document an invariant that
/// makes the failure impossible, and are therefore exempt from `no-panic`.
pub const INVARIANT_PREFIX: &str = "invariant";

/// One lint finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A string literal found in source, with its line (1-based), start column,
/// and unescaped-enough content (escapes are kept verbatim; rules only
/// prefix-match or compare registry names, which contain no escapes).
#[derive(Clone, Debug)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// 0-based column of the opening quote within the code view line.
    pub col: usize,
    /// Literal content between the quotes.
    pub value: String,
}

/// The scanner's view of one file: per-line code text with comments and
/// literal contents blanked, collected string literals, and test exemption.
#[derive(Debug, Default)]
pub struct FileView {
    /// Code text per line; comment and string-literal bytes are replaced by
    /// spaces so rule patterns never match inside them.
    pub code: Vec<String>,
    /// All string literals, in source order.
    pub strings: Vec<StrLit>,
    /// `exempt[i]` is true when line `i+1` lies in a `#[cfg(test)]` item.
    pub exempt: Vec<bool>,
    /// Raw source lines (comments intact) — `atomic-ordering` looks for
    /// `// ordering:` rationale comments here, which the code view blanks.
    pub raw: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Strips comments and literals from `source`, keeping byte-for-byte line
/// structure, and records every string literal with its position.
pub fn preprocess(source: &str) -> FileView {
    let chars: Vec<char> = source.chars().collect();
    let mut view = FileView {
        raw: source.lines().map(str::to_owned).collect(),
        ..FileView::default()
    };
    let mut code = String::new();
    let mut line_no = 1usize;
    let mut col = 0usize;
    let mut state = State::Normal;
    let mut lit = String::new();
    let mut lit_start = (0usize, 0usize);
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            view.code.push(std::mem::take(&mut code));
            line_no += 1;
            col = 0;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                    continue;
                }
                // Raw (and byte/raw-byte) strings: r"..." / r#"..."# etc.
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"')
                        && (hashes > 0 || j > i + (c as u8 == b'b') as usize)
                    {
                        for _ in i..=j {
                            code.push(' ');
                            col += 1;
                        }
                        lit_start = (line_no, col.saturating_sub(1));
                        lit.clear();
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '"' {
                    code.push('"');
                    lit_start = (line_no, col);
                    lit.clear();
                    state = State::Str;
                    col += 1;
                    i += 1;
                    continue;
                }
                if c == 'b' && chars.get(i + 1) == Some(&'\'') && !prev_is_ident(&chars, i) {
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                    state = State::Char;
                    continue;
                }
                if c == '\'' {
                    // Lifetime vs char literal: a char literal closes within
                    // two characters (or starts with an escape).
                    let is_char = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        code.push(' ');
                        col += 1;
                        i += 1;
                        state = State::Char;
                    } else {
                        code.push('\'');
                        col += 1;
                        i += 1;
                    }
                    continue;
                }
                code.push(c);
                col += 1;
                i += 1;
            }
            State::LineComment => {
                code.push(' ');
                col += 1;
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else {
                    code.push(' ');
                    col += 1;
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    lit.push(c);
                    if let Some(&n) = chars.get(i + 1) {
                        lit.push(n);
                        code.push_str("  ");
                        col += 2;
                        i += 2;
                        continue;
                    }
                    code.push(' ');
                    col += 1;
                    i += 1;
                } else if c == '"' {
                    code.push('"');
                    col += 1;
                    i += 1;
                    view.strings.push(StrLit {
                        line: lit_start.0,
                        col: lit_start.1,
                        value: std::mem::take(&mut lit),
                    });
                    state = State::Normal;
                } else {
                    lit.push(c);
                    code.push(' ');
                    col += 1;
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                            col += 1;
                        }
                        i += 1 + hashes as usize;
                        view.strings.push(StrLit {
                            line: lit_start.0,
                            col: lit_start.1,
                            value: std::mem::take(&mut lit),
                        });
                        state = State::Normal;
                        continue;
                    }
                }
                lit.push(c);
                code.push(' ');
                col += 1;
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    col += 2;
                    i += 2;
                } else if c == '\'' {
                    code.push(' ');
                    col += 1;
                    i += 1;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    col += 1;
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || source.ends_with('\n') {
        view.code.push(code);
    }
    mark_test_exemptions(&mut view);
    view
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Marks lines inside `#[cfg(test)]` items as exempt from every rule.
fn mark_test_exemptions(view: &mut FileView) {
    let mut exempt = vec![false; view.code.len()];
    let mut depth = 0i64;
    // Depth below which we leave the exempt region (None = not exempt).
    let mut exempt_floor: Option<i64> = None;
    // A `#[cfg(test)]` was seen; waiting for the item's opening brace.
    let mut pending = false;
    for (idx, line) in view.code.iter().enumerate() {
        if pending || exempt_floor.is_some() {
            exempt[idx] = true;
        }
        if line.contains("#[cfg(test)]") {
            pending = true;
            exempt[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending && exempt_floor.is_none() {
                        exempt_floor = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if exempt_floor == Some(depth) {
                        exempt_floor = None;
                    }
                }
                // `#[cfg(test)] mod tests;` — item ends without a body.
                ';' if pending && exempt_floor.is_none() => pending = false,
                _ => {}
            }
        }
    }
    view.exempt = exempt;
}

/// Which rule applies to which workspace-relative path prefix.
///
/// When `explicit` is set (paths given on the command line, e.g. the lint
/// self-test fixtures), every rule applies everywhere.
#[derive(Clone, Copy, Debug)]
pub struct Scope {
    /// Apply every rule to every scanned file, ignoring crate layout.
    pub explicit: bool,
}

/// Library-crate source prefixes: no panics, no printing.
const LIB_PREFIXES: &[&str] = &[
    "crates/columnar/src",
    "crates/temporal-graph/src",
    "crates/core/src",
    "crates/instrument/src",
    "crates/datagen/src",
    "src",
];

/// Prefixes where `must-use` is enforced (the bit-kernel surface).
const MUST_USE_PREFIXES: &[&str] = &[
    "crates/columnar/src",
    "crates/temporal-graph/src",
    "crates/core/src",
];

fn has_prefix(rel: &str, prefixes: &[&str]) -> bool {
    prefixes
        .iter()
        .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

impl Scope {
    /// Whether `rule` applies to the file at workspace-relative `rel`.
    pub fn applies(&self, rule: &str, rel: &str) -> bool {
        if self.explicit {
            return true;
        }
        match rule {
            RULE_NO_PANIC => {
                has_prefix(rel, LIB_PREFIXES)
                    || has_prefix(rel, &["crates/cli/src", "crates/server/src"])
            }
            RULE_NO_PRINT => has_prefix(rel, LIB_PREFIXES),
            RULE_NO_INSTANT => !has_prefix(rel, &["crates/instrument/src"]),
            RULE_METRIC_REGISTRY => true,
            RULE_MUST_USE => has_prefix(rel, MUST_USE_PREFIXES),
            // The race crate's protocols take their orderings from spec
            // structs (so the checker can mutate them); literal-`Ordering`
            // matching cannot apply there.
            RULE_ATOMIC_ORDERING => !has_prefix(rel, &["crates/race/src"]),
            RULE_LOCK_SCOPE => true,
            RULE_CACHE_SEAM => has_prefix(rel, &["crates/temporal-graph/src"]),
            RULE_ENV_READ => true,
            _ => false,
        }
    }
}

/// Return types whose silent drop `must-use` guards against.
const MUST_USE_TYPES: &[&str] = &[
    "BitVec",
    "BitMatrix",
    "TransposedBitMatrix",
    "PresenceColumn",
    "EventMask",
    "GroupTable",
];

/// Lints one preprocessed file. `registry` holds the known metric names;
/// `seams` the cache-seam-exempt function names
/// (`crates/temporal-graph/src/seams.rs`).
pub fn lint_file(
    rel: &str,
    view: &FileView,
    registry: &[String],
    seams: &[String],
    scope: Scope,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let diag = |out: &mut Vec<Diagnostic>, line: usize, rule: &'static str, message: String| {
        out.push(Diagnostic {
            path: rel.to_owned(),
            line,
            rule,
            message,
        });
    };

    let no_panic = scope.applies(RULE_NO_PANIC, rel);
    let no_print = scope.applies(RULE_NO_PRINT, rel);
    let no_instant = scope.applies(RULE_NO_INSTANT, rel);
    let metric = scope.applies(RULE_METRIC_REGISTRY, rel);
    let atomic = scope.applies(RULE_ATOMIC_ORDERING, rel);
    // Binaries read configuration at startup; everything else takes it as
    // arguments so behavior is reproducible from the call site alone.
    let env_read =
        scope.applies(RULE_ENV_READ, rel) && !rel.ends_with("/main.rs") && !rel.contains("/bin/");

    for (idx, code) in view.code.iter().enumerate() {
        if view.exempt.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let line = idx + 1;
        if no_panic {
            if code.contains(".unwrap()") {
                diag(
                    &mut out,
                    line,
                    RULE_NO_PANIC,
                    "`.unwrap()` in library code: return a typed error or \
                     use `.expect(\"invariant: ..\")` with the reason it cannot fail"
                        .into(),
                );
            }
            for col in find_all(code, ".expect(") {
                if !expect_is_invariant(view, idx, col + ".expect(".len()) {
                    diag(
                        &mut out,
                        line,
                        RULE_NO_PANIC,
                        "`.expect(..)` without an `invariant:`-prefixed message: \
                         return a typed error or document why it cannot fail"
                            .into(),
                    );
                }
            }
            if contains_macro(code, "panic") {
                diag(
                    &mut out,
                    line,
                    RULE_NO_PANIC,
                    "`panic!` in library code: return a typed error".into(),
                );
            }
        }
        if no_print && (contains_macro(code, "println") || contains_macro(code, "eprintln")) {
            diag(
                &mut out,
                line,
                RULE_NO_PRINT,
                "`println!`/`eprintln!` in library code: route output through \
                 the CLI or the instrumentation registry"
                    .into(),
            );
        }
        if no_instant && contains_word(code, "Instant") {
            diag(
                &mut out,
                line,
                RULE_NO_INSTANT,
                "`std::time::Instant` outside tempo-instrument: use registry \
                 histograms/spans so timing can be disabled and snapshotted"
                    .into(),
            );
        }
        if atomic && ATOMIC_OPS.iter().any(|t| code.contains(t)) {
            match nearby_atomic_ordering(view, idx) {
                None => diag(
                    &mut out,
                    line,
                    RULE_ATOMIC_ORDERING,
                    "atomic operation without an explicit `Ordering::` at the \
                     call site: spell the ordering out where the access happens"
                        .into(),
                ),
                Some(ord) => {
                    // tempo-instrument is the designated relaxed-counter
                    // surface: bare `Relaxed` is its contract. Everywhere
                    // else (and for anything stronger than `Relaxed` even
                    // there) the choice must be justified in an adjacent
                    // `// ordering:` comment.
                    let instrument = rel.starts_with("crates/instrument/src");
                    let free = instrument && ord == "Relaxed";
                    if !free && !has_ordering_rationale(view, idx) {
                        diag(
                            &mut out,
                            line,
                            RULE_ATOMIC_ORDERING,
                            format!(
                                "`Ordering::{ord}` without an adjacent `// ordering:` \
                                 rationale comment: state which data this edge \
                                 publishes/acquires (or why none)"
                            ),
                        );
                    }
                }
            }
        }
        if env_read && ENV_OPS.iter().any(|t| code.contains(t)) {
            diag(
                &mut out,
                line,
                RULE_ENV_READ,
                "`std::env` read outside binary startup: thread the \
                 configuration through arguments/config structs so behavior \
                 is reproducible"
                    .into(),
            );
        }
        if metric {
            for pat in [".counter(", ".gauge(", ".histogram("] {
                for col in find_all(code, pat) {
                    // Only a literal that IS the argument is checkable; a
                    // computed name (`.histogram(&format!(..))`) is not.
                    if let Some(lit) = direct_literal_arg(view, idx, col + pat.len()) {
                        if !registry.iter().any(|n| n == &lit.value) {
                            diag(
                                &mut out,
                                lit.line,
                                RULE_METRIC_REGISTRY,
                                format!(
                                    "metric name {:?} is not in the central registry \
                                     (crates/instrument/src/names.rs)",
                                    lit.value
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    if scope.applies(RULE_MUST_USE, rel) {
        lint_must_use(rel, view, &mut out);
    }
    if scope.applies(RULE_LOCK_SCOPE, rel) {
        lint_lock_scope(rel, view, &mut out);
    }
    if scope.applies(RULE_CACHE_SEAM, rel) {
        lint_cache_seam(rel, view, seams, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

/// Method tokens of the `std::sync::atomic` API surface.
const ATOMIC_OPS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".fetch_",
    ".compare_exchange(",
    ".compare_exchange_weak(",
];

/// `std::env` process-environment accessors.
const ENV_OPS: &[&str] = &[
    "env::var(",
    "env::var_os(",
    "env::set_var(",
    "env::remove_var(",
];

/// Atomic memory orderings (so `std::cmp::Ordering::Less` never matches).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// The atomic `Ordering::` variant named on this line or the next two
/// (rustfmt may wrap the argument), if any.
fn nearby_atomic_ordering(view: &FileView, idx: usize) -> Option<&'static str> {
    (idx..idx + 3)
        .filter_map(|j| view.code.get(j))
        .find_map(|l| {
            find_all(l, "Ordering::").into_iter().find_map(|off| {
                let rest = &l[off + "Ordering::".len()..];
                ATOMIC_ORDERINGS
                    .iter()
                    .find(|o| {
                        rest.starts_with(**o)
                            && !rest[o.len()..]
                                .starts_with(|c: char| c.is_alphanumeric() || c == '_')
                    })
                    .copied()
            })
        })
}

/// Whether a `// ordering:` rationale comment sits on the site line or one
/// of the three lines above it (raw view — comments are blanked in code).
fn has_ordering_rationale(view: &FileView, idx: usize) -> bool {
    (idx.saturating_sub(3)..=idx)
        .filter_map(|j| view.raw.get(j))
        .any(|l| l.contains("// ordering:"))
}

/// Calls that park, block on IO, or wait on another thread: holding a lock
/// guard across one turns every other acquirer into a hostage of that
/// wait (and of the remote peer, for socket IO).
const BLOCKING_CALLS: &[&str] = &[
    "thread::spawn(",
    ".join()",
    ".write_all(",
    ".read_line(",
    ".flush()",
    "TcpStream::connect",
    ".accept(",
];

/// Methods through which a `.lock()` call still yields the guard itself.
fn is_guard_adapter(name: &str) -> bool {
    matches!(name, "unwrap" | "expect" | "unwrap_or_else")
}

/// Skips one balanced `(..)` group; `s` must start at the open paren.
fn skip_balanced_parens(s: &str) -> Option<&str> {
    let mut depth = 0i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[i + 1..]);
                }
            }
            _ => {}
        }
    }
    None
}

/// If `stmt` is `let [mut] NAME = <recv>.lock()[.unwrap…()];`, i.e. binds a
/// live guard, returns `NAME`. A chain that keeps going past the unwrap
/// adapters (`.lock().unwrap().clone()`) consumes the guard within the
/// statement — the clone-and-release idiom — and binds no guard. Stdio
/// locks (`stdin.lock()`) are not mutexes and are skipped.
fn lock_guard_binding(stmt: &str) -> Option<String> {
    let t = stmt.trim_start().strip_prefix("let ")?.trim_start();
    let t = t.strip_prefix("mut ").unwrap_or(t).trim_start();
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let rest = t[name.len()..].trim_start().strip_prefix('=')?;
    let lock_at = rest.find(".lock(")?;
    let recv = rest[..lock_at].trim_end();
    if ["stdin", "stdout", "stderr"]
        .iter()
        .any(|s| recv.ends_with(s))
    {
        return None;
    }
    let mut after = skip_balanced_parens(&rest[lock_at + ".lock".len()..])?;
    loop {
        let t = after.trim_start();
        if t.is_empty() || t.starts_with(';') || t.starts_with('?') {
            return Some(name);
        }
        let t = t.strip_prefix('.')?;
        let method: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !is_guard_adapter(&method) {
            return None;
        }
        after = skip_balanced_parens(t[method.len()..].trim_start())?;
    }
}

/// Flags blocking calls made while a `let`-bound lock guard is live: from
/// the binding statement to the end of its block scope or an explicit
/// `drop(guard)`, whichever comes first.
fn lint_lock_scope(rel: &str, view: &FileView, out: &mut Vec<Diagnostic>) {
    let n = view.code.len();
    for idx in 0..n {
        if view.exempt.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let code = &view.code[idx];
        if !code.contains("let ") {
            continue;
        }
        // Gather the whole (possibly rustfmt-wrapped) statement.
        let mut stmt = String::new();
        let mut stmt_end = idx;
        for j in idx..n.min(idx + 6) {
            stmt.push_str(&view.code[j]);
            stmt.push(' ');
            stmt_end = j;
            if view.code[j].contains(';') {
                break;
            }
        }
        let Some(guard) = lock_guard_binding(&stmt) else {
            continue;
        };
        let dropped = format!("drop({guard})");
        let mut depth = 0i64;
        for j in (stmt_end + 1)..n {
            let l = &view.code[j];
            if l.contains(&dropped) {
                break;
            }
            for call in BLOCKING_CALLS {
                if l.contains(call) {
                    let what = call.trim_end_matches('(');
                    let bind = idx + 1;
                    out.push(Diagnostic {
                        path: rel.to_owned(),
                        line: j + 1,
                        rule: RULE_LOCK_SCOPE,
                        message: format!(
                            "`{what}` while MutexGuard `{guard}` (bound on line {bind}) \
                             is live: clone the data out and release the lock first, \
                             or drop the guard explicitly"
                        ),
                    });
                }
            }
            for c in l.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if depth < 0 || j > stmt_end + 400 {
                break;
            }
        }
    }
}

/// Presence-matrix mutating calls (the index caches derive from these
/// matrices, so every mutation is a cache seam).
fn is_presence_mutation(code: &str) -> bool {
    (code.contains("node_presence") || code.contains("edge_presence"))
        && [".set(", ".push_empty_row(", ".push_col(", ".widen("]
            .iter()
            .any(|t| code.contains(t))
}

/// First function name declared on this line, if any.
fn fn_decl_name(code: &str) -> Option<String> {
    for off in find_all(code, "fn ") {
        let before_ok = off == 0 || {
            let b = code.as_bytes()[off - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if !before_ok {
            continue;
        }
        let name: String = code[off + 3..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

/// Flags functions that mutate a presence matrix without calling
/// `invalidate_index_caches` and without an entry in the seam registry
/// (`crates/temporal-graph/src/seams.rs`) documenting why the caches are
/// safe (builder paths where no cache exists yet, append paths that carry
/// caches forward explicitly).
fn lint_cache_seam(rel: &str, view: &FileView, seams: &[String], out: &mut Vec<Diagnostic>) {
    // (depth at which the fn's body opened, name, saw invalidate, mutation lines)
    let mut stack: Vec<(i64, String, bool, Vec<usize>)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0i64;
    for (idx, code) in view.code.iter().enumerate() {
        let exempt = view.exempt.get(idx).copied().unwrap_or(false);
        if !exempt {
            if let Some(name) = fn_decl_name(code) {
                pending = Some(name);
            }
            if let Some(top) = stack.last_mut() {
                if code.contains("invalidate_index_caches") {
                    top.2 = true;
                }
                if is_presence_mutation(code) {
                    top.3.push(idx + 1);
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if let Some(name) = pending.take() {
                        stack.push((depth, name, false, Vec::new()));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last().is_some_and(|(d, _, _, _)| *d == depth) {
                        let (_, name, saw, muts) =
                            stack.pop().unwrap_or((0, String::new(), false, Vec::new()));
                        if let Some(&first) = muts.first() {
                            if !saw && !seams.iter().any(|s| s == &name) {
                                out.push(Diagnostic {
                                    path: rel.to_owned(),
                                    line: first,
                                    rule: RULE_CACHE_SEAM,
                                    message: format!(
                                        "`{name}` mutates a presence matrix without \
                                         `invalidate_index_caches()` and is not in the \
                                         seam registry (crates/temporal-graph/src/seams.rs)"
                                    ),
                                });
                            }
                        }
                    }
                }
                // `fn f();` — declaration without a body.
                ';' => pending = None,
                _ => {}
            }
        }
    }
}

/// All start offsets of `pat` within `hay`.
fn find_all(hay: &str, pat: &str) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(pat) {
        offs.push(from + p);
        from += p + pat.len();
    }
    offs
}

/// Whole-word match (neither neighbor is an identifier character).
fn contains_word(hay: &str, word: &str) -> bool {
    let bytes = hay.as_bytes();
    for off in find_all(hay, word) {
        let before_ok = off == 0 || {
            let b = bytes[off - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = off + word.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// `name!(` as a macro invocation (not `debug_name!` etc.).
fn contains_macro(hay: &str, name: &str) -> bool {
    let pat = format!("{name}!");
    let bytes = hay.as_bytes();
    for off in find_all(hay, &pat) {
        let before_ok = off == 0 || {
            let b = bytes[off - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let after = off + pat.len();
        let after_ok = matches!(bytes.get(after), Some(b'(') | Some(b'[') | Some(b'{'));
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Whether the `.expect(` at (`line_idx`, ending at `col`) takes a string
/// literal starting with the invariant prefix. Looks on the same line first,
/// then at the next line (for rustfmt-wrapped arguments).
fn expect_is_invariant(view: &FileView, line_idx: usize, col: usize) -> bool {
    match first_literal_after(view, line_idx, col) {
        Some(lit) => lit.value.to_ascii_lowercase().starts_with(INVARIANT_PREFIX),
        None => false,
    }
}

/// First string literal at or after (`line_idx`, `col`), searching this line
/// and the next (arguments wrapped by rustfmt land on the following line).
fn first_literal_after(view: &FileView, line_idx: usize, col: usize) -> Option<&StrLit> {
    let line = line_idx + 1;
    view.strings
        .iter()
        .find(|s| (s.line == line && s.col >= col) || s.line == line + 1)
}

/// Like [`first_literal_after`], but only when the literal is *directly* the
/// argument — nothing but whitespace between the open paren and the opening
/// quote (possibly wrapped to the next line). A computed name such as
/// `.histogram(&format!(..))` yields `None`: it cannot be statically checked.
fn direct_literal_arg(view: &FileView, line_idx: usize, col: usize) -> Option<&StrLit> {
    let lit = first_literal_after(view, line_idx, col)?;
    let this = &view.code[line_idx];
    if lit.line == line_idx + 1 {
        let between = this.get(col..lit.col)?;
        between.trim().is_empty().then_some(lit)
    } else {
        let rest_blank = this.get(col..).is_some_and(|r| r.trim().is_empty());
        let lead_blank = view
            .code
            .get(line_idx + 1)
            .and_then(|l| l.get(..lit.col))
            .is_some_and(|r| r.trim().is_empty());
        (rest_blank && lead_blank).then_some(lit)
    }
}

/// Enforces `#[must_use]` on pure `pub fn`s returning the bit-kernel types.
fn lint_must_use(rel: &str, view: &FileView, out: &mut Vec<Diagnostic>) {
    // Track the inherent-impl type so `-> Self` resolves.
    let mut impl_stack: Vec<(i64, Option<String>)> = Vec::new();
    let mut depth = 0i64;
    let n = view.code.len();
    let mut idx = 0usize;
    while idx < n {
        let code = &view.code[idx];
        let exempt = view.exempt.get(idx).copied().unwrap_or(false);
        if !exempt {
            if let Some(impl_ty) = parse_impl_header(code) {
                impl_stack.push((depth, impl_ty));
            }
            // Inside a trait impl (`impl Trait for Type`) `#[must_use]` on a
            // method is ineffective — the attribute belongs on the trait.
            let in_trait_impl = matches!(impl_stack.last(), Some((_, None)));
            if let Some(col) = find_pub_fn(code).filter(|_| !in_trait_impl) {
                // Collect the signature until its body opens (or `;`).
                let mut sig = String::new();
                let mut j = idx;
                loop {
                    let part = if j == idx {
                        &code[col..]
                    } else {
                        &view.code[j]
                    };
                    if let Some(stop) = sig_end(part) {
                        sig.push_str(&part[..stop]);
                        break;
                    }
                    sig.push_str(part);
                    sig.push(' ');
                    j += 1;
                    if j >= n || j > idx + 12 {
                        break;
                    }
                }
                let self_ty = impl_stack
                    .last()
                    .and_then(|(_, t)| t.as_deref())
                    .unwrap_or("");
                if let Some(ret) = signature_return_type(&sig) {
                    let resolved = if ret == "Self" { self_ty } else { ret.as_str() };
                    let last_seg = resolved.rsplit("::").next().unwrap_or(resolved);
                    if MUST_USE_TYPES.contains(&last_seg)
                        && !preceding_attrs_have_must_use(view, idx)
                    {
                        out.push(Diagnostic {
                            path: rel.to_owned(),
                            line: idx + 1,
                            rule: RULE_MUST_USE,
                            message: format!(
                                "pub fn returning `{last_seg}` must be `#[must_use]`: \
                                 dropping it silently discards a computed mask/table"
                            ),
                        });
                    }
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    while matches!(impl_stack.last(), Some((d, _)) if *d >= depth) {
                        impl_stack.pop();
                    }
                }
                _ => {}
            }
        }
        idx += 1;
    }
}

/// Parses `impl [<..>] Type {` headers of inherent impls (trait impls —
/// `impl Trait for Type` — return `None`: attributes there are ineffective).
fn parse_impl_header(code: &str) -> Option<Option<String>> {
    let t = code.trim_start();
    if !(t.starts_with("impl ") || t.starts_with("impl<")) {
        return None;
    }
    if contains_word(t, "for") {
        return Some(None);
    }
    let mut rest = &t[4..];
    if rest.starts_with('<') {
        let mut d = 0i32;
        for (i, c) in rest.char_indices() {
            match c {
                '<' => d += 1,
                '>' => {
                    d -= 1;
                    if d == 0 {
                        rest = &rest[i + 1..];
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let ty: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    if ty.is_empty() {
        Some(None)
    } else {
        Some(Some(ty))
    }
}

/// Column of a `pub fn` item start on this line, if any. `pub(crate)` and
/// other restricted visibilities are not part of the public surface.
fn find_pub_fn(code: &str) -> Option<usize> {
    for off in find_all(code, "pub fn ") {
        let before_ok = off == 0 || !code.as_bytes()[off - 1].is_ascii_alphanumeric();
        if before_ok {
            return Some(off);
        }
    }
    None
}

/// Offset where a signature's body (or `;`) starts, if on this fragment.
fn sig_end(part: &str) -> Option<usize> {
    part.find(['{', ';'])
}

/// The return type of a collected signature, if it has one: the text after
/// the last top-level `->`, up to a `where` clause, trimmed.
fn signature_return_type(sig: &str) -> Option<String> {
    let bytes = sig.as_bytes();
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut arrow_at = None;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                if paren == 0 && bracket == 0 {
                    arrow_at = Some(i + 2);
                }
                i += 2;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    let start = arrow_at?;
    let mut ret = sig[start..].trim();
    if let Some(w) = ret.find(" where ") {
        ret = ret[..w].trim();
    }
    if ret.ends_with("where") {
        ret = ret[..ret.len() - 5].trim();
    }
    let ret: String = ret.split_whitespace().collect::<Vec<_>>().join("");
    if ret.is_empty() {
        None
    } else {
        Some(ret)
    }
}

/// Whether the attribute lines immediately above `idx` include `must_use`.
fn preceding_attrs_have_must_use(view: &FileView, idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = view.code[j].trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("#[") || t.starts_with("#!") || t.ends_with(']') && t.contains("#[") {
            if t.contains("must_use") {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

/// Reads the metric-name registry: every string literal in the file.
///
/// # Errors
/// Returns an error when the file cannot be read.
pub fn load_registry(path: &Path) -> Result<Vec<String>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read metric registry {}: {e}", path.display()))?;
    let view = preprocess(&src);
    Ok(view.strings.into_iter().map(|s| s.value).collect())
}

/// One allowlist entry: up to `count` violations of `rule` in `path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier.
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Maximum number of tolerated violations.
    pub count: usize,
}

/// Parses the allowlist format: `rule path count` per line, `#` comments.
///
/// # Errors
/// Returns a message naming the malformed line.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "allowlist line {}: expected `rule path count`, got {line:?}",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count {count:?}", i + 1))?;
        out.push(AllowEntry {
            rule: rule.to_owned(),
            path: path.to_owned(),
            count,
        });
    }
    Ok(out)
}

/// Result of a lint run after the allowlist is applied.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations not absorbed by the allowlist — each fails the run.
    pub diagnostics: Vec<Diagnostic>,
    /// `(rule, path, count)` groups silenced by the allowlist.
    pub suppressed: Vec<(String, String, usize)>,
    /// Allowlist entries whose budget exceeds the observed count — the
    /// ratchet should be tightened (warning, not failure).
    pub stale: Vec<AllowEntry>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Outcome {
    /// True when no unsuppressed violations remain.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Applies the allowlist: groups diagnostics per `(rule, path)` and keeps a
/// group only when it exceeds its budget (then *all* its diagnostics are
/// reported, so the offending lines are visible).
pub fn apply_allowlist(diags: Vec<Diagnostic>, allow: &[AllowEntry]) -> Outcome {
    let mut groups: BTreeMap<(String, String), Vec<Diagnostic>> = BTreeMap::new();
    for d in diags {
        groups
            .entry((d.rule.to_owned(), d.path.clone()))
            .or_default()
            .push(d);
    }
    let mut out = Outcome::default();
    for entry in allow {
        let observed = groups
            .get(&(entry.rule.clone(), entry.path.clone()))
            .map_or(0, Vec::len);
        if observed < entry.count {
            out.stale.push(entry.clone());
        }
    }
    for ((rule, path), ds) in groups {
        let budget = allow
            .iter()
            .find(|e| e.rule == rule && e.path == path)
            .map_or(0, |e| e.count);
        if ds.len() <= budget {
            out.suppressed.push((rule, path, ds.len()));
        } else {
            out.diagnostics.extend(ds);
        }
    }
    out.diagnostics.sort();
    out
}

/// Collects `.rs` files under `roots`, skipping test/bench/example trees and
/// build/vendor directories.
pub fn collect_files(roots: &[PathBuf]) -> Vec<PathBuf> {
    const SKIP_DIRS: &[&str] = &["tests", "benches", "examples", "target", "vendor", ".git"];
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = roots.to_vec();
    while let Some(p) = stack.pop() {
        if p.is_dir() {
            let Ok(rd) = std::fs::read_dir(&p) else {
                continue;
            };
            for entry in rd.flatten() {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if path.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_ref()) {
                        stack.push(path);
                    }
                } else if name.ends_with(".rs") {
                    files.push(path);
                }
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            files.push(p);
        }
    }
    files.sort();
    files
}

/// Workspace-relative path with forward slashes (falls back to the full
/// path when `path` is not under `root`).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the linter over `roots` (workspace-relative scoping against `root`),
/// with `registry` metric names, `seams` cache-seam-exempt function names,
/// and `allow` entries.
///
/// # Errors
/// Returns a message when a source file cannot be read.
pub fn run(
    root: &Path,
    roots: &[PathBuf],
    scope: Scope,
    registry: &[String],
    seams: &[String],
    allow: &[AllowEntry],
) -> Result<Outcome, String> {
    let files = collect_files(roots);
    let mut diags = Vec::new();
    let n_files = files.len();
    for file in files {
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = rel_path(root, &file);
        let view = preprocess(&src);
        diags.extend(lint_file(&rel, &view, registry, seams, scope));
    }
    let mut outcome = apply_allowlist(diags, allow);
    outcome.files_scanned = n_files;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let view = preprocess(src);
        lint_file("f.rs", &view, &[], &[], Scope { explicit: true })
    }

    #[test]
    fn strips_comments_and_strings() {
        let v = preprocess("let x = \"a.unwrap()\"; // .unwrap()\n/* panic!( */ let y = 1;\n");
        assert!(!v.code[0].contains("unwrap"));
        assert!(!v.code[1].contains("panic"));
        assert_eq!(v.strings.len(), 1);
        assert_eq!(v.strings[0].value, "a.unwrap()");
    }

    #[test]
    fn raw_strings_and_chars() {
        let v = preprocess("let s = r#\"x.unwrap()\"#; let c = '\\n'; let l: &'static str = s;");
        assert!(!v.code[0].contains("unwrap"));
        assert_eq!(v.strings[0].value, "x.unwrap()");
        assert!(v.code[0].contains("'static"));
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn b() { y.unwrap(); }\n}\nfn c() { z.unwrap(); }\n";
        let ds = lint_src(src);
        let lines: Vec<usize> = ds
            .iter()
            .filter(|d| d.rule == RULE_NO_PANIC)
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![1, 6]);
    }

    #[test]
    fn expect_invariant_prefix_is_allowed() {
        let ok = "fn a() { x.expect(\"invariant: width checked above\"); }";
        assert!(lint_src(ok).is_empty());
        let bad = "fn a() { x.expect(\"oops\"); }";
        assert_eq!(lint_src(bad).len(), 1);
        let none = "fn a() { x.expect(msg); }";
        assert_eq!(lint_src(none).len(), 1);
    }

    #[test]
    fn panic_and_print_and_instant_flagged() {
        let ds = lint_src("fn a() { panic!(\"x\"); println!(\"y\"); let t = Instant::now(); }");
        let rules: Vec<&str> = ds.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_NO_PANIC));
        assert!(rules.contains(&RULE_NO_PRINT));
        assert!(rules.contains(&RULE_NO_INSTANT));
        // `debug_assert!`-style names must not match the panic macro rule
        assert!(lint_src("fn a() { debug_assert!(true, \"m\"); }").is_empty());
    }

    #[test]
    fn metric_literal_checked_against_registry() {
        let view = preprocess(
            "fn a() { ins.counter(\"known.name\").inc(); ins.histogram(\"bad.name\"); }",
        );
        let reg = vec!["known.name".to_owned()];
        let ds = lint_file("f.rs", &view, &reg, &[], Scope { explicit: true });
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("bad.name"));
    }

    #[test]
    fn computed_metric_name_is_skipped() {
        let view = preprocess("fn a() { ins.histogram(&format!(\"dyn.{x}\", x = 1)).span(); }");
        assert!(lint_file("f.rs", &view, &[], &[], Scope { explicit: true }).is_empty());
    }

    #[test]
    fn metric_literal_on_next_line_checked() {
        let view = preprocess("fn a() {\n    ins.counter(\n        \"bad.name\",\n    );\n}");
        let ds = lint_file("f.rs", &view, &[], &[], Scope { explicit: true });
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn must_use_flags_missing_attribute_and_resolves_self() {
        let src = "impl BitVec {\n    pub fn and(&self, o: &BitVec) -> BitVec { o.clone() }\n    pub fn zeros(n: usize) -> Self { todo() }\n    #[must_use]\n    pub fn ones(n: usize) -> Self { todo() }\n    pub fn len(&self) -> usize { 0 }\n}\n";
        let ds = lint_src(src);
        let lines: Vec<usize> = ds
            .iter()
            .filter(|d| d.rule == RULE_MUST_USE)
            .map(|d| d.line)
            .collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn must_use_skips_trait_impls_and_wrapped_returns() {
        let src = "impl Clone for BitVec {\n    pub fn and(&self) -> BitVec { todo() }\n}\npub fn f() -> Result<BitVec, E> { todo() }\n";
        assert!(lint_src(src).is_empty());
    }

    #[test]
    fn must_use_handles_multiline_signatures() {
        let src = "impl GroupTable {\n    pub fn build(\n        g: &G,\n        attrs: &[A],\n    ) -> GroupTable {\n        todo()\n    }\n}\n";
        let ds = lint_src(src);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].line, 2);
    }

    #[test]
    fn allowlist_budget_and_staleness() {
        let diags = vec![
            Diagnostic {
                path: "a.rs".into(),
                line: 1,
                rule: RULE_NO_PANIC,
                message: "m".into(),
            },
            Diagnostic {
                path: "a.rs".into(),
                line: 2,
                rule: RULE_NO_PANIC,
                message: "m".into(),
            },
        ];
        let allow = parse_allowlist("no-panic a.rs 2\nno-panic b.rs 3\n").unwrap();
        let out = apply_allowlist(diags.clone(), &allow);
        assert!(out.is_clean());
        assert_eq!(out.suppressed, vec![("no-panic".into(), "a.rs".into(), 2)]);
        assert_eq!(out.stale.len(), 1); // b.rs has no violations left

        // over budget: the whole group is reported
        let tight = parse_allowlist("no-panic a.rs 1\n").unwrap();
        let out = apply_allowlist(diags, &tight);
        assert_eq!(out.diagnostics.len(), 2);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("# fine\nno-panic a.rs 1\n").is_ok());
        assert!(parse_allowlist("no-panic a.rs\n").is_err());
        assert!(parse_allowlist("no-panic a.rs many\n").is_err());
    }

    #[test]
    fn scope_prefixes() {
        let s = Scope { explicit: false };
        assert!(s.applies(RULE_NO_PANIC, "crates/columnar/src/bitset.rs"));
        assert!(s.applies(RULE_NO_PANIC, "crates/cli/src/main.rs"));
        assert!(s.applies(RULE_NO_PANIC, "crates/server/src/lib.rs"));
        assert!(!s.applies(RULE_NO_PRINT, "crates/server/src/main.rs"));
        assert!(!s.applies(RULE_NO_PANIC, "crates/bench/src/report.rs"));
        assert!(!s.applies(RULE_NO_INSTANT, "crates/instrument/src/lib.rs"));
        assert!(s.applies(RULE_NO_INSTANT, "crates/bench/src/report.rs"));
        assert!(s.applies(RULE_MUST_USE, "crates/core/src/ops.rs"));
        assert!(!s.applies(RULE_MUST_USE, "crates/cli/src/main.rs"));
        assert!(s.applies(RULE_METRIC_REGISTRY, "crates/bench/src/bin/exp_explore.rs"));
        // The race crate implements orderings under a virtual-atomics
        // abstraction; every other crate must justify each one.
        assert!(s.applies(RULE_ATOMIC_ORDERING, "crates/core/src/explore/shard.rs"));
        assert!(s.applies(RULE_ATOMIC_ORDERING, "crates/instrument/src/lib.rs"));
        assert!(!s.applies(RULE_ATOMIC_ORDERING, "crates/race/src/check.rs"));
        assert!(s.applies(RULE_LOCK_SCOPE, "crates/server/src/lib.rs"));
        assert!(s.applies(RULE_LOCK_SCOPE, "crates/race/src/check.rs"));
        assert!(s.applies(RULE_CACHE_SEAM, "crates/temporal-graph/src/builder.rs"));
        assert!(!s.applies(RULE_CACHE_SEAM, "crates/core/src/ops.rs"));
        assert!(s.applies(RULE_ENV_READ, "crates/core/src/ops.rs"));
    }

    #[test]
    fn lock_guard_binding_recognizes_guards_and_idioms() {
        assert_eq!(
            lock_guard_binding("let guard = self.state.lock().unwrap();"),
            Some("guard".to_owned())
        );
        assert_eq!(
            lock_guard_binding("let mut g = m.lock().unwrap_or_else(|e| e.into_inner());"),
            Some("g".to_owned())
        );
        // Clone-and-release consumes the guard within the statement.
        assert_eq!(
            lock_guard_binding("let v = m.lock().unwrap().clone();"),
            None
        );
        assert_eq!(
            lock_guard_binding("let v = m.lock().unwrap().current();"),
            None
        );
        // Stdio locks are not mutexes.
        assert_eq!(lock_guard_binding("let h = stdin.lock();"), None);
        // No lock call at all.
        assert_eq!(lock_guard_binding("let x = compute();"), None);
    }

    #[test]
    fn atomic_ordering_sees_wrapped_arguments() {
        let src = "fn a(f: &AtomicU64) {\n    f.store(\n        1,\n        Ordering::Release,\n    );\n}";
        let view = preprocess(src);
        // The ordering sits two lines below the op: found, but unjustified.
        let ds = lint_file("f.rs", &view, &[], &[], Scope { explicit: true });
        assert_eq!(ds.len(), 1);
        assert!(ds[0].message.contains("Ordering::Release"));
    }
}
