//! CLI for `tempo-lint`.
//!
//! Usage: `cargo run -p tempo-lint [-- [--allowlist FILE] [--registry FILE] [--seams FILE] [PATHS...]]`
//!
//! With no `PATHS`, lints the whole workspace (crate `src/` trees, scoped
//! per rule). With explicit `PATHS` (files or directories), every rule is
//! applied to every file — this mode drives the self-test fixtures.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use tempo_lint::{parse_allowlist, run, Scope};

fn main() -> ExitCode {
    let root: PathBuf = match std::env::var("TEMPO_LINT_ROOT") {
        Ok(v) => PathBuf::from(v),
        // crates/lint -> crates -> workspace root
        Err(_) => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(".")),
    };

    let mut allowlist_path = root.join("crates/lint/allowlist.txt");
    let mut registry_path = root.join("crates/instrument/src/names.rs");
    let mut seams_path = root.join("crates/temporal-graph/src/seams.rs");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = PathBuf::from(v),
                None => return usage("--allowlist needs a file argument"),
            },
            "--registry" => match args.next() {
                Some(v) => registry_path = PathBuf::from(v),
                None => return usage("--registry needs a file argument"),
            },
            "--seams" => match args.next() {
                Some(v) => seams_path = PathBuf::from(v),
                None => return usage("--seams needs a file argument"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: tempo-lint [--allowlist FILE] [--registry FILE] [--seams FILE] [PATHS...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other:?}"));
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let explicit = !paths.is_empty();
    let scope = Scope { explicit };
    let roots: Vec<PathBuf> = if explicit {
        paths
    } else {
        let mut roots = vec![root.join("src")];
        match std::fs::read_dir(root.join("crates")) {
            Ok(rd) => {
                for entry in rd.flatten() {
                    let src = entry.path().join("src");
                    if src.is_dir() {
                        roots.push(src);
                    }
                }
            }
            Err(e) => {
                eprintln!(
                    "tempo-lint: cannot list {}: {e}",
                    root.join("crates").display()
                );
                return ExitCode::from(2);
            }
        }
        roots
    };

    let registry = match tempo_lint::load_registry(&registry_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tempo-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // The seam registry exempts named mutators from the cache-seam rule.
    // Fixture mode runs without it so seeded violations always surface.
    let seams = if explicit {
        Vec::new()
    } else {
        match tempo_lint::load_registry(&seams_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tempo-lint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    // The allowlist only applies to workspace mode; explicit fixture paths
    // are judged raw so seeded violations always surface.
    let allow = if explicit {
        Vec::new()
    } else {
        match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => match parse_allowlist(&text) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("tempo-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(_) => Vec::new(), // missing allowlist = empty budget everywhere
        }
    };

    match run(&root, &roots, scope, &registry, &seams, &allow) {
        Ok(outcome) => {
            for d in &outcome.diagnostics {
                println!("{d}");
            }
            for entry in &outcome.stale {
                eprintln!(
                    "tempo-lint: warning: stale allowlist entry `{} {} {}` — \
                     fewer violations remain, tighten the budget",
                    entry.rule, entry.path, entry.count
                );
            }
            if outcome.is_clean() {
                let suppressed: usize = outcome.suppressed.iter().map(|(_, _, n)| n).sum();
                eprintln!(
                    "tempo-lint: {} files clean ({} allowlisted sites)",
                    outcome.files_scanned, suppressed
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "tempo-lint: {} violation(s) in {} files scanned",
                    outcome.diagnostics.len(),
                    outcome.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("tempo-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tempo-lint: {msg}");
    eprintln!("usage: tempo-lint [--allowlist FILE] [--registry FILE] [--seams FILE] [PATHS...]");
    ExitCode::from(2)
}
