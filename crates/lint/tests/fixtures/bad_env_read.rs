//! Seeded `env-read` violation: configuration read outside binary startup.
pub fn scale() -> u64 {
    std::env::var("GRAPHTEMPO_SCALE").map_or(1, |v| v.len() as u64)
}
