//! Seeded `no-instant` violation: direct wall-clock read.

use std::time::Instant;

pub fn times_itself() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
