//! Seeded `no-print` violations in library-style code.

pub fn chatty(n: usize) {
    println!("processed {n} rows");
    if n == 0 {
        eprintln!("warning: empty input");
    }
}
