//! Seeded `metric-registry` violation: a name not in the central registry.

pub fn records_a_typo() {
    let ins = tempo_instrument::global();
    ins.counter("explore.evaluatoins").inc();
}
