//! Seeded `atomic-ordering` violations: unjustified and implicit orderings.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified_relaxed(flag: &AtomicU64) {
    flag.store(1, Ordering::Relaxed);
}

pub fn unjustified_release(flag: &AtomicU64) -> u64 {
    flag.fetch_add(1, Ordering::Release)
}

pub fn implicit_ordering(flag: &AtomicU64, ord: Ordering) -> u64 {
    flag.load(ord)
}

pub fn justified(flag: &AtomicU64) -> u64 {
    // ordering: acquires the value published by `unjustified_relaxed`.
    flag.load(Ordering::Acquire)
}
