//! Seeded `no-panic` violations: unwrap, undocumented expect, panic!.

pub fn takes_the_shortcut(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn vague_expect(x: Option<u32>) -> u32 {
    x.expect("should not happen")
}

pub fn gives_up(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn documented_ok(x: Option<u32>) -> u32 {
    // This one is fine and must NOT be flagged.
    x.expect("invariant: caller checked is_some above")
}
