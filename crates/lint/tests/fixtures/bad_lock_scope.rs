//! Seeded `lock-scope` violations: blocking calls under a live guard.
use std::sync::Mutex;

pub fn blocks_under_guard(m: &Mutex<Vec<u64>>) {
    let guard = m.lock().unwrap_or_else(|e| e.into_inner());
    let t = std::thread::spawn(|| 1u64);
    let _ = t.join();
    drop(guard);
}

pub fn io_under_guard(m: &Mutex<String>, w: &mut impl std::io::Write) {
    let held = m.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(held.as_bytes());
    let _ = w.flush();
    drop(held);
}

pub fn clone_and_release(m: &Mutex<Vec<u64>>) -> Vec<u64> {
    let copy = m.lock().unwrap_or_else(|e| e.into_inner()).clone();
    copy
}
