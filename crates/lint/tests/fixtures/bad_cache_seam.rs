//! Seeded `cache-seam` violation: a presence-matrix mutation that leaves
//! the derived index caches stale.

impl Graph {
    pub fn flip(&mut self, i: usize, t: usize) {
        self.node_presence.set(i, t);
    }

    pub fn flip_and_invalidate(&mut self, i: usize, t: usize) {
        self.edge_presence.set(i, t);
        self.invalidate_index_caches();
    }
}
