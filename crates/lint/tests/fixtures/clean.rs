//! A file every rule accepts: typed errors, registered metric names,
//! documented invariants, annotated returns.

pub struct BitVec;

impl BitVec {
    #[must_use]
    pub fn complement(&self) -> BitVec {
        BitVec
    }
}

pub fn lookup(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_owned())
}

pub fn documented(x: Option<u32>) -> u32 {
    x.expect("invariant: validated by lookup above")
}

pub fn records() {
    let ins = tempo_instrument::global();
    ins.counter("explore.evaluations").inc();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        // even panic! is fine here
        if v.is_none() {
            panic!("unreachable");
        }
    }
}
