//! Seeded `must-use` violation: pub fn returning a kernel type without
//! `#[must_use]`.

pub struct BitVec;

impl BitVec {
    pub fn complement(&self) -> BitVec {
        BitVec
    }

    #[must_use]
    pub fn annotated(&self) -> Self {
        BitVec
    }
}
