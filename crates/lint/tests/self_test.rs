//! Self-test: the lint binary must fail (non-zero exit, `file:line`
//! diagnostics) on each seeded fixture violation, accept the clean fixture,
//! and pass the real workspace — the PR's acceptance criterion, enforced
//! continuously.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(paths: &[PathBuf]) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tempo-lint"));
    cmd.args(paths);
    let out = cmd.output().expect("lint binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Asserts the fixture fails with the expected rule at the expected lines.
fn assert_fails(name: &str, rule: &str, lines: &[usize]) {
    let path = fixture(name);
    let (code, stdout, stderr) = run_lint(std::slice::from_ref(&path));
    assert_eq!(
        code, 1,
        "{name} should fail with exit 1 (stdout: {stdout}; stderr: {stderr})"
    );
    for &line in lines {
        let needle = format!(":{line}: [{rule}]");
        assert!(
            stdout.lines().any(|l| l.contains(&needle)),
            "{name} should report `{needle}`, got:\n{stdout}"
        );
    }
    let flagged = stdout
        .lines()
        .filter(|l| l.contains(&format!("[{rule}]")))
        .count();
    assert_eq!(
        flagged,
        lines.len(),
        "{name} should flag exactly {} `{rule}` sites, got:\n{stdout}",
        lines.len()
    );
}

#[test]
fn bad_panics_fixture_fails() {
    // line 4: unwrap, line 8: vague expect, line 13: panic! — the
    // `invariant:`-documented expect on line 19 must NOT be flagged.
    assert_fails("bad_panics.rs", "no-panic", &[4, 8, 13]);
}

#[test]
fn bad_instant_fixture_fails() {
    assert_fails("bad_instant.rs", "no-instant", &[3, 6]);
}

#[test]
fn bad_print_fixture_fails() {
    assert_fails("bad_print.rs", "no-print", &[4, 6]);
}

#[test]
fn bad_metric_fixture_fails() {
    assert_fails("bad_metric.rs", "metric-registry", &[5]);
}

#[test]
fn bad_must_use_fixture_fails() {
    assert_fails("bad_must_use.rs", "must-use", &[7]);
}

#[test]
fn bad_atomic_fixture_fails() {
    // lines 5 and 9: explicit orderings without a `// ordering:` rationale;
    // line 13: ordering passed as a variable — the commented Acquire on
    // line 18 must NOT be flagged.
    assert_fails("bad_atomic.rs", "atomic-ordering", &[5, 9, 13]);
}

#[test]
fn bad_lock_scope_fixture_fails() {
    // spawn/join and write_all/flush while a guard is live; the
    // clone-and-release idiom on line 19 must NOT be flagged.
    assert_fails("bad_lock_scope.rs", "lock-scope", &[6, 7, 13, 14]);
}

#[test]
fn bad_cache_seam_fixture_fails() {
    // `flip` mutates node_presence without invalidating; the sibling that
    // calls `invalidate_index_caches()` must NOT be flagged.
    assert_fails("bad_cache_seam.rs", "cache-seam", &[6]);
}

#[test]
fn bad_env_read_fixture_fails() {
    assert_fails("bad_env_read.rs", "env-read", &[3]);
}

#[test]
fn clean_fixture_passes() {
    let (code, stdout, _) = run_lint(&[fixture("clean.rs")]);
    assert_eq!(code, 0, "clean fixture should pass, got:\n{stdout}");
}

#[test]
fn directory_of_fixtures_fails_with_many_diagnostics() {
    let (code, stdout, _) = run_lint(&[fixture("")]);
    assert_eq!(code, 1);
    // at least one diagnostic from each seeded rule
    for rule in [
        "no-panic",
        "no-instant",
        "no-print",
        "metric-registry",
        "must-use",
        "atomic-ordering",
        "lock-scope",
        "cache-seam",
        "env-read",
    ] {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "directory scan should surface `{rule}`, got:\n{stdout}"
        );
    }
}

#[test]
fn workspace_is_clean() {
    let (code, stdout, stderr) = run_lint(&[]);
    assert_eq!(
        code, 0,
        "the workspace must lint clean\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}
