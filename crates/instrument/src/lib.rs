//! Zero-dependency, thread-safe metrics registry for the GraphTempo workspace.
//!
//! Production temporal-graph engines treat measurement as a first-class
//! subsystem: optimization claims are only falsifiable when the hot paths
//! report what they did (evaluations, prunes, cache hits, bytes moved) and
//! how long it took. This crate provides that substrate with nothing beyond
//! `std`:
//!
//! - [`Counter`] — monotone `u64` event counter (relaxed atomics).
//! - [`Gauge`] — signed instantaneous value (e.g. live cache entries).
//! - [`Histogram`] — log₂-bucketed latency histogram over nanoseconds with
//!   sum/count/min/max and quantile estimates.
//! - [`SpanGuard`] — RAII timer that records its elapsed time into a
//!   [`Histogram`] on drop.
//! - [`Registry`] — a named collection of the above, handing out shared
//!   [`Arc`] handles so hot loops never touch the registry lock.
//!
//! A process-wide registry is available through [`global()`]; the
//! instrumented crates (`tempo-graph`, `graphtempo`, the CLI, the benches)
//! all record into it. Recording can be switched off wholesale with
//! [`set_enabled`] — the disabled path is a single relaxed atomic load, so
//! instrumentation can stay compiled into release binaries.
//!
//! # Example
//!
//! ```
//! use tempo_instrument::global;
//!
//! let evals = global().counter("example.evaluations");
//! let lat = global().histogram("example.eval_ns");
//! for _ in 0..3 {
//!     let _span = lat.span();
//!     evals.inc();
//! }
//! assert!(global().snapshot().counter("example.evaluations") >= 3);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub mod names;
use std::time::Instant;

/// Global on/off switch for all recording.
///
/// Enabled by default; the disabled path costs one relaxed load per call
/// site, which keeps the overhead of compiled-in instrumentation within
/// measurement noise (see the `ablation_instrument_overhead` bench).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all metric recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Returns whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Returns the process-wide registry shared by all instrumented crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Monotone event counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization primitives.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Signed instantaneous value (set/add), e.g. live cache entries.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: index `i ≥ 1` holds values in `[2^(i-1), 2^i)`,
/// index `0` holds zero. Covers the full `u64` range.
const BUCKETS: usize = 65;

/// Log₂-bucketed histogram over nanosecond samples.
///
/// Recording is lock-free: one relaxed `fetch_add` into the bucket plus
/// sum/count/min/max updates. Quantiles are estimated from bucket upper
/// bounds, so they carry at most a 2× quantization error — plenty for the
/// "where does the time go" questions this crate answers.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample (0 for 0, else `⌈log₂(v+1)⌉`).
#[inline]
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records into this histogram on drop.
    ///
    /// When recording is disabled the guard never reads the clock.
    #[inline]
    pub fn span(self: &Arc<Self>) -> SpanGuard {
        SpanGuard {
            hist: Arc::clone(self),
            start: enabled().then(Instant::now),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Resets all state.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Immutable point-in-time view.
    ///
    /// `record` updates its fields with independent relaxed atomics, so a
    /// snapshot racing in-flight recordings cannot be exact. The tolerance
    /// is: the view may *lag* concurrent recordings by a few samples, but it
    /// is always self-consistent — `count` equals the bucket totals,
    /// `min <= max`, `sum` (and hence [`HistogramSnapshot::mean`]) lies in
    /// `[min * count, max * count]`, and an empty view is all zeros. In a
    /// quiescent histogram every clamp is a no-op and the values are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // derive the sample count from the buckets themselves so it can
        // never disagree with them
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                buckets: Vec::new(),
            };
        }
        let quantile = |q: f64| -> u64 {
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(BUCKETS - 1)
        };
        // a record() caught between its bucket update and its min/max/sum
        // updates can leave min at its sentinel (u64::MAX), max behind the
        // buckets, or sum lagging; clamp into the possible range
        let max = self.max.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed).min(max);
        let sum = self
            .sum
            .load(Ordering::Relaxed)
            .clamp(min.saturating_mul(count), max.saturating_mul(count));
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets: counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_upper(i), c))
                .collect(),
        }
    }
}

/// RAII timer: records the elapsed nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Drops the guard without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

/// A wall-clock budget: a start instant plus a duration limit.
///
/// Lives here because the workspace's `no-instant` lint confines raw
/// [`Instant`] reads to this crate; budget-carrying layers (the explore
/// engine, the server's request limits) consume deadlines through this
/// type. Stored as start + limit rather than an end instant so arbitrarily
/// large limits cannot overflow the platform clock.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    start: Instant,
    limit: std::time::Duration,
}

impl Deadline {
    /// A deadline `limit` from now.
    #[must_use]
    pub fn after(limit: std::time::Duration) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// A deadline `ms` milliseconds from now.
    #[must_use]
    pub fn after_millis(ms: u64) -> Self {
        Self::after(std::time::Duration::from_millis(ms))
    }

    /// True once the limit has elapsed. A zero limit is expired immediately.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }

    /// The configured limit in milliseconds (saturating).
    #[must_use]
    pub fn limit_millis(&self) -> u64 {
        u64::try_from(self.limit.as_millis()).unwrap_or(u64::MAX)
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics.
///
/// Lookup (`counter`/`gauge`/`histogram`) takes a short mutex; hot paths
/// should resolve their handles once (at construction time) and record
/// through the returned [`Arc`]s, which never touch the lock.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Locks the metric map, recovering from poisoning: the map is only ever
/// mutated by infallible insertions, so a panic while the lock was held
/// cannot have left it inconsistent.
fn lock_registry(
    m: &Mutex<BTreeMap<String, Metric>>,
) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = lock_registry(&self.metrics);
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = lock_registry(&self.metrics);
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = lock_registry(&self.metrics);
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Resets every registered metric to its initial state.
    ///
    /// Handles held by instrumented code stay valid; only the values clear.
    pub fn reset(&self) {
        let m = lock_registry(&self.metrics);
        for metric in m.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Takes a consistent-enough point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let m = lock_registry(&self.metrics);
        let mut snap = Snapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Point-in-time view of one histogram. All values are nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Estimated median (bucket upper bound).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, i64)>,
    /// Histogram views.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Value of a counter by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram view by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Human-readable multi-line dump (one metric per line).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter   {name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge     {name} = {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {name}: count={} sum={}ns mean={:.0}ns min={}ns p50~{}ns p99~{}ns max={}ns\n",
                h.count,
                h.sum,
                h.mean(),
                h.min,
                h.p50,
                h.p99,
                h.max,
            ));
        }
        out
    }

    /// Renders the snapshot as a self-contained JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), v));
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|(le, c)| format!("{{\"le\": {le}, \"count\": {c}}}"))
                .collect();
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [{}]}}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99,
                buckets.join(", ")
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4), the shape scraped from `tempo-server`'s `metrics`
    /// endpoint.
    ///
    /// Metric names are prefixed with `graphtempo_` and sanitized (every
    /// character outside `[a-zA-Z0-9_:]` becomes `_`, so the registry's
    /// dotted names map 1:1). Counters gain the conventional `_total`
    /// suffix; histograms emit cumulative `_bucket{le="…"}` series ending
    /// in `le="+Inf"`, plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (le, c) in &h.buckets {
                cumulative += c;
                // the top bucket's bound is the u64 ceiling, i.e. +Inf
                if *le == u64::MAX {
                    continue;
                }
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{n}_bucket{{le=\"+Inf\"}} {}\n{n}_sum {}\n{n}_count {}\n",
                h.count, h.sum, h.count
            ));
        }
        out
    }
}

/// Maps a registry metric name onto the Prometheus name charset:
/// `graphtempo_` prefix, every character outside `[a-zA-Z0-9_:]` replaced
/// with `_`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 11);
    out.push_str("graphtempo_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::RwLock;

    /// Tests that record hold a read guard; the test that flips the global
    /// enabled flag holds the write guard, so they never interleave.
    fn gate() -> &'static RwLock<()> {
        static GATE: OnceLock<RwLock<()>> = OnceLock::new();
        GATE.get_or_init(|| RwLock::new(()))
    }

    #[test]
    fn counter_and_gauge_basics() {
        let _g = gate().read().unwrap();
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // every sample lands in the bucket whose upper bound covers it
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "v={v}");
        }
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let _g = gate().read().unwrap();
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // median sample is 3, bucket [2,3] has upper bound 3
        assert_eq!(s.p50, 3);
        // p99 lands in the 1000 bucket (upper bound 1023)
        assert_eq!(s.p99, 1023);
        assert!((s.mean() - 221.2).abs() < 1e-9);
        let total: u64 = s.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        h.reset();
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().min, 0);
    }

    #[test]
    fn span_guard_records_on_drop_and_cancel_skips() {
        let _g = gate().read().unwrap();
        let r = Registry::new();
        let h = r.histogram("t.span");
        {
            let _g = h.span();
        }
        assert_eq!(h.count(), 1);
        h.span().cancel();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let _g = gate().read().unwrap();
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x"), 5);
        r.reset();
        assert_eq!(r.snapshot().counter("x"), 0);
        // handle still live after reset
        a.inc();
        assert_eq!(r.snapshot().counter("x"), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("dup");
        let _ = r.histogram("dup");
    }

    #[test]
    fn snapshot_renders_text_and_json() {
        let _g = gate().read().unwrap();
        let r = Registry::new();
        r.counter("a.count").add(3);
        r.gauge("b.gauge").set(-2);
        r.histogram("c.lat_ns").record(5);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("counter   a.count = 3"));
        assert!(text.contains("gauge     b.gauge = -2"));
        assert!(text.contains("histogram c.lat_ns: count=1"));
        let json = snap.render_json();
        assert!(json.contains("\"a.count\": 3"));
        assert!(json.contains("\"b.gauge\": -2"));
        assert!(json.contains("\"c.lat_ns\": {\"count\": 1"));
        assert!(json.contains("\"buckets\": [{\"le\": 7, \"count\": 1}]"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn record_zero_and_top_bucket_saturation_are_pinned() {
        let _g = gate().read().unwrap();
        let h = Histogram::new();
        // zero lands in the dedicated zero bucket and is a real sample
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.p50, s.sum), (0, 0, 0, 0));
        assert_eq!(s.buckets, vec![(0, 1)]);
        // u64::MAX lands in the top bucket, whose bound saturates at
        // u64::MAX (so quantiles from it saturate too, never wrap)
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 1), (u64::MAX, 1)]);
        // an over-range Duration saturates to u64::MAX nanoseconds
        h.record_duration(std::time::Duration::from_secs(u64::MAX));
        assert_eq!(h.snapshot().buckets, vec![(0, 1), (u64::MAX, 2)]);
    }

    #[test]
    fn snapshot_is_self_consistent_under_concurrent_records() {
        let _g = gate().read().unwrap();
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut v = w as u64 + 1;
                    while !stop.load(Ordering::Relaxed) {
                        h.record(v % 5000);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = h.snapshot();
            let bucket_total: u64 = s.buckets.iter().map(|(_, c)| c).sum();
            assert_eq!(s.count, bucket_total, "count must equal bucket totals");
            if s.count == 0 {
                assert_eq!((s.sum, s.min, s.max, s.p50), (0, 0, 0, 0));
            } else {
                assert!(s.min <= s.max, "min {} > max {}", s.min, s.max);
                let mean = s.mean();
                assert!(
                    mean >= s.min as f64 && mean <= s.max as f64,
                    "mean {mean} outside [{}, {}]",
                    s.min,
                    s.max
                );
            }
        }
        stop.store(true, Ordering::Relaxed);
        for t in writers {
            t.join().unwrap();
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let _g = gate().read().unwrap();
        let r = Registry::new();
        r.counter("p.requests").add(3);
        r.gauge("p.active").set(2);
        let h = r.histogram("p.lat_ns");
        h.record(5);
        h.record(100);
        h.record(u64::MAX);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE graphtempo_p_requests_total counter\n"));
        assert!(text.contains("graphtempo_p_requests_total 3\n"));
        assert!(text.contains("# TYPE graphtempo_p_active gauge\n"));
        assert!(text.contains("graphtempo_p_active 2\n"));
        assert!(text.contains("# TYPE graphtempo_p_lat_ns histogram\n"));
        // buckets are cumulative and the saturated top bucket folds into +Inf
        assert!(text.contains("graphtempo_p_lat_ns_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("graphtempo_p_lat_ns_bucket{le=\"127\"} 2\n"));
        assert!(!text.contains("le=\"18446744073709551615\""));
        assert!(text.contains("graphtempo_p_lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("graphtempo_p_lat_ns_count 3\n"));
        assert_eq!(prometheus_name("a.b-c"), "graphtempo_a_b_c");
    }

    #[test]
    fn deadline_expiry() {
        let d = Deadline::after_millis(0);
        assert!(d.expired());
        assert_eq!(d.limit_millis(), 0);
        let far = Deadline::after_millis(3_600_000);
        assert!(!far.expired());
        assert_eq!(far.limit_millis(), 3_600_000);
        // huge limits neither overflow nor expire
        let huge = Deadline::after(std::time::Duration::from_secs(u64::MAX));
        assert!(!huge.expired());
        assert_eq!(huge.limit_millis(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let _g = gate().read().unwrap();
        let r = Arc::new(Registry::new());
        let c = r.counter("mt.count");
        let h = r.histogram("mt.lat");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * (0..1000u64).sum::<u64>());
    }

    #[test]
    fn disabled_gate_suppresses_recording() {
        let _g = gate().write().unwrap();
        let r = Registry::new();
        let c = r.counter("gate.count");
        let h = r.histogram("gate.lat");
        set_enabled(false);
        c.inc();
        h.record(10);
        let g = h.span();
        drop(g);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
