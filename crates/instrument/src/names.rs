//! Central registry of metric names.
//!
//! Every counter/gauge/histogram name recorded anywhere in the workspace
//! must appear in [`ALL`]; `tempo-lint`'s `metric-registry` rule checks
//! each `.counter("…")` / `.gauge("…")` / `.histogram("…")` literal against
//! this file, so an emitter and `report::metrics_json` cannot silently
//! drift apart. Keep the list sorted — a unit test enforces it.

/// All metric names the workspace may record, sorted.
pub const ALL: &[&str] = &[
    "aggregate.count_distinct.bitmask_fast",
    "aggregate.count_distinct.calls",
    "aggregate.count_distinct.unknown_target",
    "aggregate.group_table_build_ns",
    "aggregate.group_tables_built",
    "aggregate.groups_interned",
    "columnar.presence.dense_cols",
    "columnar.presence.sparse_cols",
    "columnar.presence.sparse_overflow_forced_dense",
    "evolution.cache.hits",
    "evolution.cache.misses",
    "explore.count_ns",
    "explore.cursor.builds",
    "explore.cursor.chains",
    "explore.cursor.step_ns",
    "explore.cursor.steps",
    "explore.eval_ns",
    "explore.evaluations",
    "explore.kernel_build_ns",
    "explore.mask_ns",
    "explore.pruned",
    "explore.pruned.intersection_decreasing",
    "explore.pruned.intersection_increasing",
    "explore.pruned.union_decreasing",
    "explore.pruned.union_increasing",
    "explore.shard.builds",
    "explore.shard.fragments",
    "explore.shard.merge_ns",
    "explore.shard.worker_idle_ns",
    "graph.index.append_cols",
    "graph.transpose_build_ns",
    "graph.transpose_builds",
    "io.load_ns",
    "io.read.cells",
    "io.read.rows",
    "io.save_ns",
    "io.write.cells",
    "io.write.rows",
    "materialize.cache.entries",
    "materialize.cache.epoch_evictions",
    "materialize.cache.hits",
    "materialize.cache.misses",
    "materialize.points_appended",
    "materialize.store_build_ns",
    "server.active_connections",
    "server.client_request_ns",
    "server.connections",
    "server.errors",
    "server.request_ns",
    "server.requests",
    "server.rows_truncated",
    "server.timeouts",
];

/// Whether `name` is a registered metric name.
#[must_use]
pub fn is_registered(name: &str) -> bool {
    ALL.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        for w in ALL.windows(2) {
            assert!(w[0] < w[1], "names out of order: {:?} >= {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn lookup() {
        assert!(is_registered("explore.evaluations"));
        assert!(!is_registered("explore.typo"));
    }
}
