//! CLI error type.

use std::fmt;
use tempo_graph::GraphError;

/// Errors surfaced to the shell user.
#[derive(Debug)]
pub enum CliError {
    /// Command syntax problem (with usage hint).
    Usage(String),
    /// No graph is loaded yet.
    NoGraph,
    /// Nothing to export yet (no aggregate computed).
    NoAggregate,
    /// A referenced label does not exist.
    Unknown(String),
    /// Underlying model error.
    Graph(GraphError),
    /// Filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "usage: {u}"),
            CliError::NoGraph => write!(f, "no graph loaded — use `generate` or `load` first"),
            CliError::NoAggregate => {
                write!(
                    f,
                    "no aggregate computed yet — run `agg` or `evolution` first"
                )
            }
            CliError::Unknown(w) => write!(f, "unknown {w}"),
            CliError::Graph(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<GraphError> for CliError {
    fn from(e: GraphError) -> Self {
        CliError::Graph(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CliError::NoGraph.to_string().contains("no graph"));
        assert!(CliError::Usage("agg ...".into())
            .to_string()
            .starts_with("usage"));
        assert!(CliError::Unknown("attribute \"x\"".into())
            .to_string()
            .contains("unknown"));
    }
}
