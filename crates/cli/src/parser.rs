//! Command-line tokenization and interval/argument parsing.

use crate::error::CliError;
use tempo_graph::{TimeDomain, TimeSet};

/// Splits a command line into tokens, honoring double quotes.
pub fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Parses a time-point reference: a domain label (`2005`, `May`) or a
/// 0-based index written `#3`.
pub fn parse_point(domain: &TimeDomain, token: &str) -> Result<usize, CliError> {
    if let Some(idx) = token.strip_prefix('#') {
        let i: usize = idx
            .parse()
            .map_err(|_| CliError::Unknown(format!("time index {token:?}")))?;
        if i >= domain.len() {
            return Err(CliError::Unknown(format!(
                "time index {i} (domain has {} points)",
                domain.len()
            )));
        }
        return Ok(i);
    }
    domain
        .point(token)
        .map(|t| t.index())
        .ok_or_else(|| CliError::Unknown(format!("time point {token:?}")))
}

/// Parses an interval: `<point>` or `<point>..<point>` (inclusive).
pub fn parse_interval(domain: &TimeDomain, token: &str) -> Result<TimeSet, CliError> {
    let n = domain.len();
    if let Some((a, b)) = token.split_once("..") {
        let (ia, ib) = (parse_point(domain, a)?, parse_point(domain, b)?);
        if ia > ib {
            return Err(CliError::Usage(format!(
                "interval {token:?} is reversed ({a} comes after {b})"
            )));
        }
        Ok(TimeSet::range(n, ia, ib))
    } else {
        let i = parse_point(domain, token)?;
        Ok(TimeSet::range(n, i, i))
    }
}

/// Parses `key=value` arguments out of a token list, returning the
/// positional remainder and the keyword map.
pub fn split_kwargs(tokens: &[String]) -> (Vec<String>, Vec<(String, String)>) {
    let mut positional = Vec::new();
    let mut kwargs = Vec::new();
    for t in tokens {
        match t.split_once('=') {
            Some((k, v)) if !k.is_empty() => kwargs.push((k.to_owned(), v.to_owned())),
            _ => positional.push(t.clone()),
        }
    }
    (positional, kwargs)
}

/// Looks up a keyword argument.
pub fn kwarg<'a>(kwargs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    kwargs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> TimeDomain {
        TimeDomain::new(vec!["May", "Jun", "Jul", "Aug"]).unwrap()
    }

    #[test]
    fn tokenize_respects_quotes() {
        assert_eq!(
            tokenize(r#"load "my dir/graph"  extra"#),
            vec!["load", "my dir/graph", "extra"]
        );
        assert_eq!(tokenize("   "), Vec::<String>::new());
    }

    #[test]
    fn parse_points_by_label_and_index() {
        let d = domain();
        assert_eq!(parse_point(&d, "Jun").unwrap(), 1);
        assert_eq!(parse_point(&d, "#3").unwrap(), 3);
        assert!(parse_point(&d, "Nov").is_err());
        assert!(parse_point(&d, "#9").is_err());
        assert!(parse_point(&d, "#x").is_err());
    }

    #[test]
    fn parse_intervals() {
        let d = domain();
        let s = parse_interval(&d, "Jun..Aug").unwrap();
        assert_eq!(s.len(), 3);
        let p = parse_interval(&d, "May").unwrap();
        assert_eq!(p.len(), 1);
        assert!(parse_interval(&d, "Aug..May").is_err());
        assert!(parse_interval(&d, "Aug..Nov").is_err());
    }

    #[test]
    fn kwargs_split() {
        let tokens: Vec<String> = ["agg", "dist", "k=5", "attrs=gender,age"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let (pos, kw) = split_kwargs(&tokens);
        assert_eq!(pos, vec!["agg", "dist"]);
        assert_eq!(kwarg(&kw, "k"), Some("5"));
        assert_eq!(kwarg(&kw, "attrs"), Some("gender,age"));
        assert_eq!(kwarg(&kw, "zzz"), None);
    }
}
