//! `graphtempo` — interactive exploration shell for GraphTempo temporal
//! graphs (the exploration framework envisioned in the paper's conclusion).
//!
//! ```text
//! $ graphtempo
//! graphtempo> generate dblp scale=0.05
//! graphtempo> agg dist attrs=gender
//! graphtempo> explore event=stability semantics=intersect extend=new k=10 attrs=gender edge=f->f
//! ```
//!
//! Commands may also be passed as arguments for one-shot use:
//! `graphtempo "generate dblp" stats`.

use graphtempo_cli::Session;
use std::io::{BufRead, Write};
use tempo_columnar::SparseMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // the only environment read: once, at startup — the mode is explicit
    // per-graph state from here on
    let mode = SparseMode::from_env_value(std::env::var("GRAPHTEMPO_SPARSE").ok().as_deref());
    let mut session = Session::new().with_sparse_mode(mode);

    if !args.is_empty() {
        // one-shot mode: each argument is a command line
        let mut failed = false;
        for cmd in &args {
            match session.exec(cmd) {
                Ok(out) => {
                    if !out.is_empty() {
                        println!("{out}");
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    failed = true;
                }
            }
        }
        std::process::exit(i32::from(failed));
    }

    println!("GraphTempo shell — type `help` for commands, `quit` to exit.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("graphtempo> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("error reading input: {e}");
                break;
            }
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match session.exec(line) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
