//! Session layer of the GraphTempo shell.
//!
//! The command surface (`generate`, `agg`, `explore`, `zoom`, …) lives in
//! [`session::Session`] so it can be driven by more than one front end: the
//! `graphtempo` binary wraps it in a REPL, and `tempo-server` builds one
//! short-lived session per request over a shared `Arc<TemporalGraph>`
//! snapshot.

#![warn(missing_docs)]

pub mod error;
pub mod parser;
pub mod patch;
pub mod session;

pub use error::CliError;
pub use session::{QueryLimits, Session, HELP};
