//! The interactive session: state plus command execution.

use crate::error::CliError;
use crate::parser::{kwarg, parse_interval, split_kwargs, tokenize};
use graphtempo::aggregate::{aggregate, AggMode, AggregateGraph};
use graphtempo::evolution::{evolution_aggregate, EvolutionAggregate};
use graphtempo::explore::{
    explore_budgeted, explore_sharded_budgeted, suggest_k, Budget, ExploreConfig, ExtendSide,
    Selector, Semantics,
};
use graphtempo::export::{aggregate_edges_frame, aggregate_nodes_frame, aggregate_to_dot};
use graphtempo::ops::{difference, intersection, project, union, Event, SideTest};
use graphtempo::zoom::{zoom_out, Granularity};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use tempo_columnar::{SparseMode, Value, ValueTuple};
use tempo_datagen::{DblpConfig, MovieLensConfig, RandomGraphConfig, SchoolConfig};
use tempo_graph::{AttrId, GraphStats, NodeId, TemporalGraph, TimePoint};

/// Text shown by `help`.
pub const HELP: &str = "\
GraphTempo interactive shell — commands:
  generate <dblp|movielens|school|random> [scale=0.05] [seed=N]
  load <dir> | save <dir>        load/save the graph as a TSV directory
  stats                          per-timepoint node/edge counts (Tables 3-4 style)
  schema                         attributes and their temporality
  project <iv>                   entities spanning the whole interval
  union <iv> <iv>                entities in either interval
  intersect <iv> <iv>            entities in both intervals
  diff <iv> <iv>                 entities in the first interval only
  agg <dist|all> attrs=<a,b,..> [op=union|intersect|diff] [t1=<iv>] [t2=<iv>] [top=10]
  evolution t1=<iv> t2=<iv> attrs=<a,..> [filter=<attr><op><int>]  (op: > >= < <= =)
  explore event=<stability|growth|shrinkage> semantics=<union|intersect>
          extend=<old|new> k=<n> attrs=<a> [edge=<v>-><v>] [node=<v>]
  suggest (same arguments as explore)  suggest a starting k (w_th, §3.5)
  zoom window=<n> semantics=<any|all>  rewrite the graph at coarser granularity
  append <label> [node=N] [edge=U,V] [tv=N,ATTR,VAL] [static=N,ATTR,VAL] [edgeval=U,V,VAL]
                                 append a timepoint copy-on-write (epoch +1)
  cube attrs=<a,b,..> level=<a,..> [t=<point>] [scope=<iv>]  OLAP query via the cube
  measure group=<a,..> node=<count|sum:attr|min:attr|max:attr|avg:attr>
          [edge=<count|sum|min|max|avg>]  aggregate measures beyond COUNT
  solve k=<n> attrs=<a> [extend=<old|new>] [edge=<v>-><v>]   Definition 3.6 report
  metrics [--json <path>]              density/turnover profile + live instrumentation
                                       (--json dumps the registry snapshot to a file)
  export <dot|nodes|edges> <path>      export the last aggregate
  help | quit
Intervals: a label (2005, May), an index (#3), or a range (2001..2005).";

/// Request-scoped execution limits applied to session commands; the
/// defaults impose none.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryLimits {
    /// Wall-clock ceiling for one `explore` run, in milliseconds; on expiry
    /// the command fails with [`tempo_graph::GraphError::Cancelled`].
    pub timeout_ms: Option<u64>,
    /// Maximum detail rows in an `explore` pair listing; longer listings
    /// are truncated with a trailing note (and counted in the
    /// `server.rows_truncated` metric).
    pub max_rows: Option<usize>,
    /// Entity-space shard count for `explore`: values above 1 route the
    /// run through the sharded evaluator (bit-identical to the unsharded
    /// path); `None` or `Some(1)` keep the plain chain engine.
    pub shards: Option<usize>,
}

/// Interactive state: the working graph and the last computed results.
///
/// The graph is held behind an [`Arc`] so a server can hand the same
/// immutable snapshot to many concurrent per-request sessions (see
/// [`Session::for_snapshot`]).
#[derive(Default)]
pub struct Session {
    graph: Option<Arc<TemporalGraph>>,
    last_agg: Option<AggregateGraph>,
    last_evo: Option<EvolutionAggregate>,
    sparse_mode: SparseMode,
    limits: QueryLimits,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Self {
        Session::default()
    }

    /// Sets the presence-column policy applied to every graph this session
    /// generates, loads, or derives (zoom). Binaries honoring
    /// `GRAPHTEMPO_SPARSE` read the variable once at startup and pass the
    /// parsed mode here.
    #[must_use]
    pub fn with_sparse_mode(mut self, mode: SparseMode) -> Self {
        self.sparse_mode = mode;
        self
    }

    /// A session over an existing shared snapshot, with request-scoped
    /// limits — the shape `tempo-server` builds per request.
    pub fn for_snapshot(graph: Arc<TemporalGraph>, limits: QueryLimits) -> Self {
        Session {
            graph: Some(graph),
            limits,
            ..Session::default()
        }
    }

    /// Replaces the request-scoped limits.
    pub fn set_limits(&mut self, limits: QueryLimits) {
        self.limits = limits;
    }

    /// The current request-scoped limits.
    pub fn limits(&self) -> QueryLimits {
        self.limits
    }

    /// The session's graph as a shareable handle (e.g. to register a zoom
    /// result as a new server snapshot), if one is loaded.
    pub fn graph_arc(&self) -> Option<Arc<TemporalGraph>> {
        self.graph.clone()
    }

    /// True once a graph is loaded or generated.
    #[cfg(test)]
    pub fn has_graph(&self) -> bool {
        self.graph.is_some()
    }

    fn graph(&self) -> Result<&TemporalGraph, CliError> {
        self.graph.as_deref().ok_or(CliError::NoGraph)
    }

    /// Installs a newly built graph, applying the session's presence-column
    /// policy and invalidating result state derived from the old graph.
    fn install_graph(&mut self, mut g: TemporalGraph) {
        g.set_sparse_mode(self.sparse_mode);
        self.graph = Some(Arc::new(g));
        self.last_agg = None;
        self.last_evo = None;
    }

    /// Executes one command line, returning the text to print.
    ///
    /// # Errors
    /// Returns a [`CliError`] describing what went wrong; the session state
    /// is unchanged on error.
    pub fn exec(&mut self, line: &str) -> Result<String, CliError> {
        let tokens = tokenize(line);
        let Some(cmd) = tokens.first() else {
            return Ok(String::new());
        };
        let rest = &tokens[1..];
        match cmd.as_str() {
            "help" => Ok(HELP.to_owned()),
            "generate" => self.cmd_generate(rest),
            "load" => self.cmd_load(rest),
            "save" => self.cmd_save(rest),
            "stats" => self.cmd_stats(),
            "schema" => self.cmd_schema(),
            "project" | "union" | "intersect" | "diff" => self.cmd_operator(cmd, rest),
            "agg" => self.cmd_agg(rest),
            "evolution" => self.cmd_evolution(rest),
            "explore" => self.cmd_explore(rest, false),
            "suggest" => self.cmd_explore(rest, true),
            "zoom" => self.cmd_zoom(rest),
            "append" => self.cmd_append(rest),
            "cube" => self.cmd_cube(rest),
            "measure" => self.cmd_measure(rest),
            "solve" => self.cmd_solve(rest),
            "metrics" => self.cmd_metrics(rest),
            "export" => self.cmd_export(rest),
            other => Err(CliError::Unknown(format!("command {other:?} (try `help`)"))),
        }
    }

    fn cmd_generate(&mut self, args: &[String]) -> Result<String, CliError> {
        let (pos, kw) = split_kwargs(args);
        let which = pos
            .first()
            .ok_or_else(|| CliError::Usage("generate <dblp|movielens|school|random>".into()))?;
        let scale: f64 = kwarg(&kw, "scale")
            .map(|s| {
                s.parse()
                    .map_err(|_| CliError::Usage("scale=<float>".into()))
            })
            .transpose()?
            .unwrap_or(0.05);
        let seed: Option<u64> = kwarg(&kw, "seed")
            .map(|s| s.parse().map_err(|_| CliError::Usage("seed=<int>".into())))
            .transpose()?;
        let g = match which.as_str() {
            "dblp" => {
                let mut cfg = DblpConfig::scaled(scale);
                if let Some(s) = seed {
                    cfg.seed = s;
                }
                cfg.generate()?
            }
            "movielens" => {
                let mut cfg = MovieLensConfig::scaled(scale);
                if let Some(s) = seed {
                    cfg.seed = s;
                }
                cfg.generate()?
            }
            "school" => {
                let mut cfg = SchoolConfig::default();
                if let Some(s) = seed {
                    cfg.seed = s;
                }
                cfg.generate()?
            }
            "random" => {
                let mut cfg = RandomGraphConfig::default();
                if let Some(s) = seed {
                    cfg.seed = s;
                }
                cfg.generate()?
            }
            other => return Err(CliError::Unknown(format!("dataset {other:?}"))),
        };
        let msg = format!(
            "generated {which}: {} nodes, {} edges, {} time points",
            g.n_nodes(),
            g.n_edges(),
            g.domain().len()
        );
        self.install_graph(g);
        Ok(msg)
    }

    fn cmd_load(&mut self, args: &[String]) -> Result<String, CliError> {
        let dir = args
            .first()
            .ok_or_else(|| CliError::Usage("load <dir>".into()))?;
        let g = tempo_graph::io::load_dir(Path::new(dir))?;
        let msg = format!(
            "loaded {dir}: {} nodes, {} edges, {} time points",
            g.n_nodes(),
            g.n_edges(),
            g.domain().len()
        );
        self.install_graph(g);
        Ok(msg)
    }

    fn cmd_save(&mut self, args: &[String]) -> Result<String, CliError> {
        let dir = args
            .first()
            .ok_or_else(|| CliError::Usage("save <dir>".into()))?;
        tempo_graph::io::save_dir(self.graph()?, Path::new(dir))?;
        Ok(format!("saved to {dir}"))
    }

    fn cmd_stats(&self) -> Result<String, CliError> {
        let g = self.graph()?;
        let stats = GraphStats::compute(g);
        Ok(format!(
            "{}total: {} nodes, {} edges",
            stats.render_table(),
            stats.total_nodes,
            stats.total_edges
        ))
    }

    fn cmd_schema(&self) -> Result<String, CliError> {
        let g = self.graph()?;
        let mut out = String::new();
        for (_, def) in g.schema().iter() {
            let kind = match def.temporality() {
                tempo_graph::Temporality::Static => "static",
                tempo_graph::Temporality::TimeVarying => "time-varying",
            };
            let _ = writeln!(
                out,
                "  {} ({kind}, {} categorical values)",
                def.name(),
                def.category_count()
            );
        }
        Ok(out.trim_end().to_owned())
    }

    fn cmd_operator(&self, cmd: &str, args: &[String]) -> Result<String, CliError> {
        let g = self.graph()?;
        let result = match cmd {
            "project" => {
                let iv = args
                    .first()
                    .ok_or_else(|| CliError::Usage("project <interval>".into()))?;
                project(g, &parse_interval(g.domain(), iv)?)?
            }
            _ => {
                let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
                    return Err(CliError::Usage(format!("{cmd} <interval> <interval>")));
                };
                let t1 = parse_interval(g.domain(), a)?;
                let t2 = parse_interval(g.domain(), b)?;
                match cmd {
                    "union" => union(g, &t1, &t2)?,
                    "intersect" => intersection(g, &t1, &t2)?,
                    "diff" => difference(g, &t1, &t2)?,
                    _ => unreachable!("dispatch covers all operator commands"),
                }
            }
        };
        Ok(format!(
            "{cmd}: {} nodes, {} edges",
            result.n_nodes(),
            result.n_edges()
        ))
    }

    fn parse_attrs(&self, g: &TemporalGraph, spec: &str) -> Result<Vec<AttrId>, CliError> {
        spec.split(',')
            .map(|name| {
                g.schema()
                    .id(name.trim())
                    .map_err(|_| CliError::Unknown(format!("attribute {name:?}")))
            })
            .collect()
    }

    /// Parses an attribute value token: categorical label first, then int.
    fn parse_value(&self, g: &TemporalGraph, attr: AttrId, token: &str) -> Result<Value, CliError> {
        if let Some(v) = g.schema().category(attr, token) {
            return Ok(v);
        }
        token
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| CliError::Unknown(format!("value {token:?} for attribute")))
    }

    fn parse_tuple(
        &self,
        g: &TemporalGraph,
        attrs: &[AttrId],
        spec: &str,
    ) -> Result<ValueTuple, CliError> {
        let parts: Vec<&str> = spec.split(',').collect();
        if parts.len() != attrs.len() {
            return Err(CliError::Usage(format!(
                "tuple {spec:?} must have {} values",
                attrs.len()
            )));
        }
        parts
            .iter()
            .zip(attrs)
            .map(|(p, &a)| self.parse_value(g, a, p.trim()))
            .collect()
    }

    fn cmd_agg(&mut self, args: &[String]) -> Result<String, CliError> {
        let g = self.graph()?;
        let (pos, kw) = split_kwargs(args);
        let usage =
            "agg <dist|all> attrs=<a,b> [op=union|intersect|diff] [t1=<iv>] [t2=<iv>] [top=10]";
        let mode = match pos.first().map(String::as_str) {
            Some("dist") => AggMode::Distinct,
            Some("all") => AggMode::All,
            _ => return Err(CliError::Usage(usage.into())),
        };
        let attrs = self.parse_attrs(
            g,
            kwarg(&kw, "attrs").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let top: usize = kwarg(&kw, "top")
            .map(|s| s.parse().map_err(|_| CliError::Usage("top=<int>".into())))
            .transpose()?
            .unwrap_or(10);

        let target: TemporalGraph = match kwarg(&kw, "op") {
            None => g.clone(),
            Some(op) => {
                let t1 = parse_interval(
                    g.domain(),
                    kwarg(&kw, "t1").ok_or_else(|| CliError::Usage(usage.into()))?,
                )?;
                let t2 = parse_interval(
                    g.domain(),
                    kwarg(&kw, "t2").ok_or_else(|| CliError::Usage(usage.into()))?,
                )?;
                match op {
                    "union" => union(g, &t1, &t2)?,
                    "intersect" => intersection(g, &t1, &t2)?,
                    "diff" => difference(g, &t1, &t2)?,
                    other => return Err(CliError::Unknown(format!("operator {other:?}"))),
                }
            }
        };
        let agg = aggregate(&target, &attrs, mode);
        let mut out = format!(
            "aggregate: {} nodes, {} edges (node weight {}, edge weight {})\n",
            agg.n_nodes(),
            agg.n_edges(),
            agg.total_node_weight(),
            agg.total_edge_weight()
        );
        let mut nodes = agg.iter_nodes();
        nodes.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        for (tuple, w) in nodes.into_iter().take(top) {
            let _ = writeln!(out, "  node {} w={w}", render_tuple(g, &attrs, tuple));
        }
        let mut edges = agg.iter_edges();
        edges.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        for ((s, d), w) in edges.into_iter().take(top) {
            let _ = writeln!(
                out,
                "  edge {} -> {} w={w}",
                render_tuple(g, &attrs, s),
                render_tuple(g, &attrs, d)
            );
        }
        self.last_agg = Some(agg);
        Ok(out.trim_end().to_owned())
    }

    fn cmd_evolution(&mut self, args: &[String]) -> Result<String, CliError> {
        let g = self.graph()?;
        let (_, kw) = split_kwargs(args);
        let usage = "evolution t1=<iv> t2=<iv> attrs=<a,..> [filter=<attr><op><int>]";
        let t1 = parse_interval(
            g.domain(),
            kwarg(&kw, "t1").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let t2 = parse_interval(
            g.domain(),
            kwarg(&kw, "t2").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let attrs = self.parse_attrs(
            g,
            kwarg(&kw, "attrs").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let filter = kwarg(&kw, "filter")
            .map(|spec| parse_filter(g, spec))
            .transpose()?;
        let filter_fn = filter.as_ref().map(|(attr, op, threshold)| {
            let (attr, op, threshold) = (*attr, *op, *threshold);
            move |gr: &TemporalGraph, n: NodeId, t: TimePoint| -> bool {
                let v = gr.attr_value(n, attr, t).as_int().unwrap_or(i64::MIN);
                op.eval(v, threshold)
            }
        });
        let evo = evolution_aggregate(
            g,
            &t1,
            &t2,
            &attrs,
            filter_fn
                .as_ref()
                .map(|f| f as &graphtempo::aggregate::NodeTimeFilter<'_>),
        )?;
        let mut out = String::new();
        for (tuple, w) in evo.iter_nodes() {
            let _ = writeln!(
                out,
                "  node {}: St={} Gr={} Shr={}",
                render_tuple(g, &attrs, tuple),
                w.stability,
                w.growth,
                w.shrinkage
            );
        }
        let e = evo.edge_totals();
        let _ = writeln!(
            out,
            "  edges total: St={} Gr={} Shr={}",
            e.stability, e.growth, e.shrinkage
        );
        self.last_evo = Some(evo);
        Ok(out.trim_end().to_owned())
    }

    fn cmd_explore(&mut self, args: &[String], suggest_only: bool) -> Result<String, CliError> {
        let g = self.graph()?;
        let (_, kw) = split_kwargs(args);
        let usage = "explore event=<stability|growth|shrinkage> semantics=<union|intersect> extend=<old|new> k=<n> attrs=<a> [edge=<v>-><v>] [node=<v>]";
        let event = match kwarg(&kw, "event") {
            Some("stability") => Event::Stability,
            Some("growth") => Event::Growth,
            Some("shrinkage") => Event::Shrinkage,
            _ => return Err(CliError::Usage(usage.into())),
        };
        let semantics = match kwarg(&kw, "semantics") {
            Some("union") => Semantics::Union,
            Some("intersect") | Some("intersection") => Semantics::Intersection,
            _ => return Err(CliError::Usage(usage.into())),
        };
        let extend = match kwarg(&kw, "extend") {
            Some("old") => ExtendSide::Old,
            Some("new") => ExtendSide::New,
            _ => return Err(CliError::Usage(usage.into())),
        };
        let attrs = self.parse_attrs(
            g,
            kwarg(&kw, "attrs").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let selector = if let Some(edge) = kwarg(&kw, "edge") {
            let (src, dst) = edge
                .split_once("->")
                .ok_or_else(|| CliError::Usage("edge=<v>-><v>".into()))?;
            Selector::EdgeTuple(
                self.parse_tuple(g, &attrs, src)?,
                self.parse_tuple(g, &attrs, dst)?,
            )
        } else if let Some(node) = kwarg(&kw, "node") {
            Selector::NodeTuple(self.parse_tuple(g, &attrs, node)?)
        } else {
            Selector::AllEdges
        };
        let mut cfg = ExploreConfig {
            event,
            extend,
            semantics,
            k: 1,
            attrs,
            selector,
        };
        if suggest_only {
            return match suggest_k(g, &cfg)? {
                Some(w) => Ok(format!("suggested k (w_th per §3.5): {w}")),
                None => Ok("no events between any consecutive time points".to_owned()),
            };
        }
        cfg.k = kwarg(&kw, "k")
            .ok_or_else(|| CliError::Usage(usage.into()))?
            .parse()
            .map_err(|_| CliError::Usage("k=<int>".into()))?;
        let budget = match self.limits.timeout_ms {
            Some(ms) => Budget::unlimited().with_deadline_ms(ms),
            None => Budget::unlimited(),
        };
        let out = match self.limits.shards {
            Some(s) if s > 1 => explore_sharded_budgeted(g, &cfg, s, &budget)?,
            _ => explore_budgeted(g, &cfg, &budget)?,
        };
        let kind = match semantics {
            Semantics::Union => "minimal",
            Semantics::Intersection => "maximal",
        };
        let mut text = format!(
            "{} qualifying {kind} interval pairs ({} evaluations):\n",
            out.pairs.len(),
            out.evaluations
        );
        let cap = self.limits.max_rows.unwrap_or(usize::MAX);
        for (pair, r) in out.pairs.iter().take(cap) {
            let _ = writeln!(text, "  {} -> {r} events", pair.display(g.domain()));
        }
        if out.pairs.len() > cap {
            let dropped = out.pairs.len() - cap;
            tempo_instrument::global()
                .counter("server.rows_truncated")
                .add(dropped as u64);
            let _ = writeln!(text, "  … {dropped} more rows (limit {cap})");
        }
        Ok(text.trim_end().to_owned())
    }

    fn cmd_zoom(&mut self, args: &[String]) -> Result<String, CliError> {
        let g = self.graph()?;
        let (_, kw) = split_kwargs(args);
        let usage = "zoom window=<n> semantics=<any|all>";
        let window: usize = kwarg(&kw, "window")
            .ok_or_else(|| CliError::Usage(usage.into()))?
            .parse()
            .map_err(|_| CliError::Usage("window=<int>".into()))?;
        let sem = match kwarg(&kw, "semantics") {
            Some("all") => SideTest::All,
            _ => SideTest::Any,
        };
        let gran = Granularity::windows(g.domain(), window)?;
        let z = zoom_out(g, &gran, sem)?;
        let msg = format!(
            "zoomed to {} coarse points: {} nodes, {} edges",
            z.domain().len(),
            z.n_nodes(),
            z.n_edges()
        );
        self.install_graph(z);
        Ok(msg)
    }

    /// `append <label> [node=N] [edge=U,V] …`: appends one timepoint to the
    /// working graph copy-on-write. Holders of the previous `Arc` snapshot
    /// (e.g. a server registry) are undisturbed; the session moves to the
    /// new epoch and drops results derived from the old one.
    fn cmd_append(&mut self, args: &[String]) -> Result<String, CliError> {
        let Some((label, rest)) = args.split_first() else {
            return Err(CliError::Usage(format!(
                "append <label> {}",
                crate::patch::PATCH_USAGE
            )));
        };
        let graph = self.graph.clone().ok_or(CliError::NoGraph)?;
        let patch = crate::patch::parse_patch(&graph, label, rest)?;
        let mut versions = tempo_graph::GraphVersions::from_arc(graph);
        let next = versions.append_timepoint(&patch)?;
        let msg = format!(
            "appended {label}: {} nodes, {} edges, {} time points (epoch {})",
            next.n_nodes(),
            next.n_edges(),
            next.domain().len(),
            next.epoch()
        );
        self.graph = Some(next);
        self.last_agg = None;
        self.last_evo = None;
        Ok(msg)
    }

    fn cmd_cube(&mut self, args: &[String]) -> Result<String, CliError> {
        use graphtempo::cube::{GraphCube, Level};
        let g = self.graph()?;
        let (_, kw) = split_kwargs(args);
        let usage = "cube attrs=<a,b,..> level=<a,..> [t=<point>] [scope=<iv>]";
        let attrs = self.parse_attrs(
            g,
            kwarg(&kw, "attrs").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let level_names: Vec<String> = kwarg(&kw, "level")
            .ok_or_else(|| CliError::Usage(usage.into()))?
            .split(',')
            .map(|s| s.trim().to_owned())
            .collect();
        let cube = GraphCube::build(g, &attrs, 4);
        let level = Level::new(level_names);
        let agg = if let Some(t) = kwarg(&kw, "t") {
            let p = crate::parser::parse_point(g.domain(), t)?;
            cube.slice(&level, TimePoint(p as u32))?
        } else {
            let scope = match kwarg(&kw, "scope") {
                Some(iv) => parse_interval(g.domain(), iv)?,
                None => g.domain().all(),
            };
            cube.query(&level, &scope)?
        };
        let level_ids = self.parse_attrs(g, &level.names().join(","))?;
        let mut out = format!(
            "cube query at level ({}): {} nodes, {} edges\n",
            level.names().join(","),
            agg.n_nodes(),
            agg.n_edges()
        );
        let mut nodes = agg.iter_nodes();
        nodes.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        for (tuple, w) in nodes.into_iter().take(10) {
            let _ = writeln!(out, "  {} w={w}", render_tuple(g, &level_ids, tuple));
        }
        self.last_agg = Some(agg);
        Ok(out.trim_end().to_owned())
    }

    fn cmd_measure(&self, args: &[String]) -> Result<String, CliError> {
        use graphtempo::measures::{aggregate_measure, EdgeMeasure, NodeMeasure};
        let g = self.graph()?;
        let (_, kw) = split_kwargs(args);
        let usage = "measure group=<a,..> node=<count|sum:attr|min:attr|max:attr|avg:attr> [edge=<count|sum|min|max|avg>]";
        let group = self.parse_attrs(
            g,
            kwarg(&kw, "group").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let node_spec = kwarg(&kw, "node").unwrap_or("count");
        let node_measure = match node_spec.split_once(':') {
            None if node_spec == "count" => NodeMeasure::Count,
            Some((op, attr)) => {
                let a = g
                    .schema()
                    .id(attr)
                    .map_err(|_| CliError::Unknown(format!("attribute {attr:?}")))?;
                match op {
                    "sum" => NodeMeasure::Sum(a),
                    "min" => NodeMeasure::Min(a),
                    "max" => NodeMeasure::Max(a),
                    "avg" => NodeMeasure::Avg(a),
                    _ => return Err(CliError::Usage(usage.into())),
                }
            }
            _ => return Err(CliError::Usage(usage.into())),
        };
        let edge_measure = match kwarg(&kw, "edge").unwrap_or("count") {
            "count" => EdgeMeasure::Count,
            "sum" => EdgeMeasure::SumValues,
            "min" => EdgeMeasure::MinValues,
            "max" => EdgeMeasure::MaxValues,
            "avg" => EdgeMeasure::AvgValues,
            _ => return Err(CliError::Usage(usage.into())),
        };
        let m = aggregate_measure(g, &group, node_measure, edge_measure)?;
        let mut out = format!(
            "measure {node_spec} grouped by ({})\n",
            m.group_names().join(",")
        );
        for (tuple, v) in m.iter_nodes() {
            let _ = writeln!(out, "  node {} = {v:.3}", render_tuple(g, &group, tuple));
        }
        let mut edges = m.iter_edges();
        edges.truncate(10);
        for ((s, d), v) in edges {
            let _ = writeln!(
                out,
                "  edge {} -> {} = {v:.3}",
                render_tuple(g, &group, s),
                render_tuple(g, &group, d)
            );
        }
        Ok(out.trim_end().to_owned())
    }

    fn cmd_solve(&self, args: &[String]) -> Result<String, CliError> {
        use graphtempo::explore::solve_problem;
        let g = self.graph()?;
        let (_, kw) = split_kwargs(args);
        let usage = "solve k=<n> attrs=<a> [extend=<old|new>] [edge=<v>-><v>]";
        let k: u64 = kwarg(&kw, "k")
            .ok_or_else(|| CliError::Usage(usage.into()))?
            .parse()
            .map_err(|_| CliError::Usage("k=<int>".into()))?;
        let attrs = self.parse_attrs(
            g,
            kwarg(&kw, "attrs").ok_or_else(|| CliError::Usage(usage.into()))?,
        )?;
        let extend = match kwarg(&kw, "extend") {
            Some("old") => ExtendSide::Old,
            _ => ExtendSide::New,
        };
        let selector = if let Some(edge) = kwarg(&kw, "edge") {
            let (src, dst) = edge
                .split_once("->")
                .ok_or_else(|| CliError::Usage("edge=<v>-><v>".into()))?;
            Selector::EdgeTuple(
                self.parse_tuple(g, &attrs, src)?,
                self.parse_tuple(g, &attrs, dst)?,
            )
        } else {
            Selector::AllEdges
        };
        let report = solve_problem(g, k, &attrs, &selector, extend)?;
        Ok(report.render(g.domain()).trim_end().to_owned())
    }

    fn cmd_metrics(&self, args: &[String]) -> Result<String, CliError> {
        use tempo_graph::metrics::{avg_degree_at, density_at, turnover_profile};
        // `metrics --json <path>` dumps the live instrumentation registry
        // and needs no graph.
        if let Some(i) = args.iter().position(|a| a == "--json") {
            let path = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage("metrics --json <path>".into()))?;
            std::fs::write(path, tempo_instrument::global().snapshot().render_json())?;
            return Ok(format!("wrote instrumentation snapshot to {path}"));
        }
        if !args.is_empty() {
            return Err(CliError::Usage("metrics [--json <path>]".into()));
        }
        let g = self.graph()?;
        let mut out = String::from("  time        density  avg-degree\n");
        for t in g.domain().iter() {
            let _ = writeln!(
                out,
                "  {:<10} {:>8.4} {:>11.2}",
                g.domain().label(t),
                density_at(g, t),
                avg_degree_at(g, t)
            );
        }
        out.push_str("  consecutive-pair overlap (node / edge Jaccard):\n");
        for (i, (nj, ej)) in turnover_profile(g).iter().enumerate() {
            let _ = writeln!(
                out,
                "  {} -> {}: {nj:.3} / {ej:.3}",
                g.domain().labels()[i],
                g.domain().labels()[i + 1]
            );
        }
        let snap = tempo_instrument::global().snapshot();
        if !snap.is_empty() {
            out.push_str("  instrumentation (session totals):\n");
            for line in snap.render_text().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        Ok(out.trim_end().to_owned())
    }

    fn cmd_export(&self, args: &[String]) -> Result<String, CliError> {
        let what = args
            .first()
            .ok_or_else(|| CliError::Usage("export <dot|nodes|edges> <path>".into()))?;
        let path = args
            .get(1)
            .ok_or_else(|| CliError::Usage("export <dot|nodes|edges> <path>".into()))?;
        let agg = self.last_agg.as_ref().ok_or(CliError::NoAggregate)?;
        match what.as_str() {
            "dot" => {
                std::fs::write(path, aggregate_to_dot(agg, self.graph.as_deref()))?;
            }
            "nodes" => {
                let f = aggregate_nodes_frame(agg).map_err(tempo_graph::GraphError::from)?;
                let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
                tempo_columnar::write_frame(&f, &mut w, '\t')
                    .map_err(tempo_graph::GraphError::from)?;
            }
            "edges" => {
                let f = aggregate_edges_frame(agg).map_err(tempo_graph::GraphError::from)?;
                let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
                tempo_columnar::write_frame(&f, &mut w, '\t')
                    .map_err(tempo_graph::GraphError::from)?;
            }
            other => return Err(CliError::Unknown(format!("export target {other:?}"))),
        }
        Ok(format!("wrote {path}"))
    }
}

/// Comparison operator of an evolution filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterOp {
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Equal.
    Eq,
}

impl FilterOp {
    fn eval(self, v: i64, threshold: i64) -> bool {
        match self {
            FilterOp::Gt => v > threshold,
            FilterOp::Ge => v >= threshold,
            FilterOp::Lt => v < threshold,
            FilterOp::Le => v <= threshold,
            FilterOp::Eq => v == threshold,
        }
    }
}

/// Parses `attr>4` / `attr>=4` / `attr<4` / `attr<=4` / `attr=4`.
fn parse_filter(g: &TemporalGraph, spec: &str) -> Result<(AttrId, FilterOp, i64), CliError> {
    for (sym, op) in [
        (">=", FilterOp::Ge),
        ("<=", FilterOp::Le),
        (">", FilterOp::Gt),
        ("<", FilterOp::Lt),
        ("=", FilterOp::Eq),
    ] {
        if let Some((name, value)) = spec.split_once(sym) {
            let attr = g
                .schema()
                .id(name.trim())
                .map_err(|_| CliError::Unknown(format!("attribute {name:?}")))?;
            let threshold: i64 = value
                .trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("filter value {value:?} must be an int")))?;
            return Ok((attr, op, threshold));
        }
    }
    Err(CliError::Usage(format!(
        "filter {spec:?} must look like publications>4"
    )))
}

fn render_tuple(g: &TemporalGraph, attrs: &[AttrId], tuple: &ValueTuple) -> String {
    let parts: Vec<String> = attrs
        .iter()
        .zip(tuple)
        .map(|(&a, v)| g.schema().def(a).render(v))
        .collect();
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready() -> Session {
        let mut s = Session::new();
        s.exec("generate random seed=7").unwrap();
        s
    }

    #[test]
    fn requires_graph() {
        let mut s = Session::new();
        assert!(matches!(s.exec("stats"), Err(CliError::NoGraph)));
        assert!(matches!(
            s.exec("agg dist attrs=kind"),
            Err(CliError::NoGraph)
        ));
    }

    #[test]
    fn empty_and_unknown_commands() {
        let mut s = Session::new();
        assert_eq!(s.exec("").unwrap(), "");
        assert!(matches!(s.exec("frobnicate"), Err(CliError::Unknown(_))));
        assert!(s.exec("help").unwrap().contains("explore"));
    }

    #[test]
    fn generate_and_stats() {
        let mut s = ready();
        assert!(s.has_graph());
        let out = s.exec("stats").unwrap();
        assert!(out.contains("#Nodes"));
        let out = s.exec("schema").unwrap();
        assert!(out.contains("kind"));
        assert!(out.contains("level"));
    }

    #[test]
    fn append_moves_session_to_next_epoch() {
        let mut s = Session::new();
        assert!(matches!(
            s.exec("append w1 node=za"),
            Err(CliError::NoGraph)
        ));
        s.exec("generate random seed=7").unwrap();
        let before = s.graph_arc().unwrap();
        let points = before.domain().len();
        let out = s
            .exec("append w1 node=za node=zb edge=za,zb tv=za,level,3")
            .unwrap();
        assert!(out.contains("appended w1"), "got {out}");
        assert!(out.contains("(epoch 1)"), "got {out}");
        let after = s.graph_arc().unwrap();
        assert_eq!(after.domain().len(), points + 1);
        // the old snapshot is untouched for anyone still holding it
        assert_eq!(before.domain().len(), points);
        assert!(s.exec("stats").unwrap().contains("w1"));
        // duplicate label and malformed tokens are rejected
        assert!(s.exec("append w1").is_err());
        assert!(matches!(
            s.exec("append w2 frob=1"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(s.exec("append"), Err(CliError::Usage(_))));
    }

    #[test]
    fn operators_report_counts() {
        let mut s = ready();
        assert!(s.exec("project #0").unwrap().starts_with("project:"));
        assert!(s.exec("union #0 #1..#2").unwrap().starts_with("union:"));
        assert!(s.exec("intersect #0 #1").unwrap().starts_with("intersect:"));
        assert!(s.exec("diff #0 #1").unwrap().starts_with("diff:"));
        assert!(matches!(s.exec("union #0"), Err(CliError::Usage(_))));
        assert!(matches!(s.exec("project #99"), Err(CliError::Unknown(_))));
    }

    #[test]
    fn aggregation_flow_and_export() {
        let mut s = ready();
        let out = s.exec("agg dist attrs=kind top=3").unwrap();
        assert!(out.contains("aggregate:"));
        let out = s
            .exec("agg all attrs=kind op=union t1=#0 t2=#1..#3")
            .unwrap();
        assert!(out.contains("node"));

        let dir = std::env::temp_dir().join(format!("gt_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dot = dir.join("agg.dot");
        let out = s.exec(&format!("export dot {}", dot.display())).unwrap();
        assert!(out.starts_with("wrote"));
        assert!(std::fs::read_to_string(&dot).unwrap().contains("digraph"));
        let nodes = dir.join("nodes.tsv");
        s.exec(&format!("export nodes {}", nodes.display()))
            .unwrap();
        assert!(std::fs::read_to_string(&nodes).unwrap().contains("weight"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_before_agg_errors() {
        let mut s = ready();
        assert!(matches!(
            s.exec("export dot /tmp/x.dot"),
            Err(CliError::NoAggregate)
        ));
    }

    #[test]
    fn evolution_with_filter() {
        let mut s = ready();
        let out = s
            .exec("evolution t1=#0..#2 t2=#3..#5 attrs=kind filter=level>=2")
            .unwrap();
        assert!(out.contains("St="));
        assert!(matches!(
            s.exec("evolution t1=#0 t2=#1 attrs=kind filter=level?2"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn explore_and_suggest() {
        let mut s = ready();
        let out = s
            .exec("suggest event=stability semantics=union extend=new attrs=kind")
            .unwrap();
        assert!(out.contains("suggested k") || out.contains("no events"));
        let out = s
            .exec("explore event=stability semantics=union extend=new k=1 attrs=kind")
            .unwrap();
        assert!(out.contains("interval pairs"));
        let out = s
            .exec("explore event=growth semantics=intersect extend=new k=1 attrs=kind edge=k0->k1")
            .unwrap();
        assert!(out.contains("maximal"));
        assert!(matches!(
            s.exec("explore event=bogus semantics=union extend=new k=1 attrs=kind"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn cube_solve_metrics_commands() {
        let mut s = ready();
        let out = s.exec("cube attrs=kind,level level=kind").unwrap();
        assert!(out.contains("cube query at level (kind)"));
        let out = s.exec("cube attrs=kind,level level=level t=#2").unwrap();
        assert!(out.contains("w="));
        assert!(matches!(
            s.exec("cube attrs=kind level=bogus"),
            Err(CliError::Unknown(_)) | Err(CliError::Graph(_))
        ));
        let out = s.exec("solve k=1 attrs=kind").unwrap();
        assert!(out.contains("Stability") && out.contains("maximal"));
        let out = s.exec("metrics").unwrap();
        assert!(out.contains("density"));
        assert!(out.contains("Jaccard"));
    }

    #[test]
    fn metrics_json_reports_explore_instrumentation() {
        let mut s = ready();
        s.exec("explore event=stability semantics=union extend=new k=1 attrs=kind")
            .unwrap();
        // registry is process-global and monotone, so evaluations are
        // non-zero no matter which sibling tests also ran
        let dir = std::env::temp_dir().join(format!("gt_cli_metrics_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let out = s
            .exec(&format!("metrics --json {}", path.display()))
            .unwrap();
        assert!(out.starts_with("wrote"));
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"explore.evaluations\""));
        assert!(json.contains("\"explore.eval_ns\""));
        let snap = tempo_instrument::global().snapshot();
        let evals = snap.counter("explore.evaluations");
        assert!(evals > 0, "explore must record evaluations");
        // every evaluation records exactly one latency sample
        assert_eq!(snap.histogram("explore.eval_ns").unwrap().count, evals);
        // plain `metrics` also appends the registry dump
        let out = s.exec("metrics").unwrap();
        assert!(out.contains("instrumentation"));
        assert!(out.contains("explore.evaluations"));
        // --json without a path is a usage error
        assert!(matches!(s.exec("metrics --json"), Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn measure_command() {
        let mut s = ready();
        let out = s.exec("measure group=kind node=sum:level").unwrap();
        assert!(out.contains("node"));
        let out = s
            .exec("measure group=kind node=avg:level edge=count")
            .unwrap();
        assert!(out.contains("="));
        assert!(matches!(
            s.exec("measure group=kind node=median:level"),
            Err(CliError::Usage(_))
        ));
        // random graphs have no edge values → sum rejected
        assert!(matches!(
            s.exec("measure group=kind edge=sum"),
            Err(CliError::Graph(_)) | Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn zoom_replaces_graph() {
        let mut s = ready();
        let before = s.exec("stats").unwrap();
        let out = s.exec("zoom window=2 semantics=any").unwrap();
        assert!(out.contains("3 coarse points"));
        let after = s.exec("stats").unwrap();
        assert_ne!(before, after);
    }

    #[test]
    fn save_and_load_roundtrip() {
        let mut s = ready();
        let dir = std::env::temp_dir().join(format!("gt_cli_io_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        s.exec(&format!("save {}", dir.display())).unwrap();
        let mut s2 = Session::new();
        let out = s2.exec(&format!("load {}", dir.display())).unwrap();
        assert!(out.contains("loaded"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn session_sparse_mode_applies_to_generated_and_zoomed_graphs() {
        let mut s = Session::new().with_sparse_mode(SparseMode::ForceSparse);
        s.exec("generate random seed=7").unwrap();
        let g = s.graph_arc().unwrap();
        assert!(g.node_presence_columns().col(0).is_sparse());
        // a derived graph (zoom) inherits the policy
        s.exec("zoom window=2 semantics=any").unwrap();
        let z = s.graph_arc().unwrap();
        assert!(z.node_presence_columns().col(0).is_sparse());
    }

    #[test]
    fn snapshot_session_applies_timeout_and_row_limits() {
        let base = ready();
        let snap = base.graph_arc().unwrap();
        // a zero timeout cancels explore at its first checkpoint
        let mut s = Session::for_snapshot(
            Arc::clone(&snap),
            QueryLimits {
                timeout_ms: Some(0),
                ..QueryLimits::default()
            },
        );
        assert!(matches!(
            s.exec("explore event=stability semantics=union extend=new k=1 attrs=kind"),
            Err(CliError::Graph(tempo_graph::GraphError::Cancelled(_)))
        ));
        // a zero row limit truncates the listing with a note
        let mut s = Session::for_snapshot(
            snap,
            QueryLimits {
                max_rows: Some(0),
                ..QueryLimits::default()
            },
        );
        assert_eq!(s.limits().max_rows, Some(0));
        let out = s
            .exec("explore event=stability semantics=union extend=new k=1 attrs=kind")
            .unwrap();
        assert!(out.contains("more rows (limit 0)"), "{out}");
        // the untruncated run over the same shared snapshot still works
        s.set_limits(QueryLimits::default());
        let out = s
            .exec("explore event=stability semantics=union extend=new k=1 attrs=kind")
            .unwrap();
        assert!(!out.contains("more rows"));
    }

    #[test]
    fn snapshot_session_shard_limit_routes_sharded_explore() {
        let base = ready();
        let snap = base.graph_arc().unwrap();
        let line = "explore event=stability semantics=union extend=new k=1 attrs=kind";
        let mut plain = Session::for_snapshot(Arc::clone(&snap), QueryLimits::default());
        let expected = plain.exec(line).unwrap();
        // the sharded route is bit-identical, so the rendering matches too
        let mut sharded = Session::for_snapshot(
            Arc::clone(&snap),
            QueryLimits {
                shards: Some(4),
                ..QueryLimits::default()
            },
        );
        assert_eq!(sharded.exec(line).unwrap(), expected);
        // shards=1 keeps the plain engine and agrees as well
        sharded.set_limits(QueryLimits {
            shards: Some(1),
            ..QueryLimits::default()
        });
        assert_eq!(sharded.exec(line).unwrap(), expected);
        // budget checkpoints still fire inside sharded evaluation
        let mut timed = Session::for_snapshot(
            snap,
            QueryLimits {
                timeout_ms: Some(0),
                shards: Some(4),
                ..QueryLimits::default()
            },
        );
        assert!(matches!(
            timed.exec(line),
            Err(CliError::Graph(tempo_graph::GraphError::Cancelled(_)))
        ));
    }

    #[test]
    fn filter_op_eval() {
        assert!(FilterOp::Gt.eval(5, 4));
        assert!(!FilterOp::Gt.eval(4, 4));
        assert!(FilterOp::Ge.eval(4, 4));
        assert!(FilterOp::Lt.eval(3, 4));
        assert!(FilterOp::Le.eval(4, 4));
        assert!(FilterOp::Eq.eval(4, 4));
        assert!(!FilterOp::Eq.eval(5, 4));
    }
}
