//! Parsing of `append` patch tokens into a [`TimepointPatch`], shared by
//! the interactive shell (`append <label> …`) and `tempo-server`
//! (`append <snapshot> <label> …`).

use crate::error::CliError;
use tempo_columnar::Value;
use tempo_graph::{AttrId, TemporalGraph, TimepointPatch};

/// The patch-token grammar, shown in usage errors (the server prefixes a
/// `<snapshot>` argument).
pub const PATCH_USAGE: &str =
    "[node=N] [edge=U,V] [tv=N,ATTR,VAL] [static=N,ATTR,VAL] [edgeval=U,V,VAL]";

/// Builds a [`TimepointPatch`] from `append`'s kwarg tokens, resolving
/// attribute names and values against the graph's schema.
///
/// # Errors
/// [`CliError::Usage`] on malformed tokens, [`CliError::Unknown`] for
/// attributes or values the schema cannot resolve.
pub fn parse_patch(
    graph: &TemporalGraph,
    label: &str,
    args: &[String],
) -> Result<TimepointPatch, CliError> {
    let mut patch = TimepointPatch::new(label);
    let pair = |v: &str, what: &str| -> Result<(String, String), CliError> {
        v.split_once(',')
            .map(|(a, b)| (a.trim().to_owned(), b.trim().to_owned()))
            .ok_or_else(|| CliError::Usage(format!("{what}=U,V")))
    };
    for a in args {
        if let Some(v) = a.strip_prefix("node=") {
            patch.mark_node(v.trim());
        } else if let Some(v) = a.strip_prefix("edge=") {
            let (u, w) = pair(v, "edge")?;
            patch.add_edge(u, w);
        } else if let Some(v) = a.strip_prefix("tv=") {
            let (node, attr, value) = attr_triple(graph, v, "tv")?;
            patch.set_time_varying(node, attr, value);
        } else if let Some(v) = a.strip_prefix("static=") {
            let (node, attr, value) = attr_triple(graph, v, "static")?;
            patch.set_static(node, attr, value);
        } else if let Some(v) = a.strip_prefix("edgeval=") {
            let parts: Vec<&str> = v.splitn(3, ',').collect();
            let [u, w, val] = parts[..] else {
                return Err(CliError::Usage("edgeval=U,V,VAL".into()));
            };
            let value = val
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| CliError::Usage("edgeval value must be an integer".into()))?;
            patch.set_edge_value(u.trim(), w.trim(), value);
        } else {
            return Err(CliError::Usage(format!("unexpected append token {a:?}")));
        }
    }
    Ok(patch)
}

/// Parses `NODE,ATTR,VALUE`, resolving the attribute by name and the value
/// as a categorical label of that attribute first, then as an integer.
fn attr_triple(
    graph: &TemporalGraph,
    spec: &str,
    what: &str,
) -> Result<(String, AttrId, Value), CliError> {
    let parts: Vec<&str> = spec.splitn(3, ',').collect();
    let [node, attr_name, val] = parts[..] else {
        return Err(CliError::Usage(format!("{what}=NODE,ATTR,VALUE")));
    };
    let attr = graph
        .schema()
        .id(attr_name.trim())
        .map_err(|_| CliError::Unknown(format!("attribute {attr_name:?}")))?;
    let token = val.trim();
    let value = match graph.schema().category(attr, token) {
        Some(v) => v,
        None => token
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| CliError::Unknown(format!("value {token:?} for attribute")))?,
    };
    Ok((node.trim().to_owned(), attr, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_patch_resolves_schema_values() {
        let g = tempo_graph::fixtures::fig1();
        let gender = g.schema().id("gender").expect("fig1 has gender");
        let args: Vec<String> = [
            "node=u9",
            "edge=u1,u9",
            "tv=u9,publications,4",
            "static=u9,gender,f",
            "edgeval=u1,u9,7",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let patch = parse_patch(&g, "t3", &args).expect("valid patch");
        assert_eq!(patch.label(), "t3");
        // the categorical label resolves through the schema …
        assert!(g.schema().category(gender, "f").is_some());
        // … so a token that is neither a category nor an int is rejected
        assert!(parse_patch(&g, "t3", &["static=u9,gender,zzz".to_owned()]).is_err());
        // malformed tokens are usage errors
        assert!(parse_patch(&g, "t3", &["edge=u1".to_owned()]).is_err());
        assert!(parse_patch(&g, "t3", &["tv=u9,publications".to_owned()]).is_err());
        assert!(parse_patch(&g, "t3", &["tv=u9,bogus,1".to_owned()]).is_err());
        assert!(parse_patch(&g, "t3", &["edgeval=u1,u9,notanint".to_owned()]).is_err());
        assert!(parse_patch(&g, "t3", &["wat".to_owned()]).is_err());
    }
}
