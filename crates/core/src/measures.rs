//! Aggregate measures beyond COUNT.
//!
//! Definition 2.6 leaves the weight functions `f_V` / `f_E` open and the
//! paper notes that "other aggregations may be supported, if edges are
//! attributed as well". This module supplies them: SUM / MIN / MAX / AVG of
//! a numeric node attribute per aggregate node, and of the per-timepoint
//! edge values (see `TemporalGraph::edge_value`) per aggregate edge.
//!
//! Measures are computed over *appearances* — each (entity, time point)
//! where the entity exists contributes one observation, matching the ALL
//! counting semantics. Appearances without a numeric observation (a `Null`
//! attribute or edge value) count toward COUNT but not toward
//! SUM/MIN/MAX/AVG.

use std::collections::HashMap;
use tempo_columnar::{Value, ValueTuple};
use tempo_graph::{AttrId, GraphError, TemporalGraph};

/// Measure over the nodes of each aggregate group.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeMeasure {
    /// Number of appearances (= the ALL weight).
    Count,
    /// Sum of a numeric attribute over appearances.
    Sum(AttrId),
    /// Minimum observed value of a numeric attribute.
    Min(AttrId),
    /// Maximum observed value of a numeric attribute.
    Max(AttrId),
    /// Mean observed value of a numeric attribute.
    Avg(AttrId),
}

/// Measure over the edges of each aggregate group pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeMeasure {
    /// Number of edge appearances (= the ALL weight).
    Count,
    /// Sum of the edge values over appearances.
    SumValues,
    /// Minimum observed edge value.
    MinValues,
    /// Maximum observed edge value.
    MaxValues,
    /// Mean observed edge value.
    AvgValues,
}

impl EdgeMeasure {
    fn needs_values(self) -> bool {
        !matches!(self, EdgeMeasure::Count)
    }
}

/// Streaming accumulator for one group.
#[derive(Clone, Copy, Debug, Default)]
struct Acc {
    count: u64,
    observed: u64,
    sum: i64,
    min: i64,
    max: i64,
}

impl Acc {
    fn push(&mut self, v: Option<i64>) {
        self.count += 1;
        if let Some(x) = v {
            if self.observed == 0 {
                self.min = x;
                self.max = x;
            } else {
                self.min = self.min.min(x);
                self.max = self.max.max(x);
            }
            self.observed += 1;
            self.sum += x;
        }
    }

    fn finish_node(&self, m: NodeMeasure) -> Option<f64> {
        match m {
            NodeMeasure::Count => Some(self.count as f64),
            NodeMeasure::Sum(_) => Some(self.sum as f64),
            NodeMeasure::Min(_) => (self.observed > 0).then_some(self.min as f64),
            NodeMeasure::Max(_) => (self.observed > 0).then_some(self.max as f64),
            NodeMeasure::Avg(_) => {
                (self.observed > 0).then(|| self.sum as f64 / self.observed as f64)
            }
        }
    }

    fn finish_edge(&self, m: EdgeMeasure) -> Option<f64> {
        match m {
            EdgeMeasure::Count => Some(self.count as f64),
            EdgeMeasure::SumValues => Some(self.sum as f64),
            EdgeMeasure::MinValues => (self.observed > 0).then_some(self.min as f64),
            EdgeMeasure::MaxValues => (self.observed > 0).then_some(self.max as f64),
            EdgeMeasure::AvgValues => {
                (self.observed > 0).then(|| self.sum as f64 / self.observed as f64)
            }
        }
    }
}

/// An aggregate graph whose weights come from arbitrary measures.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureAggregate {
    group_names: Vec<String>,
    nodes: HashMap<ValueTuple, f64>,
    edges: HashMap<(ValueTuple, ValueTuple), f64>,
}

impl MeasureAggregate {
    /// Names of the grouping attributes.
    pub fn group_names(&self) -> &[String] {
        &self.group_names
    }

    /// Measure value of an aggregate node, if the group had observations.
    pub fn node_value(&self, tuple: &[Value]) -> Option<f64> {
        self.nodes.get(tuple).copied()
    }

    /// Measure value of an aggregate edge, if the pair had observations.
    pub fn edge_value(&self, src: &[Value], dst: &[Value]) -> Option<f64> {
        self.edges.get(&(src.to_vec(), dst.to_vec())).copied()
    }

    /// Aggregate nodes sorted by tuple.
    pub fn iter_nodes(&self) -> Vec<(&ValueTuple, f64)> {
        let mut v: Vec<_> = self.nodes.iter().map(|(k, &w)| (k, w)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Aggregate edges sorted by tuple pair.
    pub fn iter_edges(&self) -> Vec<(&(ValueTuple, ValueTuple), f64)> {
        let mut v: Vec<_> = self.edges.iter().map(|(k, &w)| (k, w)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

/// Aggregates `g` grouped by `group`, computing `node_measure` per
/// aggregate node and `edge_measure` per aggregate edge.
///
/// ```
/// use graphtempo::measures::{aggregate_measure, EdgeMeasure, NodeMeasure};
/// use tempo_graph::fixtures::fig1;
///
/// let g = fig1();
/// let gender = g.schema().id("gender").unwrap();
/// let pubs = g.schema().id("publications").unwrap();
/// // total publications per gender across all appearances
/// let agg = aggregate_measure(
///     &g,
///     &[gender],
///     NodeMeasure::Sum(pubs),
///     EdgeMeasure::Count,
/// )
/// .unwrap();
/// let f = g.schema().category(gender, "f").unwrap();
/// // female appearances: u2 (1,1,1) + u3 (1) + u4 (2,1,1) = 8
/// assert_eq!(agg.node_value(&[f]), Some(8.0));
/// ```
///
/// # Errors
/// Returns an error if an edge-value measure is requested on a graph with
/// no edge values.
pub fn aggregate_measure(
    g: &TemporalGraph,
    group: &[AttrId],
    node_measure: NodeMeasure,
    edge_measure: EdgeMeasure,
) -> Result<MeasureAggregate, GraphError> {
    if edge_measure.needs_values() && !g.has_edge_values() {
        return Err(GraphError::UnknownAttribute(
            "edge values (graph has none)".to_owned(),
        ));
    }
    let group_names: Vec<String> = group
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();
    let measured_attr = match node_measure {
        NodeMeasure::Count => None,
        NodeMeasure::Sum(a) | NodeMeasure::Min(a) | NodeMeasure::Max(a) | NodeMeasure::Avg(a) => {
            Some(a)
        }
    };
    let tuple_of = |n: tempo_graph::NodeId, t: tempo_graph::TimePoint| -> ValueTuple {
        group.iter().map(|&a| g.attr_value(n, a, t)).collect()
    };

    let mut node_acc: HashMap<ValueTuple, Acc> = HashMap::new();
    for n in g.node_ids() {
        for t in g.node_timestamp(n).iter() {
            let obs = measured_attr.and_then(|a| g.attr_value(n, a, t).as_int());
            node_acc.entry(tuple_of(n, t)).or_default().push(obs);
        }
    }
    let mut edge_acc: HashMap<(ValueTuple, ValueTuple), Acc> = HashMap::new();
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        for t in g.edge_timestamp(e).iter() {
            let obs = if edge_measure.needs_values() {
                g.edge_value(e, t).as_int()
            } else {
                None
            };
            edge_acc
                .entry((tuple_of(u, t), tuple_of(v, t)))
                .or_default()
                .push(obs);
        }
    }

    Ok(MeasureAggregate {
        group_names,
        nodes: node_acc
            .into_iter()
            .filter_map(|(k, acc)| acc.finish_node(node_measure).map(|v| (k, v)))
            .collect(),
        edges: edge_acc
            .into_iter()
            .filter_map(|(k, acc)| acc.finish_edge(edge_measure).map(|v| (k, v)))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures::fig1;
    use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain, TimePoint};

    fn gender_and_pubs(g: &TemporalGraph) -> (AttrId, AttrId) {
        (
            g.schema().id("gender").unwrap(),
            g.schema().id("publications").unwrap(),
        )
    }

    #[test]
    fn count_matches_all_aggregation() {
        let g = fig1();
        let (gender, _) = gender_and_pubs(&g);
        let m = aggregate_measure(&g, &[gender], NodeMeasure::Count, EdgeMeasure::Count).unwrap();
        let all = crate::aggregate::aggregate(&g, &[gender], crate::aggregate::AggMode::All);
        for (tuple, w) in all.iter_nodes() {
            assert_eq!(m.node_value(tuple), Some(w as f64));
        }
        for ((s, d), w) in all.iter_edges() {
            assert_eq!(m.edge_value(s, d), Some(w as f64));
        }
    }

    #[test]
    fn sum_min_max_avg_of_publications() {
        let g = fig1();
        let (gender, pubs) = gender_and_pubs(&g);
        let f = g.schema().category(gender, "f").unwrap();
        let m_var = g.schema().category(gender, "m").unwrap();
        // female appearances: u2 1,1,1; u3 1; u4 2,1,1 → sum 8, min 1, max 2
        let sum =
            aggregate_measure(&g, &[gender], NodeMeasure::Sum(pubs), EdgeMeasure::Count).unwrap();
        assert_eq!(sum.node_value(std::slice::from_ref(&f)), Some(8.0));
        // male appearances: u1 3,1; u5 3 → sum 7
        assert_eq!(sum.node_value(std::slice::from_ref(&m_var)), Some(7.0));
        let min =
            aggregate_measure(&g, &[gender], NodeMeasure::Min(pubs), EdgeMeasure::Count).unwrap();
        assert_eq!(min.node_value(std::slice::from_ref(&f)), Some(1.0));
        let max =
            aggregate_measure(&g, &[gender], NodeMeasure::Max(pubs), EdgeMeasure::Count).unwrap();
        assert_eq!(max.node_value(std::slice::from_ref(&f)), Some(2.0));
        assert_eq!(max.node_value(std::slice::from_ref(&m_var)), Some(3.0));
        let avg =
            aggregate_measure(&g, &[gender], NodeMeasure::Avg(pubs), EdgeMeasure::Count).unwrap();
        let got = avg.node_value(&[f]).unwrap();
        assert!((got - 8.0 / 7.0).abs() < 1e-9, "avg {got}");
    }

    #[test]
    fn edge_value_measures() {
        let mut schema = AttributeSchema::new();
        schema.declare("kind", Temporality::Static).unwrap();
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema);
        let kind = b.schema().id("kind").unwrap();
        let u = b.add_node("u").unwrap();
        let v = b.add_node("v").unwrap();
        let w = b.add_node("w").unwrap();
        let k = b.intern_category(kind, "a");
        for n in [u, v, w] {
            b.set_static(n, kind, k.clone()).unwrap();
        }
        // co-authorship counts as edge values
        b.set_edge_value(u, v, TimePoint(0), Value::Int(2)).unwrap();
        b.set_edge_value(u, v, TimePoint(1), Value::Int(4)).unwrap();
        b.set_edge_value(u, w, TimePoint(0), Value::Int(1)).unwrap();
        let g = b.build().unwrap();

        let sum =
            aggregate_measure(&g, &[kind], NodeMeasure::Count, EdgeMeasure::SumValues).unwrap();
        assert_eq!(
            sum.edge_value(std::slice::from_ref(&k), std::slice::from_ref(&k)),
            Some(7.0)
        );
        let avg =
            aggregate_measure(&g, &[kind], NodeMeasure::Count, EdgeMeasure::AvgValues).unwrap();
        assert!(
            (avg.edge_value(std::slice::from_ref(&k), std::slice::from_ref(&k))
                .unwrap()
                - 7.0 / 3.0)
                .abs()
                < 1e-9
        );
        let max =
            aggregate_measure(&g, &[kind], NodeMeasure::Count, EdgeMeasure::MaxValues).unwrap();
        assert_eq!(
            max.edge_value(std::slice::from_ref(&k), std::slice::from_ref(&k)),
            Some(4.0)
        );
    }

    #[test]
    fn edge_value_measure_requires_values() {
        let g = fig1(); // fig1 has no edge values
        let gender = g.schema().id("gender").unwrap();
        assert!(
            aggregate_measure(&g, &[gender], NodeMeasure::Count, EdgeMeasure::SumValues).is_err()
        );
    }

    #[test]
    fn groups_without_observations_are_absent() {
        // min/max of a value no group member observes → group omitted
        let mut schema = AttributeSchema::new();
        schema.declare("kind", Temporality::Static).unwrap();
        schema.declare("score", Temporality::TimeVarying).unwrap();
        let mut b = GraphBuilder::new(TimeDomain::indexed(1), schema);
        let kind = b.schema().id("kind").unwrap();
        let score = b.schema().id("score").unwrap();
        let u = b.add_node("u").unwrap();
        let k = b.intern_category(kind, "a");
        b.set_static(u, kind, k.clone()).unwrap();
        b.set_presence(u, TimePoint(0)).unwrap();
        let g = b.build().unwrap();
        // score never set → Min has no observation
        let min =
            aggregate_measure(&g, &[kind], NodeMeasure::Min(score), EdgeMeasure::Count).unwrap();
        assert_eq!(min.node_value(std::slice::from_ref(&k)), None);
        // but Count still sees the appearance
        let count = aggregate_measure(&g, &[kind], NodeMeasure::Count, EdgeMeasure::Count).unwrap();
        assert_eq!(count.node_value(std::slice::from_ref(&k)), Some(1.0));
    }
}
