//! Graph-OLAP cube over attribute dimensions and time (§4.3).
//!
//! Materializing every (attribute subset × interval) aggregate is
//! unrealistic; GraphTempo instead materializes the *finest* level — the
//! full attribute set at the unit of time — and derives everything else:
//!
//! * coarser attribute levels via D-distributive roll-up
//!   ([`crate::aggregate::rollup`]);
//! * coarser time via T-distributive union ([`crate::materialize`]).
//!
//! [`GraphCube`] packages this: one per-timepoint store on all dimensions,
//! answering any (subset, scope) OLAP query without touching the original
//! graph, plus roll-up / drill-down navigation between attribute levels.

use crate::aggregate::{rollup, AggregateGraph};
use crate::materialize::TimepointStore;
use tempo_graph::{AttrId, GraphError, TemporalGraph, TimePoint, TimeSet};

/// A cuboid address: which attribute dimensions are kept, by name.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Level(Vec<String>);

impl Level {
    /// Creates a level from attribute names (order defines tuple order).
    pub fn new<S: Into<String>>(names: Vec<S>) -> Self {
        Level(names.into_iter().map(Into::into).collect())
    }

    /// The attribute names of this level.
    pub fn names(&self) -> &[String] {
        &self.0
    }

    /// True if this level keeps a subset of `other`'s attributes.
    pub fn is_subset_of(&self, other: &Level) -> bool {
        self.0.iter().all(|n| other.0.contains(n))
    }
}

/// The OLAP cube: per-timepoint ALL-aggregates on the full dimension set.
///
/// ```
/// use graphtempo::cube::{GraphCube, Level};
/// use tempo_graph::{fixtures::fig1, TimePoint};
///
/// let g = fig1();
/// let attrs = vec![
///     g.schema().id("gender").unwrap(),
///     g.schema().id("publications").unwrap(),
/// ];
/// let cube = GraphCube::build(&g, &attrs, 2);
/// // slice t0 at the coarser (gender) level — derived by roll-up, the
/// // original graph is never touched again
/// let by_gender = cube.slice(&Level::new(vec!["gender"]), TimePoint(0)).unwrap();
/// assert_eq!(by_gender.total_node_weight(), 4); // four authors at t0
/// ```
pub struct GraphCube {
    dimensions: Vec<String>,
    store: TimepointStore,
    domain_len: usize,
}

impl GraphCube {
    /// Builds the cube over all of `attrs` with `threads` workers
    /// (ALL semantics — the T-distributive case).
    pub fn build(g: &TemporalGraph, attrs: &[AttrId], threads: usize) -> Self {
        let dimensions = attrs
            .iter()
            .map(|&a| g.schema().def(a).name().to_owned())
            .collect();
        GraphCube {
            dimensions,
            store: TimepointStore::build_parallel(g, attrs, threads),
            domain_len: g.domain().len(),
        }
    }

    /// The full dimension set (the cube's base level).
    pub fn base_level(&self) -> Level {
        Level(self.dimensions.clone())
    }

    /// The apex aggregate at one time point and one level.
    ///
    /// # Errors
    /// Returns an error if the level is not a subset of the dimensions.
    pub fn slice(&self, level: &Level, t: TimePoint) -> Result<AggregateGraph, GraphError> {
        self.check_level(level)?;
        let names: Vec<&str> = level.names().iter().map(String::as_str).collect();
        rollup(self.store.at(t), &names)
    }

    /// The aggregate over a time scope at a level, combining per-timepoint
    /// cuboids T-distributively (union semantics, ALL weights).
    ///
    /// # Errors
    /// Returns an error on an unknown level or an empty/mismatched scope.
    pub fn query(&self, level: &Level, scope: &TimeSet) -> Result<AggregateGraph, GraphError> {
        self.check_level(level)?;
        let full = self.store.union_all(scope)?;
        let names: Vec<&str> = level.names().iter().map(String::as_str).collect();
        rollup(&full, &names)
    }

    /// Rolls up one dimension (removes it), returning the coarser level.
    ///
    /// # Errors
    /// Returns an error if the dimension is not part of the level.
    pub fn roll_up(&self, level: &Level, drop: &str) -> Result<Level, GraphError> {
        if !level.names().iter().any(|n| n == drop) {
            return Err(GraphError::UnknownAttribute(drop.to_owned()));
        }
        Ok(Level(
            level
                .names()
                .iter()
                .filter(|n| n.as_str() != drop)
                .cloned()
                .collect(),
        ))
    }

    /// Drills down by adding one dimension back, returning the finer level.
    ///
    /// # Errors
    /// Returns an error if the dimension is unknown or already present.
    pub fn drill_down(&self, level: &Level, add: &str) -> Result<Level, GraphError> {
        if !self.dimensions.iter().any(|n| n == add) {
            return Err(GraphError::UnknownAttribute(add.to_owned()));
        }
        if level.names().iter().any(|n| n == add) {
            return Err(GraphError::DuplicateAttribute(add.to_owned()));
        }
        let mut names = level.names().to_vec();
        names.push(add.to_owned());
        Ok(Level(names))
    }

    /// Every level of the attribute lattice (all non-empty subsets of the
    /// dimensions, in declaration order within each subset).
    pub fn all_levels(&self) -> Vec<Level> {
        let k = self.dimensions.len();
        let mut out = Vec::new();
        for mask in 1u32..(1 << k) {
            let names: Vec<String> = (0..k)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| self.dimensions[i].clone())
                .collect();
            out.push(Level(names));
        }
        out
    }

    /// Size of the underlying time domain.
    pub fn domain_len(&self) -> usize {
        self.domain_len
    }

    fn check_level(&self, level: &Level) -> Result<(), GraphError> {
        for n in level.names() {
            if !self.dimensions.iter().any(|d| d == n) {
                return Err(GraphError::UnknownAttribute(n.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate, AggMode};
    use crate::ops::union;
    use tempo_graph::fixtures::fig1;

    fn cube() -> (TemporalGraph, GraphCube) {
        let g = fig1();
        let attrs = vec![
            g.schema().id("gender").unwrap(),
            g.schema().id("publications").unwrap(),
        ];
        let cube = GraphCube::build(&g, &attrs, 2);
        (g, cube)
    }

    #[test]
    fn levels_and_lattice() {
        let (_, cube) = cube();
        assert_eq!(cube.base_level().names(), &["gender", "publications"]);
        let levels = cube.all_levels();
        assert_eq!(levels.len(), 3); // {G}, {P}, {G,P}
        let g_level = Level::new(vec!["gender"]);
        assert!(g_level.is_subset_of(&cube.base_level()));
        assert!(!cube.base_level().is_subset_of(&g_level));
    }

    #[test]
    fn slice_matches_direct_aggregation() {
        let (g, cube) = cube();
        for t in g.domain().iter() {
            for level in cube.all_levels() {
                let from_cube = cube.slice(&level, t).unwrap();
                let ids: Vec<AttrId> = level
                    .names()
                    .iter()
                    .map(|n| g.schema().id(n).unwrap())
                    .collect();
                let direct = crate::materialize::aggregate_at_point(&g, &ids, t);
                assert_eq!(from_cube, direct, "level {level:?} at {t:?}");
            }
        }
    }

    #[test]
    fn query_matches_union_aggregate() {
        let (g, cube) = cube();
        let t1 = TimeSet::from_indices(3, [0]);
        let t2 = TimeSet::from_indices(3, [1, 2]);
        let scope = t1.union(&t2);
        let level = Level::new(vec!["gender"]);
        let from_cube = cube.query(&level, &scope).unwrap();
        let u = union(&g, &t1, &t2).unwrap();
        let direct = aggregate(&u, &[u.schema().id("gender").unwrap()], AggMode::All);
        assert_eq!(from_cube, direct);
    }

    #[test]
    fn rollup_drilldown_navigation() {
        let (_, cube) = cube();
        let base = cube.base_level();
        let coarse = cube.roll_up(&base, "publications").unwrap();
        assert_eq!(coarse.names(), &["gender"]);
        let fine = cube.drill_down(&coarse, "publications").unwrap();
        assert_eq!(fine.names(), &["gender", "publications"]);
        assert!(cube.roll_up(&coarse, "publications").is_err());
        assert!(cube.drill_down(&base, "publications").is_err());
        assert!(cube.drill_down(&base, "nope").is_err());
    }

    #[test]
    fn unknown_level_rejected() {
        let (_, cube) = cube();
        let bad = Level::new(vec!["age"]);
        assert!(cube.slice(&bad, TimePoint(0)).is_err());
        assert!(cube.query(&bad, &TimeSet::from_indices(3, [0])).is_err());
    }

    #[test]
    fn empty_scope_rejected() {
        let (_, cube) = cube();
        assert!(cube.query(&cube.base_level(), &TimeSet::empty(3)).is_err());
    }
}
