//! Partial materialization (§4.3).
//!
//! Materializing every combination of attributes × interval is unrealistic,
//! so GraphTempo precomputes only aggregates on the *unit of time* and on
//! the *full attribute set*, and derives coarser aggregates from them:
//!
//! * **T-distributivity** — the ALL-aggregate of a union graph over any
//!   scope is the pointwise sum of per-timepoint ALL-aggregates
//!   ([`TimepointStore::union_all`]). Distinct union aggregates are *not*
//!   T-distributive (distinct nodes must be identified across points).
//! * **D-distributivity** — the aggregate on a subset of attributes is a
//!   roll-up of the finer aggregate ([`crate::aggregate::rollup`]).
//!
//! [`TimepointStore::build_parallel`] mirrors the paper's use of the Modin
//! multiprocess dataframe library by fanning per-timepoint aggregation out
//! over `crossbeam` scoped threads.

use crate::aggregate::AggregateGraph;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use tempo_columnar::ValueTuple;
use tempo_graph::{AttrId, GraphError, TemporalGraph, TimePoint, TimeSet};

/// Computes the ALL-aggregate of the single time point `t` directly from
/// the source graph (equivalent to aggregating the projection on `t`, but
/// without materializing it).
pub fn aggregate_at_point(g: &TemporalGraph, attrs: &[AttrId], t: TimePoint) -> AggregateGraph {
    let names: Vec<String> = attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();
    let mut agg = AggregateGraph::new(names);
    let tuple_of = |n: tempo_graph::NodeId| -> ValueTuple {
        attrs.iter().map(|&a| g.attr_value(n, a, t)).collect()
    };
    for n in g.node_ids() {
        if g.node_alive_at(n, t) {
            agg.add_node_weight(tuple_of(n), 1);
        }
    }
    for e in g.edge_ids() {
        if g.edge_alive_at(e, t) {
            let (u, v) = g.edge_endpoints(e);
            agg.add_edge_weight(tuple_of(u), tuple_of(v), 1);
        }
    }
    agg
}

/// Precomputed per-timepoint ALL-aggregates on a fixed attribute set.
///
/// ```
/// use graphtempo::materialize::TimepointStore;
/// use graphtempo::aggregate::{aggregate, AggMode};
/// use graphtempo::ops::union;
/// use tempo_graph::{fixtures::fig1, TimePoint, TimeSet};
///
/// let g = fig1();
/// let gender = g.schema().id("gender").unwrap();
/// let store = TimepointStore::build(&g, &[gender]);
///
/// // T-distributivity: combining per-timepoint aggregates equals the
/// // from-scratch ALL aggregation of the union graph.
/// let t1 = TimeSet::point(3, TimePoint(0));
/// let t2 = TimeSet::range(3, 1, 2);
/// let fast = store.union_all(&t1.union(&t2)).unwrap();
/// let direct = aggregate(&union(&g, &t1, &t2).unwrap(), &[gender], AggMode::All);
/// assert_eq!(fast, direct);
/// ```
#[derive(Clone, Debug)]
pub struct TimepointStore {
    attrs: Vec<AttrId>,
    per_tp: Vec<AggregateGraph>,
}

/// Comma-joined schema names of `attrs`, used to label per-attribute-set
/// build-latency histograms.
fn attr_label(g: &TemporalGraph, attrs: &[AttrId]) -> String {
    attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect::<Vec<_>>()
        .join(",")
}

/// Starts the pair of build-latency spans (overall + per attribute set).
fn build_spans(g: &TemporalGraph, attrs: &[AttrId]) -> [tempo_instrument::SpanGuard; 2] {
    let ins = tempo_instrument::global();
    [
        ins.histogram("materialize.store_build_ns").span(),
        ins.histogram(&format!(
            "materialize.store_build_ns{{attrs={}}}",
            attr_label(g, attrs)
        ))
        .span(),
    ]
}

impl TimepointStore {
    /// Builds the store sequentially.
    pub fn build(g: &TemporalGraph, attrs: &[AttrId]) -> Self {
        let _spans = build_spans(g, attrs);
        let per_tp = g
            .domain()
            .iter()
            .map(|t| aggregate_at_point(g, attrs, t))
            .collect();
        TimepointStore {
            attrs: attrs.to_vec(),
            per_tp,
        }
    }

    /// Builds the store with per-timepoint aggregation fanned out over up
    /// to `threads` scoped worker threads.
    ///
    /// # Panics
    /// Panics if a worker thread panics.
    pub fn build_parallel(g: &TemporalGraph, attrs: &[AttrId], threads: usize) -> Self {
        let nt = g.domain().len();
        let threads = threads.clamp(1, nt);
        if threads == 1 {
            return Self::build(g, attrs);
        }
        let _spans = build_spans(g, attrs);
        let mut per_tp: Vec<Option<AggregateGraph>> = vec![None; nt];
        let mut slots: Vec<(usize, &mut Option<AggregateGraph>)> =
            per_tp.iter_mut().enumerate().collect();
        let chunk = nt.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for batch in slots.chunks_mut(chunk) {
                scope.spawn(move |_| {
                    for (t, slot) in batch.iter_mut() {
                        **slot = Some(aggregate_at_point(g, attrs, TimePoint(*t as u32)));
                    }
                });
            }
        })
        .expect("invariant: aggregation workers propagate errors instead of panicking");
        TimepointStore {
            attrs: attrs.to_vec(),
            per_tp: per_tp
                .into_iter()
                .map(|a| a.expect("invariant: the scoped loop fills every time-point slot"))
                .collect(),
        }
    }

    /// The attribute ids this store aggregates on.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Incrementally appends the aggregates of the time points the graph
    /// gained since the store was built (the maintenance path when a new
    /// snapshot arrives via `GraphBuilder::from_graph`).
    ///
    /// # Errors
    /// Returns an error if the graph has fewer time points than the store
    /// (stores never shrink).
    pub fn append_new_points(&mut self, g: &TemporalGraph) -> Result<usize, GraphError> {
        let nt = g.domain().len();
        if nt < self.per_tp.len() {
            return Err(GraphError::UnknownTimePoint(format!(
                "graph has {nt} points but the store already covers {}",
                self.per_tp.len()
            )));
        }
        let added = nt - self.per_tp.len();
        for t in self.per_tp.len()..nt {
            self.per_tp
                .push(aggregate_at_point(g, &self.attrs, TimePoint(t as u32)));
        }
        tempo_instrument::global()
            .counter("materialize.points_appended")
            .add(added as u64);
        Ok(added)
    }

    /// Number of time points covered.
    pub fn len(&self) -> usize {
        self.per_tp.len()
    }

    /// True if no time points are stored (never the case for a built store).
    pub fn is_empty(&self) -> bool {
        self.per_tp.is_empty()
    }

    /// The precomputed aggregate of time point `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range.
    pub fn at(&self, t: TimePoint) -> &AggregateGraph {
        &self.per_tp[t.index()]
    }

    /// T-distributive union (§4.3): the ALL-aggregate of the union graph
    /// over `scope`, computed by summing the per-timepoint aggregates —
    /// no access to the original temporal graph.
    ///
    /// # Errors
    /// Returns an error if `scope` is empty or exceeds the stored domain.
    pub fn union_all(&self, scope: &TimeSet) -> Result<AggregateGraph, GraphError> {
        tempo_graph::require_non_empty(scope, "scope")?;
        if scope.domain_len() != self.per_tp.len() {
            return Err(GraphError::UnknownTimePoint(format!(
                "scope over domain of {} in store of {}",
                scope.domain_len(),
                self.per_tp.len()
            )));
        }
        let mut iter = scope.iter();
        let first = iter
            .next()
            .expect("invariant: scope emptiness is rejected above");
        let mut acc = self.per_tp[first.index()].clone();
        for t in iter {
            acc.merge_add(&self.per_tp[t.index()]);
        }
        Ok(acc)
    }
}

/// A lazy, thread-safe cache of [`TimepointStore`]s keyed by attribute set
/// and stamped with the graph epoch they were built at.
///
/// The cache follows one graph *lineage* across
/// [`tempo_graph::GraphVersions`] appends: every entry records
/// [`TemporalGraph::epoch`] at build time, and a lookup against a graph
/// with a different stamp is a miss that rebuilds and replaces the entry.
/// Keying on the attribute set alone used to silently return stores built
/// on a pre-append epoch — missing the appended timepoints entirely.
pub struct MaterializationCache {
    threads: usize,
    stores: Mutex<HashMap<Vec<AttrId>, StampedStore>>,
}

/// A cached store and the epoch it was built at.
type StampedStore = (u64, Arc<TimepointStore>);

impl MaterializationCache {
    /// Creates an empty cache; stores are built with `threads` workers.
    pub fn new(threads: usize) -> Self {
        MaterializationCache {
            threads: threads.max(1),
            stores: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the store for `attrs` on the epoch of `g`, building it on
    /// first use or when the cached entry was built at a different epoch.
    pub fn store_for(&self, g: &TemporalGraph, attrs: &[AttrId]) -> Arc<TimepointStore> {
        let ins = tempo_instrument::global();
        let epoch = g.epoch();
        if let Some((stamp, s)) = self.stores.lock().get(attrs) {
            if *stamp == epoch {
                ins.counter("materialize.cache.hits").inc();
                return Arc::clone(s);
            }
            ins.counter("materialize.cache.epoch_evictions").inc();
        }
        ins.counter("materialize.cache.misses").inc();
        // Build outside the lock so concurrent misses don't serialize the
        // aggregation work; last writer wins harmlessly (same-epoch stores
        // are equal, and a racing newer epoch simply re-misses).
        let built = Arc::new(TimepointStore::build_parallel(g, attrs, self.threads));
        let mut guard = self.stores.lock();
        let entry = guard
            .entry(attrs.to_vec())
            .and_modify(|e| {
                if e.0 != epoch {
                    *e = (epoch, Arc::clone(&built));
                }
            })
            .or_insert((epoch, built));
        let store = Arc::clone(&entry.1);
        ins.gauge("materialize.cache.entries")
            .set(guard.len() as i64);
        store
    }

    /// Number of distinct attribute sets cached.
    pub fn len(&self) -> usize {
        self.stores.lock().len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.stores.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate, AggMode as M};
    use crate::ops::union;
    use tempo_graph::fixtures::fig1;

    fn attrs(g: &TemporalGraph, names: &[&str]) -> Vec<AttrId> {
        names.iter().map(|n| g.schema().id(n).unwrap()).collect()
    }

    #[test]
    fn point_aggregate_matches_projection() {
        let g = fig1();
        let ga = attrs(&g, &["gender", "publications"]);
        for t in g.domain().iter() {
            let fast = aggregate_at_point(&g, &ga, t);
            let proj = crate::ops::project_point(&g, t).unwrap();
            let slow = aggregate(&proj, &attrs(&proj, &["gender", "publications"]), M::All);
            assert_eq!(fast, slow, "time {t:?}");
        }
    }

    #[test]
    fn union_all_is_t_distributive() {
        let g = fig1();
        let ga = attrs(&g, &["gender", "publications"]);
        let store = TimepointStore::build(&g, &ga);
        let t1 = TimeSet::from_indices(3, [0]);
        let t2 = TimeSet::from_indices(3, [1, 2]);
        let scope = t1.union(&t2);
        let fast = store.union_all(&scope).unwrap();
        let u = union(&g, &t1, &t2).unwrap();
        let direct = aggregate(&u, &attrs(&u, &["gender", "publications"]), M::All);
        assert_eq!(fast, direct);
    }

    #[test]
    fn union_all_rejects_bad_scope() {
        let g = fig1();
        let store = TimepointStore::build(&g, &attrs(&g, &["gender"]));
        assert!(store.union_all(&TimeSet::empty(3)).is_err());
        assert!(store.union_all(&TimeSet::from_indices(5, [0])).is_err());
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = fig1();
        let ga = attrs(&g, &["gender", "publications"]);
        let seq = TimepointStore::build(&g, &ga);
        for threads in [1, 2, 3, 8] {
            let par = TimepointStore::build_parallel(&g, &ga, threads);
            assert_eq!(par.len(), seq.len());
            for t in g.domain().iter() {
                assert_eq!(par.at(t), seq.at(t), "threads {threads}, point {t:?}");
            }
        }
    }

    #[test]
    fn append_new_points_matches_rebuild() {
        use tempo_graph::GraphBuilder;
        let g = fig1();
        let ga = attrs(&g, &["gender", "publications"]);
        let mut store = TimepointStore::build(&g, &ga);

        // extend the graph with a new year and a new appearance
        let mut b = GraphBuilder::from_graph(g, &["t3"]).unwrap();
        let u2 = b.get_or_add_node("u2");
        let u4 = b.get_or_add_node("u4");
        let pubs = b.schema().id("publications").unwrap();
        b.set_time_varying(
            u2,
            pubs,
            tempo_graph::TimePoint(3),
            tempo_columnar::Value::Int(2),
        )
        .unwrap();
        b.add_edge_at(u4, u2, tempo_graph::TimePoint(3)).unwrap();
        let g2 = b.build().unwrap();

        let added = store.append_new_points(&g2).unwrap();
        assert_eq!(added, 1);
        assert_eq!(store.len(), 4);
        let rebuilt = TimepointStore::build(&g2, &attrs(&g2, &["gender", "publications"]));
        for t in g2.domain().iter() {
            assert_eq!(store.at(t), rebuilt.at(t), "point {t:?}");
        }
        // appending again is a no-op
        assert_eq!(store.append_new_points(&g2).unwrap(), 0);
    }

    #[test]
    fn append_rejects_shrunken_graph() {
        let g = fig1();
        let ga = attrs(&g, &["gender"]);
        let mut store = TimepointStore::build(&g, &ga);
        // a graph over a smaller domain cannot back-fill the store
        let small = crate::ops::project_point(&g, tempo_graph::TimePoint(0)).unwrap();
        // project keeps the full domain, so build a truly smaller graph
        let tiny = tempo_datagen::RandomGraphConfig {
            timepoints: 2,
            ..Default::default()
        }
        .generate()
        .unwrap();
        assert!(store.append_new_points(&tiny).is_err());
        let _ = small;
    }

    #[test]
    fn cache_builds_once_per_attr_set() {
        let g = fig1();
        let cache = MaterializationCache::new(2);
        assert!(cache.is_empty());
        let ga = attrs(&g, &["gender"]);
        let s1 = cache.store_for(&g, &ga);
        let s2 = cache.store_for(&g, &ga);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.len(), 1);
        let gp = attrs(&g, &["gender", "publications"]);
        let _ = cache.store_for(&g, &gp);
        assert_eq!(cache.len(), 2);
    }

    // Regression: the cache used to key on the attribute set alone, so a
    // lookup after an append returned the pre-append store (3 timepoints)
    // forever. The epoch stamp turns that into a miss + rebuild.
    #[test]
    fn cache_rebuilds_on_epoch_mismatch() {
        use tempo_graph::{GraphVersions, TimepointPatch};
        let mut v = GraphVersions::new(fig1());
        let g0 = v.current();
        let ga = attrs(&g0, &["gender", "publications"]);
        let cache = MaterializationCache::new(1);
        let stale = cache.store_for(&g0, &ga);
        assert_eq!(stale.len(), 3);

        let pubs = g0.schema().id("publications").unwrap();
        let mut p = TimepointPatch::new("t3");
        p.add_edge("u2", "u5")
            .set_time_varying("u2", pubs, tempo_columnar::Value::Int(9));
        let g1 = v.append_timepoint(&p).unwrap();

        let fresh = cache.store_for(&g1, &ga);
        assert!(
            !Arc::ptr_eq(&stale, &fresh),
            "stale store served after append"
        );
        assert_eq!(fresh.len(), 4);
        assert_eq!(cache.len(), 1, "rebuild replaces, not accumulates");
        let rebuilt = TimepointStore::build(&g1, &ga);
        for t in g1.domain().iter() {
            assert_eq!(fresh.at(t), rebuilt.at(t), "point {t:?}");
        }
        // same epoch again is a hit; the old epoch re-misses
        assert!(Arc::ptr_eq(&fresh, &cache.store_for(&g1, &ga)));
        assert_eq!(cache.store_for(&g0, &ga).len(), 3);
    }
}
