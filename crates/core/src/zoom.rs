//! Time-granularity zooming.
//!
//! The paper's temporal operators view a graph at the granularity of its
//! elementary time points and combine them per query. A complementary
//! operation — the "zoom-out" of Aghasadeghi et al. (EDBT 2020), cited in
//! §1/§6 and a natural extension of GraphTempo — *rewrites* the graph at a
//! coarser granularity: years into decades, days into weeks. Each group of
//! consecutive points becomes one coarse point, and an entity exists at a
//! coarse point under either union semantics (it existed at *some* covered
//! point) or intersection semantics (at *every* covered point) — the same
//! two semantics of §3.1.
//!
//! Time-varying attribute values at a coarse point are taken from the
//! latest covered fine point at which the node exists (the most recent
//! observation), matching the "latest snapshot wins" convention.

use crate::ops::SideTest;
use tempo_columnar::{BitMatrix, Value, ValueMatrix};
use tempo_graph::{GraphError, TemporalGraph, TimeDomain, TimeSet};

/// A partition of a time domain into consecutive groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Granularity {
    /// For each coarse point, the inclusive range `(first, last)` of fine
    /// point indices it covers. Ranges are consecutive and exhaustive.
    groups: Vec<(usize, usize)>,
    labels: Vec<String>,
}

impl Granularity {
    /// Partitions a domain of `fine_len` points into windows of
    /// `window` consecutive points (the last window may be shorter).
    /// Labels are `<first>..<last>` fine labels. A window covering the
    /// whole domain (`window >= n`) yields a single group, consistent with
    /// [`Granularity::from_cuts`] with no cuts.
    ///
    /// # Errors
    /// Returns an error if `window` is zero or the domain is empty.
    pub fn windows(domain: &TimeDomain, window: usize) -> Result<Self, GraphError> {
        let n = domain.len();
        if window == 0 || n == 0 {
            return Err(GraphError::EmptyInterval(format!(
                "window {window} invalid for a domain of {n} points"
            )));
        }
        let mut groups = Vec::new();
        let mut labels = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + window - 1).min(n - 1);
            groups.push((start, end));
            if start == end {
                labels.push(domain.labels()[start].clone());
            } else {
                labels.push(format!(
                    "{}..{}",
                    domain.labels()[start],
                    domain.labels()[end]
                ));
            }
            start = end + 1;
        }
        Ok(Granularity { groups, labels })
    }

    /// Builds a granularity from explicit group boundaries: `cuts[i]` is the
    /// first fine index of coarse point `i+1` (so `cuts` must be strictly
    /// increasing within `1..fine_len`).
    ///
    /// # Errors
    /// Returns an error on non-increasing or out-of-range cuts.
    pub fn from_cuts(domain: &TimeDomain, cuts: &[usize]) -> Result<Self, GraphError> {
        let n = domain.len();
        let mut prev = 0usize;
        let mut groups = Vec::new();
        for &c in cuts {
            if c <= prev || c >= n {
                return Err(GraphError::EmptyInterval(format!(
                    "cut {c} invalid (previous {prev}, domain {n})"
                )));
            }
            groups.push((prev, c - 1));
            prev = c;
        }
        groups.push((prev, n - 1));
        let labels = groups
            .iter()
            .map(|&(a, b)| {
                if a == b {
                    domain.labels()[a].clone()
                } else {
                    format!("{}..{}", domain.labels()[a], domain.labels()[b])
                }
            })
            .collect();
        Ok(Granularity { groups, labels })
    }

    /// Number of coarse points.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if there are no groups (never the case for a built value).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The fine range covered by coarse point `i`.
    pub fn group(&self, i: usize) -> (usize, usize) {
        self.groups[i]
    }

    /// Labels of the coarse domain.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }
}

/// Rewrites `g` at a coarser granularity; membership of an entity at a
/// coarse point uses `semantics` ([`SideTest::Any`] = union zoom-out,
/// [`SideTest::All`] = intersection zoom-out). Entities with no coarse
/// presence are dropped.
///
/// ```
/// use graphtempo::ops::SideTest;
/// use graphtempo::zoom::{zoom_out, Granularity};
/// use tempo_graph::fixtures::fig1;
///
/// let g = fig1(); // {t0, t1, t2}
/// let gran = Granularity::windows(g.domain(), 2).unwrap(); // {t0,t1} | {t2}
/// let coarse = zoom_out(&g, &gran, SideTest::Any).unwrap();
/// assert_eq!(coarse.domain().len(), 2);
/// assert_eq!(coarse.n_nodes(), g.n_nodes()); // union zoom keeps everyone
/// ```
///
/// # Errors
/// Returns an error if the result violates model invariants (cannot happen
/// for union semantics; intersection semantics may drop an edge's endpoint
/// only when it also drops the edge).
pub fn zoom_out(
    g: &TemporalGraph,
    granularity: &Granularity,
    semantics: SideTest,
) -> Result<TemporalGraph, GraphError> {
    let fine_n = g.domain().len();
    let coarse_n = granularity.len();
    let coarse_domain = TimeDomain::new(granularity.labels().to_vec())?;
    let masks: Vec<TimeSet> = (0..coarse_n)
        .map(|i| {
            let (a, b) = granularity.group(i);
            TimeSet::range(fine_n, a, b)
        })
        .collect();

    let coarse_row =
        |tau: &TimeSet| -> Vec<bool> { masks.iter().map(|m| semantics.member(tau, m)).collect() };

    // Nodes.
    let mut keep_nodes: Vec<usize> = Vec::new();
    let mut node_rows: Vec<Vec<bool>> = Vec::new();
    for n in g.node_ids() {
        let row = coarse_row(&g.node_timestamp(n));
        if row.iter().any(|&b| b) {
            keep_nodes.push(n.index());
            node_rows.push(row);
        }
    }
    // Explicit old-row → new-row map for the kept nodes. The interner also
    // assigns codes in keep order (asserted below), but edge endpoint
    // lookup must not depend on that internal coincidence.
    let mut new_index = vec![usize::MAX; g.n_nodes()];
    let mut names = tempo_columnar::Interner::new();
    let mut node_presence = BitMatrix::new(coarse_n);
    for (new_i, &old) in keep_nodes.iter().enumerate() {
        let code = names.intern(g.node_name(tempo_graph::NodeId(old as u32)).to_owned());
        debug_assert_eq!(code as usize, new_i, "fresh names intern in keep order");
        new_index[old] = new_i;
        node_presence.push_row(&tempo_columnar::BitVec::from_bools(&node_rows[new_i]));
    }

    // Edges: keep those with coarse presence AND both endpoints present at
    // every coarse point the edge claims (an intersection-zoomed edge can
    // span a group its endpoint only partially covers — drop those bits).
    let mut edges = Vec::new();
    let mut edge_presence = BitMatrix::new(coarse_n);
    let mut edge_values = g.edge_values_matrix().map(|_| ValueMatrix::new(coarse_n));
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        let (ui, vi) = (new_index[u.index()], new_index[v.index()]);
        if ui == usize::MAX || vi == usize::MAX {
            continue;
        }
        let mut row = coarse_row(&g.edge_timestamp(e));
        let urow = &node_rows[ui];
        let vrow = &node_rows[vi];
        for (i, b) in row.iter_mut().enumerate() {
            *b = *b && urow[i] && vrow[i];
        }
        if row.iter().any(|&b| b) {
            edges.push((
                tempo_graph::NodeId(ui as u32),
                tempo_graph::NodeId(vi as u32),
            ));
            if let (Some(out), Some(src)) = (&mut edge_values, g.edge_values_matrix()) {
                let new_r = out.push_null_row();
                for (ci, present) in row.iter().enumerate() {
                    if !present {
                        continue;
                    }
                    let (a, b) = granularity.group(ci);
                    let latest = (a..=b)
                        .rev()
                        .map(|t| src.get(e.index(), t))
                        .find(|v| !v.is_null())
                        .cloned()
                        .unwrap_or(Value::Null);
                    out.set(new_r, ci, latest);
                }
            }
            edge_presence.push_row(&tempo_columnar::BitVec::from_bools(&row));
        }
    }

    // Static attributes carry over; time-varying values take the latest
    // covered observation.
    let static_table = g.static_table().select_rows(&keep_nodes);
    let schema = g.schema().clone();
    let mut tv_tables = Vec::new();
    for &attr in &schema.time_varying_ids() {
        let src = g
            .tv_table(attr)
            .expect("invariant: id came from time_varying_ids, so a table exists");
        let mut tbl = ValueMatrix::new(coarse_n);
        for (new_i, &old) in keep_nodes.iter().enumerate() {
            tbl.push_null_row();
            for (ci, present) in node_rows[new_i].iter().enumerate() {
                if !present {
                    continue;
                }
                let (a, b) = granularity.group(ci);
                let latest = (a..=b)
                    .rev()
                    .map(|t| src.get(old, t))
                    .find(|v| !v.is_null())
                    .cloned()
                    .unwrap_or(Value::Null);
                tbl.set(new_i, ci, latest);
            }
        }
        tv_tables.push(tbl);
    }

    TemporalGraph::from_parts_with_edge_values(
        coarse_domain,
        schema,
        names,
        node_presence,
        edges,
        edge_presence,
        static_table,
        tv_tables,
        edge_values,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimePoint;

    #[test]
    fn windows_partition_exhaustively() {
        let d = TimeDomain::indexed(5);
        let gr = Granularity::windows(&d, 2).unwrap();
        assert_eq!(gr.len(), 3);
        assert_eq!(gr.group(0), (0, 1));
        assert_eq!(gr.group(2), (4, 4));
        assert_eq!(gr.labels(), &["t0..t1", "t2..t3", "t4"]);
        assert!(Granularity::windows(&d, 0).is_err());
    }

    #[test]
    fn whole_domain_window_is_single_group() {
        let d = TimeDomain::indexed(5);
        for w in [5, 7, 100] {
            let gr = Granularity::windows(&d, w).unwrap();
            assert_eq!(gr.len(), 1, "window {w}");
            assert_eq!(gr.group(0), (0, 4));
            assert_eq!(gr.labels(), &["t0..t4"]);
            // equivalent to the cut-free partition, which was always accepted
            assert_eq!(gr, Granularity::from_cuts(&d, &[]).unwrap());
        }
    }

    #[test]
    fn cuts_validation() {
        let d = TimeDomain::indexed(6);
        let gr = Granularity::from_cuts(&d, &[2, 4]).unwrap();
        assert_eq!(gr.len(), 3);
        assert_eq!(gr.group(1), (2, 3));
        assert!(Granularity::from_cuts(&d, &[0]).is_err());
        assert!(Granularity::from_cuts(&d, &[4, 2]).is_err());
        assert!(Granularity::from_cuts(&d, &[6]).is_err());
        // no cuts = one group covering everything
        let whole = Granularity::from_cuts(&d, &[]).unwrap();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole.group(0), (0, 5));
    }

    #[test]
    fn union_zoom_keeps_any_presence() {
        let g = fig1();
        let gr = Granularity::from_cuts(g.domain(), &[2]).unwrap(); // {t0,t1} | {t2}
        let z = zoom_out(&g, &gr, SideTest::Any).unwrap();
        assert_eq!(z.domain().len(), 2);
        assert_eq!(z.n_nodes(), 5); // everyone exists somewhere
        let u3 = z.node_id("u3").unwrap();
        assert!(z.node_alive_at(u3, TimePoint(0)));
        assert!(!z.node_alive_at(u3, TimePoint(1)));
        let u5 = z.node_id("u5").unwrap();
        assert!(!z.node_alive_at(u5, TimePoint(0)));
        assert!(z.node_alive_at(u5, TimePoint(1)));
    }

    #[test]
    fn intersection_zoom_requires_full_coverage() {
        let g = fig1();
        let gr = Granularity::from_cuts(g.domain(), &[2]).unwrap();
        let z = zoom_out(&g, &gr, SideTest::All).unwrap();
        // u3 exists only at t0, not throughout {t0,t1} → dropped entirely
        assert!(z.node_id("u3").is_none());
        // u1 covers {t0,t1} fully but not {t2}
        let u1 = z.node_id("u1").unwrap();
        assert!(z.node_alive_at(u1, TimePoint(0)));
        assert!(!z.node_alive_at(u1, TimePoint(1)));
        // edge (u4,u2) exists at t0,t1,t2 → present at both coarse points
        let u4 = z.node_id("u4").unwrap();
        let u2 = z.node_id("u2").unwrap();
        let e = z.edge_between(u4, u2).unwrap();
        assert!(z.edge_alive_at(e, TimePoint(0)) && z.edge_alive_at(e, TimePoint(1)));
        // edge (u1,u2) exists at t0 and t1 → survives the first coarse point
        let e12 = z.edge_between(u1, u2).unwrap();
        assert!(z.edge_alive_at(e12, TimePoint(0)));
    }

    #[test]
    fn tv_values_take_latest_observation() {
        let g = fig1();
        let gr = Granularity::from_cuts(g.domain(), &[2]).unwrap();
        let z = zoom_out(&g, &gr, SideTest::Any).unwrap();
        let pubs = z.schema().id("publications").unwrap();
        // u1: pubs 3 at t0, 1 at t1 → coarse {t0,t1} takes the later value 1
        let u1 = z.node_id("u1").unwrap();
        assert_eq!(z.attr_value(u1, pubs, TimePoint(0)), Value::Int(1));
        // u3 exists only at t0 → its value at the coarse point is t0's
        let u3 = z.node_id("u3").unwrap();
        assert_eq!(z.attr_value(u3, pubs, TimePoint(0)), Value::Int(1));
    }

    #[test]
    fn zoomed_graph_is_valid_and_aggregable() {
        let g = fig1();
        let gr = Granularity::from_cuts(g.domain(), &[1]).unwrap();
        for sem in [SideTest::Any, SideTest::All] {
            let z = zoom_out(&g, &gr, sem).unwrap();
            assert!(z.validate().is_ok());
            let attrs = vec![z.schema().id("gender").unwrap()];
            let agg = crate::aggregate::aggregate(&z, &attrs, crate::aggregate::AggMode::All);
            assert!(agg.total_node_weight() > 0);
        }
    }

    #[test]
    fn zoom_out_edge_endpoints_survive_heavy_dropping() {
        // Intersection zoom drops every even-indexed node, so kept-row
        // indices diverge widely from original row indices. Endpoint lookup
        // must go through the explicit old-row → new-row map — any
        // off-by-anything there rewires edges to the wrong survivors.
        use tempo_graph::{AttributeSchema, GraphBuilder, TimeDomain};
        let mut b = GraphBuilder::new(TimeDomain::indexed(4), AttributeSchema::new());
        let n = 8usize;
        let ids: Vec<_> = (0..n)
            .map(|i| b.add_node(&format!("v{i}")).unwrap())
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                // partial presence → dropped by intersection zoom
                b.set_presence(id, TimePoint(0)).unwrap();
            } else {
                for t in 0..4 {
                    b.set_presence(id, TimePoint(t)).unwrap();
                }
            }
        }
        let pairs = [(1usize, 3usize), (3, 5), (5, 7), (1, 7)];
        for &(x, y) in &pairs {
            for t in 0..4 {
                b.add_edge_at(ids[x], ids[y], TimePoint(t)).unwrap();
            }
        }
        // edges touching to-be-dropped nodes must vanish with them
        b.add_edge_at(ids[0], ids[1], TimePoint(0)).unwrap();
        b.add_edge_at(ids[2], ids[3], TimePoint(0)).unwrap();
        let g = b.build().unwrap();

        let gr = Granularity::windows(g.domain(), 2).unwrap();
        let z = zoom_out(&g, &gr, SideTest::All).unwrap();
        assert!(z.validate().is_ok());
        assert_eq!(z.n_nodes(), 4);
        for i in 0..n {
            assert_eq!(
                z.node_id(&format!("v{i}")).is_some(),
                i % 2 == 1,
                "node v{i}"
            );
        }
        assert_eq!(z.n_edges(), pairs.len());
        for &(x, y) in &pairs {
            let u = z.node_id(&format!("v{x}")).unwrap();
            let v = z.node_id(&format!("v{y}")).unwrap();
            let e = z
                .edge_between(u, v)
                .expect("surviving edge keeps its endpoints");
            assert!(z.edge_alive_at(e, TimePoint(0)), "edge v{x}-v{y}");
            assert!(z.edge_alive_at(e, TimePoint(1)), "edge v{x}-v{y}");
        }
    }

    #[test]
    fn union_zoom_preserves_all_aggregate_entity_counts() {
        // union zoom keeps exactly the entities of the original graph
        let g = fig1();
        let gr = Granularity::windows(g.domain(), 2).unwrap();
        let z = zoom_out(&g, &gr, SideTest::Any).unwrap();
        assert_eq!(z.n_nodes(), g.n_nodes());
        assert_eq!(z.n_edges(), g.n_edges());
    }
}
