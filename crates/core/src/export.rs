//! Export of aggregate and evolution graphs.
//!
//! Aggregate graphs are the user-facing output of GraphTempo; this module
//! renders them as Graphviz DOT (the paper's Figs. 3–4 are exactly such
//! drawings) and as TSV frames for downstream tooling.

use crate::aggregate::AggregateGraph;
use crate::evolution::EvolutionAggregate;
use std::fmt::Write as _;
use tempo_columnar::{ColumnarError, Frame, Value, ValueTuple};
use tempo_graph::{AttrId, TemporalGraph};

fn tuple_label(g: Option<&TemporalGraph>, attrs: &[AttrId], tuple: &ValueTuple) -> String {
    match g {
        Some(g) if attrs.len() == tuple.len() => {
            let parts: Vec<String> = attrs
                .iter()
                .zip(tuple)
                .map(|(&a, v)| g.schema().def(a).render(v))
                .collect();
            parts.join(",")
        }
        _ => tuple
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(","),
    }
}

/// Renders an aggregate graph as Graphviz DOT (directed).
///
/// When the source graph is supplied, categorical codes resolve to their
/// labels (e.g. `f,1` instead of `#1,1`).
pub fn aggregate_to_dot(agg: &AggregateGraph, source: Option<&TemporalGraph>) -> String {
    let attrs: Vec<AttrId> = source
        .map(|g| {
            agg.attr_names()
                .iter()
                .filter_map(|n| g.schema().id(n).ok())
                .collect()
        })
        .unwrap_or_default();
    let mut out = String::from("digraph aggregate {\n");
    let _ = writeln!(
        out,
        "  label=\"aggregate on ({})\";",
        agg.attr_names().join(",")
    );
    for (tuple, w) in agg.iter_nodes() {
        let label = tuple_label(source, &attrs, tuple);
        let _ = writeln!(out, "  \"{label}\" [label=\"{label}\\nw={w}\"];");
    }
    for ((src, dst), w) in agg.iter_edges() {
        let s = tuple_label(source, &attrs, src);
        let d = tuple_label(source, &attrs, dst);
        let _ = writeln!(out, "  \"{s}\" -> \"{d}\" [label=\"{w}\"];");
    }
    out.push_str("}\n");
    out
}

/// Renders an aggregated evolution graph as DOT, annotating every entity
/// with its stability/growth/shrinkage weights (the paper's Fig. 4b).
pub fn evolution_to_dot(evo: &EvolutionAggregate, source: Option<&TemporalGraph>) -> String {
    let attrs: Vec<AttrId> = source
        .map(|g| {
            evo.attr_names()
                .iter()
                .filter_map(|n| g.schema().id(n).ok())
                .collect()
        })
        .unwrap_or_default();
    let mut out = String::from("digraph evolution {\n");
    let _ = writeln!(
        out,
        "  label=\"evolution on ({}) [St/Gr/Shr]\";",
        evo.attr_names().join(",")
    );
    for (tuple, w) in evo.iter_nodes() {
        let label = tuple_label(source, &attrs, tuple);
        let _ = writeln!(
            out,
            "  \"{label}\" [label=\"{label}\\nSt={} Gr={} Shr={}\"];",
            w.stability, w.growth, w.shrinkage
        );
    }
    for ((src, dst), w) in evo.iter_edges() {
        let s = tuple_label(source, &attrs, src);
        let d = tuple_label(source, &attrs, dst);
        let _ = writeln!(
            out,
            "  \"{s}\" -> \"{d}\" [label=\"St={} Gr={} Shr={}\"];",
            w.stability, w.growth, w.shrinkage
        );
    }
    out.push_str("}\n");
    out
}

/// Converts an aggregate graph's nodes into a frame: one column per
/// attribute plus `weight`.
///
/// # Errors
/// Returns an error if the attribute names collide with `weight`.
pub fn aggregate_nodes_frame(agg: &AggregateGraph) -> Result<Frame, ColumnarError> {
    let mut cols: Vec<String> = agg.attr_names().to_vec();
    cols.push("weight".to_owned());
    let mut f = Frame::new(cols)?;
    for (tuple, w) in agg.iter_nodes() {
        let mut row = tuple.clone();
        row.push(Value::Int(w as i64));
        f.push_row(row)?;
    }
    Ok(f)
}

/// Converts an aggregate graph's edges into a frame: `src_*` and `dst_*`
/// columns per attribute plus `weight`.
///
/// # Errors
/// Returns an error if the generated column names collide.
pub fn aggregate_edges_frame(agg: &AggregateGraph) -> Result<Frame, ColumnarError> {
    let mut cols: Vec<String> = agg
        .attr_names()
        .iter()
        .map(|n| format!("src_{n}"))
        .collect();
    cols.extend(agg.attr_names().iter().map(|n| format!("dst_{n}")));
    cols.push("weight".to_owned());
    let mut f = Frame::new(cols)?;
    for ((src, dst), w) in agg.iter_edges() {
        let mut row = src.clone();
        row.extend(dst.iter().cloned());
        row.push(Value::Int(w as i64));
        f.push_row(row)?;
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate, AggMode};
    use crate::evolution::evolution_aggregate;
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimeSet;

    fn gender_agg() -> (TemporalGraph, AggregateGraph) {
        let g = fig1();
        let attrs = vec![g.schema().id("gender").unwrap()];
        let agg = aggregate(&g, &attrs, AggMode::Distinct);
        (g, agg)
    }

    #[test]
    fn dot_contains_resolved_labels() {
        let (g, agg) = gender_agg();
        let dot = aggregate_to_dot(&agg, Some(&g));
        assert!(dot.starts_with("digraph aggregate {"));
        assert!(dot.contains("\"f\""));
        assert!(dot.contains("\"m\""));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_without_source_uses_codes() {
        let (_, agg) = gender_agg();
        let dot = aggregate_to_dot(&agg, None);
        assert!(dot.contains("#0") || dot.contains("#1"));
    }

    #[test]
    fn evolution_dot_has_three_weights() {
        let g = fig1();
        let attrs = vec![g.schema().id("gender").unwrap()];
        let t1 = TimeSet::from_indices(3, [0]);
        let t2 = TimeSet::from_indices(3, [1]);
        let evo = evolution_aggregate(&g, &t1, &t2, &attrs, None).unwrap();
        let dot = evolution_to_dot(&evo, Some(&g));
        assert!(dot.contains("St="));
        assert!(dot.contains("Gr="));
        assert!(dot.contains("Shr="));
    }

    #[test]
    fn frames_roundtrip_weights() {
        let (_, agg) = gender_agg();
        let nodes = aggregate_nodes_frame(&agg).unwrap();
        assert_eq!(nodes.columns().last().map(String::as_str), Some("weight"));
        let total: i64 = nodes
            .iter_rows()
            .map(|r| r.last().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total as u64, agg.total_node_weight());

        let edges = aggregate_edges_frame(&agg).unwrap();
        assert_eq!(edges.ncols(), 3); // src_gender, dst_gender, weight
        let etotal: i64 = edges
            .iter_rows()
            .map(|r| r.last().unwrap().as_int().unwrap())
            .sum();
        assert_eq!(etotal as u64, agg.total_edge_weight());
    }
}
