//! Attribute aggregation (§2.2, Definition 2.6; Algorithm 2; §4.2).
//!
//! Aggregation groups nodes by a tuple of attribute values and counts, with
//! two weight semantics:
//!
//! * **DIST** ([`AggMode::Distinct`]) — each (entity, tuple) pair counts
//!   once no matter how many time points it appears at;
//! * **ALL** ([`AggMode::All`]) — every appearance at every time point
//!   counts.
//!
//! Three implementations are provided and tested equivalent:
//! [`aggregate`] (direct hash aggregation over the presence matrices),
//! [`aggregate_via_frames`] (the paper's Algorithm 2 verbatim on the
//! columnar engine: unpivot → merge → deduplicate → group-count), and
//! [`aggregate_static_fast`] (the §4.2 optimization when every aggregation
//! attribute is static).

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use tempo_columnar::{Frame, Value, ValueTuple};
use tempo_graph::{AttrId, GraphError, NodeId, TemporalGraph, Temporality, TimePoint};

use crate::ops::EventMask;

/// Borrowed view of an aggregate edge key, letting [`AggregateGraph::edge_weight`]
/// probe the edge map from two slices without allocating owned tuples.
///
/// Safe as a [`Borrow`] target because `(ValueTuple, ValueTuple)` and
/// `(&[Value], &[Value])` hash identically (tuples hash field by field,
/// `Vec` and slice both hash as length-prefixed element sequences).
trait PairKey {
    fn key(&self) -> (&[Value], &[Value]);
}

impl PairKey for (ValueTuple, ValueTuple) {
    fn key(&self) -> (&[Value], &[Value]) {
        (&self.0, &self.1)
    }
}

impl PairKey for (&[Value], &[Value]) {
    fn key(&self) -> (&[Value], &[Value]) {
        (self.0, self.1)
    }
}

impl std::hash::Hash for dyn PairKey + '_ {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl PartialEq for dyn PairKey + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for dyn PairKey + '_ {}

impl<'a> Borrow<dyn PairKey + 'a> for (ValueTuple, ValueTuple) {
    fn borrow(&self) -> &(dyn PairKey + 'a) {
        self
    }
}

/// Distinct (DIST) vs non-distinct (ALL) weight semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AggMode {
    /// Count each distinct (entity, tuple) pair once.
    Distinct,
    /// Count every appearance at every time point.
    All,
}

/// A weighted aggregate graph `G'(V', E', W_V', W_E', A')`.
///
/// Nodes are attribute tuples; edges are ordered pairs of attribute tuples
/// (the underlying graphs are directed). Weights are COUNT aggregates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateGraph {
    attr_names: Vec<String>,
    nodes: HashMap<ValueTuple, u64>,
    edges: HashMap<(ValueTuple, ValueTuple), u64>,
}

impl AggregateGraph {
    /// Creates an empty aggregate graph over the given attribute names.
    pub fn new(attr_names: Vec<String>) -> Self {
        AggregateGraph {
            attr_names,
            nodes: HashMap::new(),
            edges: HashMap::new(),
        }
    }

    /// Names of the aggregation attributes, in tuple order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Number of aggregate nodes (distinct attribute tuples).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of aggregate edges (distinct tuple pairs).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of an aggregate node (0 when absent).
    pub fn node_weight(&self, tuple: &[Value]) -> u64 {
        self.nodes.get(tuple).copied().unwrap_or(0)
    }

    /// Weight of an aggregate edge (0 when absent).
    pub fn edge_weight(&self, src: &[Value], dst: &[Value]) -> u64 {
        self.edges
            .get(&(src, dst) as &dyn PairKey)
            .copied()
            .unwrap_or(0)
    }

    /// Sum of all node weights.
    pub fn total_node_weight(&self) -> u64 {
        self.nodes.values().sum()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Adds `w` to a node tuple's weight.
    pub fn add_node_weight(&mut self, tuple: ValueTuple, w: u64) {
        if w > 0 {
            *self.nodes.entry(tuple).or_insert(0) += w;
        }
    }

    /// Adds `w` to an edge tuple pair's weight.
    pub fn add_edge_weight(&mut self, src: ValueTuple, dst: ValueTuple, w: u64) {
        if w > 0 {
            *self.edges.entry((src, dst)).or_insert(0) += w;
        }
    }

    /// Iterates nodes sorted by tuple (deterministic order).
    pub fn iter_nodes(&self) -> Vec<(&ValueTuple, u64)> {
        let mut v: Vec<_> = self.nodes.iter().map(|(k, &w)| (k, w)).collect();
        v.sort();
        v
    }

    /// Iterates edges sorted by tuple pair (deterministic order).
    pub fn iter_edges(&self) -> Vec<(&(ValueTuple, ValueTuple), u64)> {
        let mut v: Vec<_> = self.edges.iter().map(|(k, &w)| (k, w)).collect();
        v.sort();
        v
    }

    /// Pointwise weight addition (used by the T-distributive union of
    /// §4.3: the ALL-aggregate of a union graph is the sum of per-timepoint
    /// ALL-aggregates).
    pub fn merge_add(&mut self, other: &AggregateGraph) {
        debug_assert_eq!(self.attr_names, other.attr_names, "attribute mismatch");
        for (k, &w) in &other.nodes {
            *self.nodes.entry(k.clone()).or_insert(0) += w;
        }
        for (k, &w) in &other.edges {
            *self.edges.entry(k.clone()).or_insert(0) += w;
        }
    }

    /// Renders the aggregate graph as text, resolving categorical codes
    /// through the source graph's schema.
    pub fn render(&self, g: &TemporalGraph) -> String {
        use std::fmt::Write as _;
        let attrs: Vec<AttrId> = self
            .attr_names
            .iter()
            .filter_map(|n| g.schema().id(n).ok())
            .collect();
        let fmt_tuple = |tuple: &ValueTuple| -> String {
            if attrs.len() == tuple.len() {
                crate::ops::render_tuple(g, &attrs, tuple)
            } else {
                format!("{tuple:?}")
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "aggregate on ({})", self.attr_names.join(","));
        for (tuple, w) in self.iter_nodes() {
            let _ = writeln!(out, "  node {} w={w}", fmt_tuple(tuple));
        }
        for ((s, d), w) in self.iter_edges() {
            let _ = writeln!(out, "  edge {} -> {} w={w}", fmt_tuple(s), fmt_tuple(d));
        }
        out
    }
}

/// A predicate restricting which (node, time) appearances participate in an
/// aggregation — e.g. the paper's Fig. 12 filter "authors with
/// #Publications > 4".
pub type NodeTimeFilter<'a> = dyn Fn(&TemporalGraph, NodeId, TimePoint) -> bool + 'a;

/// Resolved attribute accessor avoiding schema lookups in inner loops.
enum Resolved {
    Static(usize),
    TimeVarying(usize),
}

fn resolve_attrs(g: &TemporalGraph, attrs: &[AttrId]) -> Vec<Resolved> {
    attrs
        .iter()
        .map(|&a| match g.schema().def(a).temporality() {
            Temporality::Static => Resolved::Static(
                g.schema()
                    .static_slot(a)
                    .expect("invariant: static attrs have a static slot"),
            ),
            Temporality::TimeVarying => Resolved::TimeVarying(
                g.schema()
                    .time_varying_slot(a)
                    .expect("invariant: time-varying attrs have a time-varying slot"),
            ),
        })
        .collect()
}

fn tuple_at(
    g: &TemporalGraph,
    resolved: &[Resolved],
    tv_tables: &[&tempo_columnar::ValueMatrix],
    n: usize,
    t: usize,
) -> ValueTuple {
    resolved
        .iter()
        .map(|r| match r {
            Resolved::Static(slot) => g.static_table().get(n, *slot).clone(),
            Resolved::TimeVarying(slot) => tv_tables[*slot].get(n, t).clone(),
        })
        .collect()
}

/// Aggregates `g` on `attrs` with the given mode (Definition 2.6),
/// considering every time point at which each entity exists.
///
/// ```
/// use graphtempo::aggregate::{aggregate, AggMode};
/// use tempo_graph::fixtures::fig1;
///
/// let g = fig1();
/// let gender = g.schema().id("gender").unwrap();
/// let dist = aggregate(&g, &[gender], AggMode::Distinct);
/// // 5 distinct authors: 2 male, 3 female
/// assert_eq!(dist.total_node_weight(), 5);
/// let all = aggregate(&g, &[gender], AggMode::All);
/// // 10 author appearances across the three time points
/// assert_eq!(all.total_node_weight(), 10);
/// ```
///
/// # Panics
/// Panics if any id is not from `g`'s schema.
pub fn aggregate(g: &TemporalGraph, attrs: &[AttrId], mode: AggMode) -> AggregateGraph {
    aggregate_filtered(g, attrs, mode, None)
}

/// [`aggregate`] with an optional per-(node, time) filter; a filtered-out
/// node contributes no appearances, and an edge appearance requires both
/// endpoints to pass.
///
/// # Panics
/// Panics if any id is not from `g`'s schema.
pub fn aggregate_filtered(
    g: &TemporalGraph,
    attrs: &[AttrId],
    mode: AggMode,
    filter: Option<&NodeTimeFilter<'_>>,
) -> AggregateGraph {
    let names: Vec<String> = attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();
    let mut agg = AggregateGraph::new(names);
    let resolved = resolve_attrs(g, attrs);
    let tv_tables: Vec<&tempo_columnar::ValueMatrix> = g
        .schema()
        .time_varying_ids()
        .iter()
        .map(|&a| {
            g.tv_table(a)
                .expect("invariant: every time-varying id has a table")
        })
        .collect();

    let passes = |n: usize, t: usize| -> bool {
        filter.is_none_or(|f| f(g, NodeId(n as u32), TimePoint(t as u32)))
    };

    // Nodes.
    match mode {
        AggMode::Distinct => {
            let mut seen: HashSet<(usize, ValueTuple)> = HashSet::new();
            for n in 0..g.n_nodes() {
                for t in g.node_presence_matrix().iter_row_ones(n) {
                    if !passes(n, t) {
                        continue;
                    }
                    let tuple = tuple_at(g, &resolved, &tv_tables, n, t);
                    if seen.insert((n, tuple.clone())) {
                        agg.add_node_weight(tuple, 1);
                    }
                }
            }
        }
        AggMode::All => {
            for n in 0..g.n_nodes() {
                for t in g.node_presence_matrix().iter_row_ones(n) {
                    if !passes(n, t) {
                        continue;
                    }
                    let tuple = tuple_at(g, &resolved, &tv_tables, n, t);
                    agg.add_node_weight(tuple, 1);
                }
            }
        }
    }

    // Edges.
    match mode {
        AggMode::Distinct => {
            let mut seen: HashSet<(usize, (ValueTuple, ValueTuple))> = HashSet::new();
            for e in 0..g.n_edges() {
                let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                for t in g.edge_presence_matrix().iter_row_ones(e) {
                    if !passes(u.index(), t) || !passes(v.index(), t) {
                        continue;
                    }
                    let tu = tuple_at(g, &resolved, &tv_tables, u.index(), t);
                    let tv = tuple_at(g, &resolved, &tv_tables, v.index(), t);
                    if seen.insert((e, (tu.clone(), tv.clone()))) {
                        agg.add_edge_weight(tu, tv, 1);
                    }
                }
            }
        }
        AggMode::All => {
            for e in 0..g.n_edges() {
                let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                for t in g.edge_presence_matrix().iter_row_ones(e) {
                    if !passes(u.index(), t) || !passes(v.index(), t) {
                        continue;
                    }
                    let tu = tuple_at(g, &resolved, &tv_tables, u.index(), t);
                    let tv = tuple_at(g, &resolved, &tv_tables, v.index(), t);
                    agg.add_edge_weight(tu, tv, 1);
                }
            }
        }
    }
    agg
}

/// The §4.2 fast path: aggregation when **every** attribute in `attrs` is
/// static. No unpivoting or per-time tuple construction is needed — DIST
/// counts entities once, ALL weighs them by the size of their timestamp.
///
/// # Errors
/// Returns an error if any attribute is time-varying.
pub fn aggregate_static_fast(
    g: &TemporalGraph,
    attrs: &[AttrId],
    mode: AggMode,
) -> Result<AggregateGraph, GraphError> {
    let mut slots = Vec::with_capacity(attrs.len());
    let mut names = Vec::with_capacity(attrs.len());
    for &a in attrs {
        let def = g.schema().def(a);
        names.push(def.name().to_owned());
        slots.push(
            g.schema()
                .static_slot(a)
                .ok_or_else(|| GraphError::AttributeKindMismatch {
                    name: def.name().to_owned(),
                    expected: "static",
                })?,
        );
    }
    let mut agg = AggregateGraph::new(names);
    // Resolve every node's tuple once up front: endpoint tuples are reused
    // across all incident edges instead of being rebuilt per edge.
    let node_tuples: Vec<ValueTuple> = (0..g.n_nodes())
        .map(|n| {
            slots
                .iter()
                .map(|&s| g.static_table().get(n, s).clone())
                .collect()
        })
        .collect();
    let full = tempo_columnar::BitVec::ones(g.domain().len());
    // One popcount buffer serves both passes; the node counts are consumed
    // before the edge counts overwrite them.
    let mut counts: Vec<u32> = Vec::new();
    g.node_presence_matrix()
        .masked_popcounts_into(&full, &mut counts);

    for (n, tuple) in node_tuples.iter().enumerate() {
        let appearances = u64::from(counts[n]);
        if appearances == 0 {
            continue;
        }
        let w = match mode {
            AggMode::Distinct => 1,
            AggMode::All => appearances,
        };
        agg.add_node_weight(tuple.clone(), w);
    }
    g.edge_presence_matrix()
        .masked_popcounts_into(&full, &mut counts);
    for (e, &count) in counts.iter().enumerate() {
        let appearances = u64::from(count);
        if appearances == 0 {
            continue;
        }
        let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
        let w = match mode {
            AggMode::Distinct => 1,
            AggMode::All => appearances,
        };
        agg.add_edge_weight(
            node_tuples[u.index()].clone(),
            node_tuples[v.index()].clone(),
            w,
        );
    }
    Ok(agg)
}

/// Algorithm 2 verbatim, expressed on the columnar engine: unpivot every
/// time-varying attribute array, merge with the static table, deduplicate
/// on `(u, a')` (DIST only), group-count for node weights; then resolve edge
/// endpoint tuples via index lookup, deduplicate on `((u,v),(a',a''))`
/// (DIST only), and group-count for edge weights.
///
/// Slower than [`aggregate`], but kept as the reference implementation and
/// tested equivalent.
///
/// # Errors
/// Returns an error if a frame operation fails (should not happen for a
/// valid graph/schema).
pub fn aggregate_via_frames(
    g: &TemporalGraph,
    attrs: &[AttrId],
    mode: AggMode,
) -> Result<AggregateGraph, GraphError> {
    let nt = g.domain().len();
    let names: Vec<String> = attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();

    // Build A': one row per (node, time) where the node exists, with one
    // column per aggregation attribute. Time-varying attributes come from
    // unpivoting their arrays (Alg. 2 lines 1–4); static attributes are
    // merged in from S (lines 6–7).
    let mut cols: Vec<String> = vec!["u".to_owned(), "t".to_owned()];
    cols.extend(names.iter().cloned());
    let mut a_prime = Frame::new(cols)?;

    // Unpivot each requested time-varying array into (u, t, value) and
    // index the result for the merge.
    let mut unpivoted: HashMap<usize, HashMap<ValueTuple, Vec<usize>>> = HashMap::new();
    let mut unpivoted_frames: HashMap<usize, Frame> = HashMap::new();
    for (i, &a) in attrs.iter().enumerate() {
        if g.schema().time_varying_slot(a).is_some() {
            let tbl = g
                .tv_table(a)
                .expect("invariant: a time-varying slot implies a table");
            let row_labels: Vec<Value> = (0..g.n_nodes() as i64).map(Value::Int).collect();
            let col_names: Vec<String> = (0..nt).map(|t| t.to_string()).collect();
            let wide = tbl.to_frame(&row_labels, &col_names);
            let long = wide.unpivot(&["id"], "t", "value")?;
            let index = long.index_by(&["id", "t"])?;
            unpivoted.insert(i, index);
            unpivoted_frames.insert(i, long);
        }
    }

    let static_slots: Vec<Option<usize>> =
        attrs.iter().map(|&a| g.schema().static_slot(a)).collect();

    for n in 0..g.n_nodes() {
        for t in g.node_presence_matrix().iter_row_ones(n) {
            let mut row: Vec<Value> = vec![Value::Int(n as i64), Value::Int(t as i64)];
            for (i, _) in attrs.iter().enumerate() {
                if let Some(slot) = static_slots[i] {
                    row.push(g.static_table().get(n, slot).clone());
                } else {
                    let key: ValueTuple = vec![Value::Int(n as i64), Value::Str(t.to_string())];
                    let v = unpivoted[&i]
                        .get(&key)
                        .and_then(|rows| rows.first())
                        .map(|&r| unpivoted_frames[&i].row(r)[2].clone())
                        .unwrap_or(Value::Null);
                    row.push(v);
                }
            }
            a_prime.push_row(row)?;
        }
    }

    // Node weights: dedup on (u, a') for DIST (line 5), then group-count on
    // a' (lines 8–12).
    let attr_cols: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut node_key: Vec<&str> = vec!["u"];
    node_key.extend(attr_cols.iter());
    let node_source = match mode {
        AggMode::Distinct => a_prime.dedup_by(&node_key)?,
        AggMode::All => a_prime.clone(),
    };
    let node_groups = node_source.group_count(&attr_cols)?;

    let mut agg = AggregateGraph::new(names.clone());
    let count_col = node_groups.col_index("count")?;
    for row in node_groups.iter_rows() {
        let tuple: ValueTuple = row[..row.len() - 1].to_vec();
        let w = row[count_col].as_int().unwrap_or(0) as u64;
        agg.add_node_weight(tuple, w);
    }

    // Edge weights: look up endpoint tuples in A' (lines 13–17), dedup for
    // DIST (line 18), group-count (lines 19–23).
    let a_index = a_prime.index_by(&["u", "t"])?;
    let mut ecols: Vec<String> = vec!["u".into(), "v".into(), "t".into()];
    for n in &names {
        ecols.push(format!("src_{n}"));
    }
    for n in &names {
        ecols.push(format!("dst_{n}"));
    }
    let mut a_second = Frame::new(ecols)?;
    for e in 0..g.n_edges() {
        let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
        for t in g.edge_presence_matrix().iter_row_ones(e) {
            let lookup = |n: NodeId| -> Option<ValueTuple> {
                let key: ValueTuple = vec![Value::Int(n.index() as i64), Value::Int(t as i64)];
                a_index
                    .get(&key)
                    .and_then(|rows| rows.first())
                    .map(|&r| a_prime.row(r)[2..].to_vec())
            };
            let (Some(tu), Some(tv)) = (lookup(u), lookup(v)) else {
                continue;
            };
            let mut row: Vec<Value> = vec![
                Value::Int(u.index() as i64),
                Value::Int(v.index() as i64),
                Value::Int(t as i64),
            ];
            row.extend(tu);
            row.extend(tv);
            a_second.push_row(row)?;
        }
    }
    let pair_cols: Vec<String> = names
        .iter()
        .map(|n| format!("src_{n}"))
        .chain(names.iter().map(|n| format!("dst_{n}")))
        .collect();
    let pair_refs: Vec<&str> = pair_cols.iter().map(String::as_str).collect();
    let mut edge_key: Vec<&str> = vec!["u", "v"];
    edge_key.extend(pair_refs.iter());
    let edge_source = match mode {
        AggMode::Distinct => a_second.dedup_by(&edge_key)?,
        AggMode::All => a_second,
    };
    let edge_groups = edge_source.group_count(&pair_refs)?;
    let ecount = edge_groups.col_index("count")?;
    let k = names.len();
    for row in edge_groups.iter_rows() {
        let src: ValueTuple = row[..k].to_vec();
        let dst: ValueTuple = row[k..2 * k].to_vec();
        let w = row[ecount].as_int().unwrap_or(0) as u64;
        agg.add_edge_weight(src, dst, w);
    }
    Ok(agg)
}

/// Attribute roll-up (§4.3): derives the aggregate on a subset of the
/// attributes directly from a finer aggregate by grouping tuples and
/// summing weights (COUNT is D-distributive).
///
/// Exact for per-timepoint aggregates and for ALL aggregates over any
/// interval. For DIST over a multi-point interval it over-counts entities
/// whose dropped attributes changed value (the same caveat the paper notes
/// for T-distributivity of distinct aggregation).
///
/// # Errors
/// Returns an error if `keep` is not a subset of the aggregate's attributes.
pub fn rollup(agg: &AggregateGraph, keep: &[&str]) -> Result<AggregateGraph, GraphError> {
    let positions: Vec<usize> = keep
        .iter()
        .map(|k| {
            agg.attr_names()
                .iter()
                .position(|n| n == k)
                .ok_or_else(|| GraphError::UnknownAttribute((*k).to_owned()))
        })
        .collect::<Result<_, _>>()?;
    let mut out = AggregateGraph::new(keep.iter().map(|s| (*s).to_owned()).collect());
    for (tuple, w) in &agg.nodes {
        let sub: ValueTuple = positions.iter().map(|&p| tuple[p].clone()).collect();
        out.add_node_weight(sub, *w);
    }
    for ((src, dst), w) in &agg.edges {
        let s: ValueTuple = positions.iter().map(|&p| src[p].clone()).collect();
        let d: ValueTuple = positions.iter().map(|&p| dst[p].clone()).collect();
        out.add_edge_weight(s, d, *w);
    }
    Ok(out)
}

/// Sentinel group id: the node is absent at that time point.
pub const NO_GROUP: u32 = u32::MAX;

/// Interned attribute-tuple groups for one `(graph, attrs)` pair — the
/// aggregation half of the zero-materialization exploration kernel.
///
/// Each node's aggregation tuple is resolved and interned into a dense
/// `u32` group id **once**: per node when every attribute is static, else
/// per (node, present time point), with static components resolved once per
/// node and only time-varying cells read per point. Aggregating an event
/// ([`EventMask`]) then counts group ids into dense accumulators —
/// [`aggregate_masked`](Self::aggregate_masked) — or, for exploration,
/// short-circuits into a bare count with no accumulator at all
/// ([`count_distinct`](Self::count_distinct)) — instead of re-building
/// heap-allocated [`ValueTuple`] hash keys per entity per interval pair.
///
/// The table is immutable after construction and `Sync`, so one instance is
/// shared across all pairs (and worker threads) of an exploration run.
pub struct GroupTable {
    attr_names: Vec<String>,
    /// Group id → attribute tuple.
    tuples: Vec<ValueTuple>,
    /// Attribute tuple → group id (for resolving selector targets).
    index: HashMap<ValueTuple, u32>,
    nt: usize,
    /// One gid per node when every aggregation attribute is static.
    static_gids: Option<Vec<u32>>,
    /// One gid per (node, time) — `n * nt + t` — otherwise; [`NO_GROUP`]
    /// where the node is absent.
    time_gids: Option<Vec<u32>>,
    /// Cached instrumentation handles: `count_distinct` runs once per
    /// interval pair across worker threads, so the registry lock is taken
    /// only at build time.
    ins_calls: std::sync::Arc<tempo_instrument::Counter>,
    ins_unknown_target: std::sync::Arc<tempo_instrument::Counter>,
    ins_bitmask_fast: std::sync::Arc<tempo_instrument::Counter>,
}

fn intern_tuple(
    index: &mut HashMap<ValueTuple, u32>,
    tuples: &mut Vec<ValueTuple>,
    tuple: ValueTuple,
) -> u32 {
    if let Some(&gid) = index.get(&tuple) {
        return gid;
    }
    let gid = u32::try_from(tuples.len())
        .expect("invariant: fewer than u32::MAX distinct tuples (gid is u32)");
    tuples.push(tuple.clone());
    index.insert(tuple, gid);
    gid
}

impl GroupTable {
    /// Builds the group table of `g` for the aggregation attributes `attrs`.
    ///
    /// # Panics
    /// Panics if any id is not from `g`'s schema.
    #[must_use]
    pub fn build(g: &TemporalGraph, attrs: &[AttrId]) -> GroupTable {
        let ins = tempo_instrument::global();
        let _span = ins.histogram("aggregate.group_table_build_ns").span();
        let attr_names: Vec<String> = attrs
            .iter()
            .map(|&a| g.schema().def(a).name().to_owned())
            .collect();
        let resolved = resolve_attrs(g, attrs);
        let nt = g.domain().len();
        let mut index = HashMap::new();
        let mut tuples = Vec::new();

        let all_static = resolved.iter().all(|r| matches!(r, Resolved::Static(_)));
        let (static_gids, time_gids) = if all_static {
            // Group ids are assigned in first-occurrence order either way,
            // so both fast paths below produce the table the naive per-node
            // intern loop would.
            let gids = if let [Resolved::Static(slot)] = resolved.as_slice() {
                // Single static attribute: categorical codes are already
                // dense interner indexes, so a code-indexed table resolves
                // each node with one load — no hashing, no tuple allocation
                // (dominant in exploration kernel builds on large graphs).
                let mut cat_gids: Vec<u32> = Vec::new();
                (0..g.n_nodes())
                    .map(|n| match g.static_table().get(n, *slot) {
                        Value::Cat(code) => {
                            let c = *code as usize;
                            if c >= cat_gids.len() {
                                cat_gids.resize(c + 1, NO_GROUP);
                            }
                            if cat_gids[c] == NO_GROUP {
                                cat_gids[c] =
                                    intern_tuple(&mut index, &mut tuples, vec![Value::Cat(*code)]);
                            }
                            cat_gids[c]
                        }
                        v => intern_tuple(&mut index, &mut tuples, vec![v.clone()]),
                    })
                    .collect()
            } else {
                // Multi-attribute: probe with a reused scratch tuple
                // (`Vec<Value>: Borrow<[Value]>`), allocating only on the
                // first occurrence of a tuple.
                let mut scratch: ValueTuple = Vec::with_capacity(resolved.len());
                (0..g.n_nodes())
                    .map(|n| {
                        scratch.clear();
                        for r in &resolved {
                            match r {
                                Resolved::Static(slot) => {
                                    scratch.push(g.static_table().get(n, *slot).clone());
                                }
                                Resolved::TimeVarying(_) => {
                                    unreachable!("all attrs static")
                                }
                            }
                        }
                        if let Some(&gid) = index.get(scratch.as_slice()) {
                            gid
                        } else {
                            intern_tuple(&mut index, &mut tuples, scratch.clone())
                        }
                    })
                    .collect()
            };
            (Some(gids), None)
        } else {
            let tv_tables: Vec<&tempo_columnar::ValueMatrix> = g
                .schema()
                .time_varying_ids()
                .iter()
                .map(|&a| {
                    g.tv_table(a)
                        .expect("invariant: every time-varying id has a table")
                })
                .collect();
            let mut gids = vec![NO_GROUP; g.n_nodes() * nt];
            for n in 0..g.n_nodes() {
                // static components once per node, time-varying per point
                let template: ValueTuple = resolved
                    .iter()
                    .map(|r| match r {
                        Resolved::Static(slot) => g.static_table().get(n, *slot).clone(),
                        Resolved::TimeVarying(_) => Value::Null,
                    })
                    .collect();
                for t in g.node_presence_matrix().iter_row_ones(n) {
                    let mut tuple = template.clone();
                    for (i, r) in resolved.iter().enumerate() {
                        if let Resolved::TimeVarying(slot) = r {
                            tuple[i] = tv_tables[*slot].get(n, t).clone();
                        }
                    }
                    gids[n * nt + t] = intern_tuple(&mut index, &mut tuples, tuple);
                }
            }
            (None, Some(gids))
        };

        ins.counter("aggregate.group_tables_built").inc();
        ins.counter("aggregate.groups_interned")
            .add(tuples.len() as u64);
        let table = GroupTable {
            attr_names,
            tuples,
            index,
            nt,
            static_gids,
            time_gids,
            ins_calls: ins.counter("aggregate.count_distinct.calls"),
            ins_unknown_target: ins.counter("aggregate.count_distinct.unknown_target"),
            ins_bitmask_fast: ins.counter("aggregate.count_distinct.bitmask_fast"),
        };
        debug_assert_eq!(table.check_invariants(), Ok(()));
        table
    }

    /// Validates the interning bijection: `tuples[gid]` and the reverse
    /// `index` map must agree in both directions, and every stored gid
    /// (static or time-varying) must be `NO_GROUP` or a valid tuple index.
    /// Checked via `debug_assert!` at the end of [`build`](Self::build);
    /// compiled out of release builds.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.index.len() != self.tuples.len() {
            return Err(format!(
                "interning index holds {} tuples, dense table holds {}",
                self.index.len(),
                self.tuples.len()
            ));
        }
        for (gid, tuple) in self.tuples.iter().enumerate() {
            match self.index.get(tuple) {
                Some(&g) if g as usize == gid => {}
                Some(&g) => {
                    return Err(format!(
                        "tuple {tuple:?} stored at gid {gid} but indexed as {g}"
                    ));
                }
                None => {
                    return Err(format!("tuple {tuple:?} at gid {gid} missing from index"));
                }
            }
        }
        let n_groups = self.tuples.len() as u32;
        let check_gids = |gids: &[u32], what: &str| -> Result<(), String> {
            for (i, &g) in gids.iter().enumerate() {
                if g != NO_GROUP && g >= n_groups {
                    return Err(format!(
                        "{what} slot {i} holds gid {g}, but only {n_groups} groups exist"
                    ));
                }
            }
            Ok(())
        };
        if let Some(gids) = &self.static_gids {
            check_gids(gids, "static")?;
        }
        if let Some(gids) = &self.time_gids {
            check_gids(gids, "time-varying")?;
        }
        Ok(())
    }

    /// Names of the aggregation attributes, in tuple order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Number of distinct attribute tuples seen in the source graph.
    pub fn n_groups(&self) -> usize {
        self.tuples.len()
    }

    /// True when every aggregation attribute is static (one gid per node).
    pub fn is_static(&self) -> bool {
        self.static_gids.is_some()
    }

    /// The attribute tuple of a group id.
    pub fn tuple(&self, gid: u32) -> &ValueTuple {
        &self.tuples[gid as usize]
    }

    /// Group id of an attribute tuple, if it occurs anywhere in the graph.
    pub fn lookup(&self, tuple: &[Value]) -> Option<u32> {
        self.index.get(tuple).copied()
    }

    /// Group id of node `n` at time `t`, or `None` when absent.
    pub fn gid_at(&self, n: usize, t: usize) -> Option<u32> {
        match (&self.static_gids, &self.time_gids) {
            (Some(gids), _) => Some(gids[n]),
            (_, Some(gids)) => {
                let gid = gids[n * self.nt + t];
                (gid != NO_GROUP).then_some(gid)
            }
            _ => unreachable!("one of the gid tables is always present"),
        }
    }

    #[inline]
    fn time_gid(&self, n: usize, t: usize) -> u32 {
        let gid = self
            .time_gids
            .as_ref()
            .expect("invariant: time_gids built for schemas with time-varying attrs")
            [n * self.nt + t];
        debug_assert_ne!(gid, NO_GROUP, "present entity must have a group id");
        gid
    }

    /// Aggregates the event graph described by `mask` directly against the
    /// source presence matrices: no subgraph is materialized, node weights
    /// accumulate into a dense `Vec` indexed by group id.
    ///
    /// Equivalent to `aggregate(&event_graph(..), attrs, mode)` for the
    /// [`EventMask`] produced by the same arguments (property-tested).
    ///
    /// # Panics
    /// Panics if `g` is not the graph this table was built from.
    pub fn aggregate_masked(
        &self,
        g: &TemporalGraph,
        mask: &EventMask,
        mode: AggMode,
    ) -> AggregateGraph {
        self.aggregate_masked_with(g, mask, mode, &mut Vec::new())
    }

    /// Buffer-reusing form of [`aggregate_masked`](Self::aggregate_masked):
    /// `counts` is the popcount scratch handed to
    /// [`masked_popcounts_into`], overwritten in place, so callers that
    /// aggregate in a loop (the threshold scan, per-worker batches) hoist
    /// the allocation out of it.
    ///
    /// [`masked_popcounts_into`]: tempo_columnar::BitMatrix::masked_popcounts_into
    pub fn aggregate_masked_with(
        &self,
        g: &TemporalGraph,
        mask: &EventMask,
        mode: AggMode,
        counts: &mut Vec<u32>,
    ) -> AggregateGraph {
        let scope = mask.scope().bits();
        debug_assert_eq!(self.check_invariants(), Ok(()));
        debug_assert_eq!(scope.check_invariants(), Ok(()));
        debug_assert_eq!(mask.keep_nodes().check_invariants(), Ok(()));
        let mut node_acc = vec![0u64; self.tuples.len()];
        match (&self.static_gids, mode) {
            (Some(gids), AggMode::Distinct) => {
                for n in mask.keep_nodes().iter_ones() {
                    debug_assert!(
                        g.node_presence_matrix().row_count_masked(n, scope) > 0,
                        "kept node must appear within scope"
                    );
                    node_acc[gids[n] as usize] += 1;
                }
            }
            (Some(gids), AggMode::All) => {
                g.node_presence_matrix()
                    .masked_popcounts_into(scope, counts);
                for n in mask.keep_nodes().iter_ones() {
                    node_acc[gids[n] as usize] += u64::from(counts[n]);
                }
            }
            (None, _) => {
                // Sorted scratch: binary-search insert keeps per-entity
                // dedup O(k log k) in the scope size instead of O(k²).
                let mut seen: Vec<u32> = Vec::new();
                for n in mask.keep_nodes().iter_ones() {
                    seen.clear();
                    for t in g.node_presence_matrix().iter_row_ones_and(n, scope) {
                        let gid = self.time_gid(n, t);
                        match mode {
                            AggMode::All => node_acc[gid as usize] += 1,
                            AggMode::Distinct => {
                                if let Err(pos) = seen.binary_search(&gid) {
                                    seen.insert(pos, gid);
                                    node_acc[gid as usize] += 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut edge_acc: HashMap<(u32, u32), u64> = HashMap::new();
        match &self.static_gids {
            Some(gids) => {
                let weighted = matches!(mode, AggMode::All);
                if weighted {
                    g.edge_presence_matrix()
                        .masked_popcounts_into(scope, counts);
                }
                for e in mask.keep_edges().iter_ones() {
                    let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                    let w = if weighted { u64::from(counts[e]) } else { 1 };
                    *edge_acc
                        .entry((gids[u.index()], gids[v.index()]))
                        .or_insert(0) += w;
                }
            }
            None => {
                let mut seen: Vec<(u32, u32)> = Vec::new();
                for e in mask.keep_edges().iter_ones() {
                    let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                    seen.clear();
                    for t in g.edge_presence_matrix().iter_row_ones_and(e, scope) {
                        let pair = (self.time_gid(u.index(), t), self.time_gid(v.index(), t));
                        match mode {
                            AggMode::All => *edge_acc.entry(pair).or_insert(0) += 1,
                            AggMode::Distinct => {
                                if let Err(pos) = seen.binary_search(&pair) {
                                    seen.insert(pos, pair);
                                    *edge_acc.entry(pair).or_insert(0) += 1;
                                }
                            }
                        }
                    }
                }
            }
        }

        let mut agg = AggregateGraph::new(self.attr_names.clone());
        for (gid, &w) in node_acc.iter().enumerate() {
            if w > 0 {
                agg.add_node_weight(self.tuples[gid].clone(), w);
            }
        }
        for (&(s, d), &w) in &edge_acc {
            agg.add_edge_weight(
                self.tuples[s as usize].clone(),
                self.tuples[d as usize].clone(),
                w,
            );
        }
        agg
    }

    /// Counts `result(G)` of the event graph described by `mask` under
    /// distinct (DIST) semantics — the exploration hot path. No aggregate
    /// graph, no hash map, no tuple is built: group ids are compared
    /// directly, and per-entity scans short-circuit on the first match.
    ///
    /// Equivalent to `selector.count(&aggregate(&event_graph(..), attrs,
    /// AggMode::Distinct))` with `target` resolved from the selector
    /// (property-tested).
    pub fn count_distinct(&self, g: &TemporalGraph, mask: &EventMask, target: &CountTarget) -> u64 {
        self.count_distinct_with_scratch(g, mask, target, &mut Vec::new(), &mut Vec::new())
    }

    /// Buffer-reusing form of [`count_distinct`](Self::count_distinct):
    /// the per-entity dedup scratches are the caller's, cleared per entity
    /// rather than reallocated per call, so evaluators counting in a loop
    /// (one cursor per parallel worker) hoist the allocation across their
    /// whole chain batch.
    pub fn count_distinct_with_scratch(
        &self,
        g: &TemporalGraph,
        mask: &EventMask,
        target: &CountTarget,
        seen_gids: &mut Vec<u32>,
        seen_pairs: &mut Vec<(u32, u32)>,
    ) -> u64 {
        self.ins_calls.inc();
        let scope = mask.scope().bits();
        match (target, &self.static_gids) {
            // A tuple that occurs nowhere in the source graph can never
            // occur in an event graph of it.
            (CountTarget::Node(None), _) | (CountTarget::Edge(None), _) => {
                self.ins_unknown_target.inc();
                0
            }
            (CountTarget::AllNodes, Some(_)) => {
                self.ins_bitmask_fast.inc();
                mask.keep_nodes().count_ones() as u64
            }
            (CountTarget::AllNodes, None) => {
                let mut total = 0u64;
                // Sorted scratch, as in aggregate_masked.
                for n in mask.keep_nodes().iter_ones() {
                    seen_gids.clear();
                    for t in g.node_presence_matrix().iter_row_ones_and(n, scope) {
                        let gid = self.time_gid(n, t);
                        if let Err(pos) = seen_gids.binary_search(&gid) {
                            seen_gids.insert(pos, gid);
                        }
                    }
                    total += seen_gids.len() as u64;
                }
                total
            }
            (CountTarget::Node(Some(gid)), Some(gids)) => mask
                .keep_nodes()
                .iter_ones()
                .filter(|&n| gids[n] == *gid)
                .count() as u64,
            (CountTarget::Node(Some(gid)), None) => mask
                .keep_nodes()
                .iter_ones()
                .filter(|&n| {
                    g.node_presence_matrix()
                        .iter_row_ones_and(n, scope)
                        .any(|t| self.time_gid(n, t) == *gid)
                })
                .count() as u64,
            (CountTarget::AllEdges, Some(_)) => {
                self.ins_bitmask_fast.inc();
                mask.keep_edges().count_ones() as u64
            }
            (CountTarget::AllEdges, None) => {
                let mut total = 0u64;
                for e in mask.keep_edges().iter_ones() {
                    let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                    seen_pairs.clear();
                    for t in g.edge_presence_matrix().iter_row_ones_and(e, scope) {
                        let pair = (self.time_gid(u.index(), t), self.time_gid(v.index(), t));
                        if let Err(pos) = seen_pairs.binary_search(&pair) {
                            seen_pairs.insert(pos, pair);
                        }
                    }
                    total += seen_pairs.len() as u64;
                }
                total
            }
            (CountTarget::Edge(Some((gs, gd))), Some(gids)) => mask
                .keep_edges()
                .iter_ones()
                .filter(|&e| {
                    let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                    gids[u.index()] == *gs && gids[v.index()] == *gd
                })
                .count() as u64,
            (CountTarget::Edge(Some((gs, gd))), None) => mask
                .keep_edges()
                .iter_ones()
                .filter(|&e| {
                    let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                    g.edge_presence_matrix()
                        .iter_row_ones_and(e, scope)
                        .any(|t| {
                            self.time_gid(u.index(), t) == *gs && self.time_gid(v.index(), t) == *gd
                        })
                })
                .count() as u64,
        }
    }

    /// A zeroed dense per-group accumulator (one slot per group id), the
    /// unit the sharded exploration path reduces with
    /// [`merge_accumulator`](Self::merge_accumulator).
    #[must_use]
    pub fn new_accumulator(&self) -> Vec<u64> {
        vec![0; self.tuples.len()]
    }

    /// Merge-by-gid reduction: adds a shard's per-group accumulator into
    /// `dst` slot by slot. Because both sides are dense `Vec`s indexed by
    /// group id, the merge is a plain vector add — one pass per shard, no
    /// keys, no hashing.
    ///
    /// # Panics
    /// Panics if either accumulator was not sized by
    /// [`new_accumulator`](Self::new_accumulator).
    pub fn merge_accumulator(&self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), self.tuples.len(), "dst accumulator size");
        assert_eq!(src.len(), self.tuples.len(), "src accumulator size");
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// Accumulates the distinct-group contributions of a shard's kept
    /// nodes: for each set bit `ln` of `keep` (node id `node_base + ln` in
    /// the source graph), every group id the node takes within `scope`
    /// adds 1 to `acc[gid]`, deduplicated per node via the sorted `seen`
    /// scratch.
    ///
    /// This is [`count_distinct`](Self::count_distinct)'s time-varying
    /// node scan restricted to one shard, decomposed per group id so shard
    /// results reduce by [`merge_accumulator`](Self::merge_accumulator):
    /// summing the merged accumulator gives the `AllNodes` count, and
    /// `acc[gid]` gives the `Node(gid)` count (a node's distinct-group set
    /// contains `gid` exactly when some scope point matches).
    ///
    /// # Panics
    /// Panics if the table is static (static tables take the popcount fast
    /// paths and never accumulate), if `acc` was not sized by
    /// [`new_accumulator`](Self::new_accumulator), or if any id is out of
    /// range for `g`.
    pub fn accumulate_distinct_nodes(
        &self,
        g: &TemporalGraph,
        keep: &tempo_columnar::BitVec,
        node_base: usize,
        scope: &tempo_columnar::BitVec,
        seen: &mut Vec<u32>,
        acc: &mut [u64],
    ) {
        assert!(
            !self.is_static(),
            "static group tables count by popcount, not accumulator"
        );
        assert_eq!(acc.len(), self.tuples.len(), "accumulator size");
        for ln in keep.iter_ones() {
            let n = node_base + ln;
            seen.clear();
            for t in g.node_presence_matrix().iter_row_ones_and(n, scope) {
                let gid = self.time_gid(n, t);
                if let Err(pos) = seen.binary_search(&gid) {
                    seen.insert(pos, gid);
                }
            }
            for &gid in seen.iter() {
                acc[gid as usize] += 1;
            }
        }
    }

    /// Resolves a node-target count from a merged per-group accumulator:
    /// the sum of all slots for [`CountTarget::AllNodes`], one slot for
    /// [`CountTarget::Node`].
    ///
    /// # Panics
    /// Panics if `target` is an edge target (edge counts decompose per
    /// edge and reduce as plain sums, never through an accumulator) or if
    /// `acc` was not sized by [`new_accumulator`](Self::new_accumulator).
    #[must_use]
    pub fn count_from_accumulator(&self, acc: &[u64], target: &CountTarget) -> u64 {
        assert_eq!(acc.len(), self.tuples.len(), "accumulator size");
        match target {
            CountTarget::AllNodes => acc.iter().sum(),
            CountTarget::Node(Some(gid)) => acc[*gid as usize],
            CountTarget::Node(None) => 0,
            CountTarget::AllEdges | CountTarget::Edge(_) => {
                unreachable!("edge targets reduce as scalar sums, not accumulators")
            }
        }
    }

    /// Counts a shard's kept edges under distinct semantics: for each set
    /// bit `le` of `keep` (edge id `edge_base + le` in the source graph),
    /// the distinct endpoint-group pairs within `scope` (for
    /// [`CountTarget::AllEdges`]) or a match test against one pair (for
    /// [`CountTarget::Edge`]). Edge counts decompose per edge, so shard
    /// results reduce as a plain sum.
    ///
    /// This is [`count_distinct`](Self::count_distinct)'s time-varying
    /// edge scan restricted to one shard.
    ///
    /// # Panics
    /// Panics if the table is static, if `target` is a node target, or if
    /// any id is out of range for `g`.
    pub fn count_distinct_edges_range(
        &self,
        g: &TemporalGraph,
        keep: &tempo_columnar::BitVec,
        edge_base: usize,
        scope: &tempo_columnar::BitVec,
        target: &CountTarget,
        seen: &mut Vec<(u32, u32)>,
    ) -> u64 {
        assert!(
            !self.is_static(),
            "static group tables count by popcount, not range scans"
        );
        let mut total = 0u64;
        for le in keep.iter_ones() {
            let e = edge_base + le;
            let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
            match target {
                CountTarget::AllEdges => {
                    seen.clear();
                    for t in g.edge_presence_matrix().iter_row_ones_and(e, scope) {
                        let pair = (self.time_gid(u.index(), t), self.time_gid(v.index(), t));
                        if let Err(pos) = seen.binary_search(&pair) {
                            seen.insert(pos, pair);
                        }
                    }
                    total += seen.len() as u64;
                }
                CountTarget::Edge(Some((gs, gd))) => {
                    if g.edge_presence_matrix()
                        .iter_row_ones_and(e, scope)
                        .any(|t| {
                            self.time_gid(u.index(), t) == *gs && self.time_gid(v.index(), t) == *gd
                        })
                    {
                        total += 1;
                    }
                }
                CountTarget::Edge(None) => {}
                CountTarget::AllNodes | CountTarget::Node(_) => {
                    unreachable!("node targets count nodes, not edges")
                }
            }
        }
        total
    }
}

/// What [`GroupTable::count_distinct`] counts, with selector tuples
/// pre-resolved to group ids once per run. `None` ids mean the requested
/// tuple occurs nowhere in the source graph, so the count is always zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountTarget {
    /// Sum of all aggregate node weights.
    AllNodes,
    /// Sum of all aggregate edge weights.
    AllEdges,
    /// Weight of one aggregate node.
    Node(Option<u32>),
    /// Weight of one aggregate edge.
    Edge(Option<(u32, u32)>),
}

impl CountTarget {
    /// Resolves a node-tuple target against the table.
    pub fn node(table: &GroupTable, tuple: &[Value]) -> CountTarget {
        CountTarget::Node(table.lookup(tuple))
    }

    /// Resolves an edge-tuple-pair target against the table.
    pub fn edge(table: &GroupTable, src: &[Value], dst: &[Value]) -> CountTarget {
        CountTarget::Edge(match (table.lookup(src), table.lookup(dst)) {
            (Some(s), Some(d)) => Some((s, d)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{project_point, union};
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimeSet;

    fn attrs(g: &TemporalGraph, names: &[&str]) -> Vec<AttrId> {
        names.iter().map(|n| g.schema().id(n).unwrap()).collect()
    }

    fn cat(g: &TemporalGraph, attr: &str, label: &str) -> Value {
        let a = g.schema().id(attr).unwrap();
        g.schema().category(a, label).unwrap()
    }

    #[test]
    fn fig3a_aggregate_t0() {
        // Fig. 3a: aggregation of the t0 projection on (gender, pubs).
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        let ga = attrs(&p0, &["gender", "publications"]);
        let agg = aggregate(&p0, &ga, AggMode::Distinct);
        let m = cat(&p0, "gender", "m");
        let f = cat(&p0, "gender", "f");
        // t0 nodes: u1 (m,3), u2 (f,1), u3 (f,1), u4 (f,2)
        assert_eq!(agg.node_weight(&[m.clone(), Value::Int(3)]), 1);
        assert_eq!(agg.node_weight(&[f.clone(), Value::Int(1)]), 2);
        assert_eq!(agg.node_weight(&[f.clone(), Value::Int(2)]), 1);
        assert_eq!(agg.n_nodes(), 3);
        // at a single time point DIST == ALL
        let all = aggregate(&p0, &ga, AggMode::All);
        assert_eq!(agg, all);
    }

    #[test]
    fn fig3d_e_union_dist_vs_all() {
        // Fig. 3d/e: union graph of [t0,t1], node (f,1) has DIST 3, ALL 4.
        let g = fig1();
        let u = union(
            &g,
            &TimeSet::from_indices(3, [0]),
            &TimeSet::from_indices(3, [1]),
        )
        .unwrap();
        let ga = attrs(&u, &["gender", "publications"]);
        let f = cat(&u, "gender", "f");
        let dist = aggregate(&u, &ga, AggMode::Distinct);
        let all = aggregate(&u, &ga, AggMode::All);
        assert_eq!(dist.node_weight(&[f.clone(), Value::Int(1)]), 3);
        assert_eq!(all.node_weight(&[f.clone(), Value::Int(1)]), 4);
    }

    #[test]
    fn static_fast_path_matches_general() {
        let g = fig1();
        let ga = attrs(&g, &["gender"]);
        for mode in [AggMode::Distinct, AggMode::All] {
            let fast = aggregate_static_fast(&g, &ga, mode).unwrap();
            let slow = aggregate(&g, &ga, mode);
            assert_eq!(fast, slow, "mode {mode:?}");
        }
        // time-varying attr rejected
        let pubs = attrs(&g, &["publications"]);
        assert!(aggregate_static_fast(&g, &pubs, AggMode::All).is_err());
    }

    #[test]
    fn frames_path_matches_direct() {
        let g = fig1();
        for names in [
            &["gender"][..],
            &["publications"][..],
            &["gender", "publications"][..],
        ] {
            let ga = attrs(&g, names);
            for mode in [AggMode::Distinct, AggMode::All] {
                let direct = aggregate(&g, &ga, mode);
                let framed = aggregate_via_frames(&g, &ga, mode).unwrap();
                assert_eq!(direct, framed, "attrs {names:?} mode {mode:?}");
            }
        }
    }

    #[test]
    fn edge_weights_fig1_t0() {
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        let ga = attrs(&p0, &["gender"]);
        let agg = aggregate(&p0, &ga, AggMode::Distinct);
        let m = cat(&p0, "gender", "m");
        let f = cat(&p0, "gender", "f");
        // t0 edges: u1->u2 (m->f), u3->u2 (f->f), u4->u2 (f->f)
        assert_eq!(
            agg.edge_weight(std::slice::from_ref(&m), std::slice::from_ref(&f)),
            1
        );
        assert_eq!(
            agg.edge_weight(std::slice::from_ref(&f), std::slice::from_ref(&f)),
            2
        );
        assert_eq!(agg.edge_weight(&[f], &[m]), 0);
    }

    #[test]
    fn filtered_aggregation() {
        let g = fig1();
        let pubs = g.schema().id("publications").unwrap();
        let ga = attrs(&g, &["gender"]);
        // keep only appearances with publications >= 2
        let filter = move |gr: &TemporalGraph, n: NodeId, t: TimePoint| {
            gr.attr_value(n, pubs, t).as_int().unwrap_or(0) >= 2
        };
        let agg = aggregate_filtered(&g, &ga, AggMode::All, Some(&filter));
        let m = cat(&g, "gender", "m");
        let f = cat(&g, "gender", "f");
        // appearances with pubs>=2: u1@t0 (m,3), u4@t0 (f,2), u5@t2 (m,3)
        assert_eq!(agg.node_weight(&[m]), 2);
        assert_eq!(agg.node_weight(&[f]), 1);
        // no edge has both endpoints passing at the same time
        assert_eq!(agg.n_edges(), 0);
    }

    #[test]
    fn rollup_matches_direct_on_timepoint() {
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        let both = attrs(&p0, &["gender", "publications"]);
        let full = aggregate(&p0, &both, AggMode::Distinct);
        let rolled = rollup(&full, &["gender"]).unwrap();
        let direct = aggregate(&p0, &attrs(&p0, &["gender"]), AggMode::Distinct);
        assert_eq!(rolled, direct);
        // unknown attribute errors
        assert!(rollup(&full, &["nope"]).is_err());
    }

    #[test]
    fn rollup_exact_for_all_mode_over_intervals() {
        let g = fig1();
        let both = attrs(&g, &["gender", "publications"]);
        let full = aggregate(&g, &both, AggMode::All);
        let rolled = rollup(&full, &["gender"]).unwrap();
        let direct = aggregate(&g, &attrs(&g, &["gender"]), AggMode::All);
        assert_eq!(rolled, direct);
    }

    #[test]
    fn merge_add_accumulates() {
        let g = fig1();
        let ga = attrs(&g, &["gender"]);
        let mut acc = AggregateGraph::new(vec!["gender".into()]);
        for t in g.domain().iter() {
            let p = project_point(&g, t).unwrap();
            let a = aggregate(&p, &attrs(&p, &["gender"]), AggMode::All);
            acc.merge_add(&a);
        }
        // summing per-timepoint ALL aggregates == ALL aggregate of the full graph
        let direct = aggregate(&g, &ga, AggMode::All);
        assert_eq!(acc, direct);
    }

    #[test]
    fn weights_zero_for_missing() {
        let g = fig1();
        let agg = aggregate(&g, &attrs(&g, &["gender"]), AggMode::All);
        assert_eq!(agg.node_weight(&[Value::Int(999)]), 0);
        assert_eq!(agg.edge_weight(&[Value::Int(1)], &[Value::Int(2)]), 0);
    }

    #[test]
    fn render_contains_weights() {
        let g = fig1();
        let agg = aggregate(&g, &attrs(&g, &["gender"]), AggMode::Distinct);
        let text = agg.render(&g);
        assert!(text.contains("aggregate on (gender)"));
        assert!(text.contains("w="));
    }

    #[test]
    fn group_table_static_and_mixed_layouts() {
        let g = fig1();
        let static_tbl = GroupTable::build(&g, &attrs(&g, &["gender"]));
        assert!(static_tbl.is_static());
        assert_eq!(static_tbl.n_groups(), 2); // m, f
        let mixed = GroupTable::build(&g, &attrs(&g, &["gender", "publications"]));
        assert!(!mixed.is_static());
        // u1 is male with 3 publications at t0
        let u1 = g.node_id("u1").unwrap().index();
        let m = cat(&g, "gender", "m");
        let gid = mixed.gid_at(u1, 0).unwrap();
        assert_eq!(mixed.tuple(gid), &vec![m, Value::Int(3)]);
        assert_eq!(mixed.lookup(&[Value::Int(999)]), None);
        // u1 is absent at t2
        assert_eq!(mixed.gid_at(u1, 2), None);
    }

    #[test]
    fn aggregate_masked_matches_materializing_path_on_fig1() {
        use crate::ops::{event_graph, event_mask, Event, SideTest};
        let g = fig1();
        let intervals = [
            TimeSet::from_indices(3, [0]),
            TimeSet::from_indices(3, [0, 1]),
            TimeSet::from_indices(3, [2]),
        ];
        for names in [
            &["gender"][..],
            &["publications"][..],
            &["gender", "publications"][..],
        ] {
            let ga = attrs(&g, names);
            let table = GroupTable::build(&g, &ga);
            for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
                for told in &intervals {
                    for tnew in &intervals {
                        for mode in [AggMode::Distinct, AggMode::All] {
                            let mask =
                                event_mask(&g, event, told, tnew, SideTest::Any, SideTest::All)
                                    .unwrap();
                            let fast = table.aggregate_masked(&g, &mask, mode);
                            let ev =
                                event_graph(&g, event, told, tnew, SideTest::Any, SideTest::All)
                                    .unwrap();
                            let slow = aggregate(&ev, &attrs(&ev, names), mode);
                            assert_eq!(
                                fast, slow,
                                "{event:?} {told:?} {tnew:?} {mode:?} attrs {names:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn count_distinct_matches_selector_count() {
        use crate::explore::Selector;
        use crate::ops::{event_graph, event_mask, Event, SideTest};
        let g = fig1();
        let told = TimeSet::from_indices(3, [0, 1]);
        let tnew = TimeSet::from_indices(3, [2]);
        let f = cat(&g, "gender", "f");
        for names in [&["gender"][..], &["gender", "publications"][..]] {
            let ga = attrs(&g, names);
            let table = GroupTable::build(&g, &ga);
            let node_tuple: ValueTuple = if names.len() == 1 {
                vec![f.clone()]
            } else {
                vec![f.clone(), Value::Int(1)]
            };
            let selectors = [
                Selector::AllNodes,
                Selector::AllEdges,
                Selector::NodeTuple(node_tuple.clone()),
                Selector::EdgeTuple(node_tuple.clone(), node_tuple.clone()),
            ];
            let targets = [
                CountTarget::AllNodes,
                CountTarget::AllEdges,
                CountTarget::node(&table, &node_tuple),
                CountTarget::edge(&table, &node_tuple, &node_tuple),
            ];
            for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
                let mask =
                    event_mask(&g, event, &told, &tnew, SideTest::Any, SideTest::Any).unwrap();
                let ev =
                    event_graph(&g, event, &told, &tnew, SideTest::Any, SideTest::Any).unwrap();
                let agg = aggregate(&ev, &attrs(&ev, names), AggMode::Distinct);
                for (sel, target) in selectors.iter().zip(&targets) {
                    assert_eq!(
                        table.count_distinct(&g, &mask, target),
                        sel.count(&agg),
                        "{event:?} selector {sel:?} attrs {names:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_target_unknown_tuple_is_zero() {
        use crate::ops::{event_mask, Event, SideTest};
        let g = fig1();
        let table = GroupTable::build(&g, &attrs(&g, &["gender"]));
        let target = CountTarget::node(&table, &[Value::Int(12345)]);
        assert_eq!(target, CountTarget::Node(None));
        let mask = event_mask(
            &g,
            Event::Stability,
            &TimeSet::from_indices(3, [0]),
            &TimeSet::from_indices(3, [1]),
            SideTest::Any,
            SideTest::Any,
        )
        .unwrap();
        assert_eq!(table.count_distinct(&g, &mask, &target), 0);
    }
}
