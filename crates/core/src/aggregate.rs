//! Attribute aggregation (§2.2, Definition 2.6; Algorithm 2; §4.2).
//!
//! Aggregation groups nodes by a tuple of attribute values and counts, with
//! two weight semantics:
//!
//! * **DIST** ([`AggMode::Distinct`]) — each (entity, tuple) pair counts
//!   once no matter how many time points it appears at;
//! * **ALL** ([`AggMode::All`]) — every appearance at every time point
//!   counts.
//!
//! Three implementations are provided and tested equivalent:
//! [`aggregate`] (direct hash aggregation over the presence matrices),
//! [`aggregate_via_frames`] (the paper's Algorithm 2 verbatim on the
//! columnar engine: unpivot → merge → deduplicate → group-count), and
//! [`aggregate_static_fast`] (the §4.2 optimization when every aggregation
//! attribute is static).

use std::collections::{HashMap, HashSet};
use tempo_columnar::{Frame, Value, ValueTuple};
use tempo_graph::{
    AttrId, GraphError, NodeId, Temporality, TemporalGraph, TimePoint,
};

/// Distinct (DIST) vs non-distinct (ALL) weight semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AggMode {
    /// Count each distinct (entity, tuple) pair once.
    Distinct,
    /// Count every appearance at every time point.
    All,
}

/// A weighted aggregate graph `G'(V', E', W_V', W_E', A')`.
///
/// Nodes are attribute tuples; edges are ordered pairs of attribute tuples
/// (the underlying graphs are directed). Weights are COUNT aggregates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateGraph {
    attr_names: Vec<String>,
    nodes: HashMap<ValueTuple, u64>,
    edges: HashMap<(ValueTuple, ValueTuple), u64>,
}

impl AggregateGraph {
    /// Creates an empty aggregate graph over the given attribute names.
    pub fn new(attr_names: Vec<String>) -> Self {
        AggregateGraph {
            attr_names,
            nodes: HashMap::new(),
            edges: HashMap::new(),
        }
    }

    /// Names of the aggregation attributes, in tuple order.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Number of aggregate nodes (distinct attribute tuples).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of aggregate edges (distinct tuple pairs).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of an aggregate node (0 when absent).
    pub fn node_weight(&self, tuple: &[Value]) -> u64 {
        self.nodes.get(tuple).copied().unwrap_or(0)
    }

    /// Weight of an aggregate edge (0 when absent).
    pub fn edge_weight(&self, src: &[Value], dst: &[Value]) -> u64 {
        self.edges
            .get(&(src.to_vec(), dst.to_vec()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of all node weights.
    pub fn total_node_weight(&self) -> u64 {
        self.nodes.values().sum()
    }

    /// Sum of all edge weights.
    pub fn total_edge_weight(&self) -> u64 {
        self.edges.values().sum()
    }

    /// Adds `w` to a node tuple's weight.
    pub fn add_node_weight(&mut self, tuple: ValueTuple, w: u64) {
        if w > 0 {
            *self.nodes.entry(tuple).or_insert(0) += w;
        }
    }

    /// Adds `w` to an edge tuple pair's weight.
    pub fn add_edge_weight(&mut self, src: ValueTuple, dst: ValueTuple, w: u64) {
        if w > 0 {
            *self.edges.entry((src, dst)).or_insert(0) += w;
        }
    }

    /// Iterates nodes sorted by tuple (deterministic order).
    pub fn iter_nodes(&self) -> Vec<(&ValueTuple, u64)> {
        let mut v: Vec<_> = self.nodes.iter().map(|(k, &w)| (k, w)).collect();
        v.sort();
        v
    }

    /// Iterates edges sorted by tuple pair (deterministic order).
    pub fn iter_edges(&self) -> Vec<(&(ValueTuple, ValueTuple), u64)> {
        let mut v: Vec<_> = self.edges.iter().map(|(k, &w)| (k, w)).collect();
        v.sort();
        v
    }

    /// Pointwise weight addition (used by the T-distributive union of
    /// §4.3: the ALL-aggregate of a union graph is the sum of per-timepoint
    /// ALL-aggregates).
    pub fn merge_add(&mut self, other: &AggregateGraph) {
        debug_assert_eq!(self.attr_names, other.attr_names, "attribute mismatch");
        for (k, &w) in &other.nodes {
            *self.nodes.entry(k.clone()).or_insert(0) += w;
        }
        for (k, &w) in &other.edges {
            *self.edges.entry(k.clone()).or_insert(0) += w;
        }
    }

    /// Renders the aggregate graph as text, resolving categorical codes
    /// through the source graph's schema.
    pub fn render(&self, g: &TemporalGraph) -> String {
        use std::fmt::Write as _;
        let attrs: Vec<AttrId> = self
            .attr_names
            .iter()
            .filter_map(|n| g.schema().id(n).ok())
            .collect();
        let fmt_tuple = |tuple: &ValueTuple| -> String {
            if attrs.len() == tuple.len() {
                crate::ops::render_tuple(g, &attrs, tuple)
            } else {
                format!("{tuple:?}")
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "aggregate on ({})", self.attr_names.join(","));
        for (tuple, w) in self.iter_nodes() {
            let _ = writeln!(out, "  node {} w={w}", fmt_tuple(tuple));
        }
        for ((s, d), w) in self.iter_edges() {
            let _ = writeln!(out, "  edge {} -> {} w={w}", fmt_tuple(s), fmt_tuple(d));
        }
        out
    }
}

/// A predicate restricting which (node, time) appearances participate in an
/// aggregation — e.g. the paper's Fig. 12 filter "authors with
/// #Publications > 4".
pub type NodeTimeFilter<'a> = dyn Fn(&TemporalGraph, NodeId, TimePoint) -> bool + 'a;

/// Resolved attribute accessor avoiding schema lookups in inner loops.
enum Resolved {
    Static(usize),
    TimeVarying(usize),
}

fn resolve_attrs(g: &TemporalGraph, attrs: &[AttrId]) -> Vec<Resolved> {
    attrs
        .iter()
        .map(|&a| match g.schema().def(a).temporality() {
            Temporality::Static => {
                Resolved::Static(g.schema().static_slot(a).expect("slot for static attr"))
            }
            Temporality::TimeVarying => Resolved::TimeVarying(
                g.schema()
                    .time_varying_slot(a)
                    .expect("slot for time-varying attr"),
            ),
        })
        .collect()
}

fn tuple_at(
    g: &TemporalGraph,
    resolved: &[Resolved],
    tv_tables: &[&tempo_columnar::ValueMatrix],
    n: usize,
    t: usize,
) -> ValueTuple {
    resolved
        .iter()
        .map(|r| match r {
            Resolved::Static(slot) => g.static_table().get(n, *slot).clone(),
            Resolved::TimeVarying(slot) => tv_tables[*slot].get(n, t).clone(),
        })
        .collect()
}

/// Aggregates `g` on `attrs` with the given mode (Definition 2.6),
/// considering every time point at which each entity exists.
///
/// ```
/// use graphtempo::aggregate::{aggregate, AggMode};
/// use tempo_graph::fixtures::fig1;
///
/// let g = fig1();
/// let gender = g.schema().id("gender").unwrap();
/// let dist = aggregate(&g, &[gender], AggMode::Distinct);
/// // 5 distinct authors: 2 male, 3 female
/// assert_eq!(dist.total_node_weight(), 5);
/// let all = aggregate(&g, &[gender], AggMode::All);
/// // 10 author appearances across the three time points
/// assert_eq!(all.total_node_weight(), 10);
/// ```
///
/// # Panics
/// Panics if any id is not from `g`'s schema.
pub fn aggregate(g: &TemporalGraph, attrs: &[AttrId], mode: AggMode) -> AggregateGraph {
    aggregate_filtered(g, attrs, mode, None)
}

/// [`aggregate`] with an optional per-(node, time) filter; a filtered-out
/// node contributes no appearances, and an edge appearance requires both
/// endpoints to pass.
///
/// # Panics
/// Panics if any id is not from `g`'s schema.
pub fn aggregate_filtered(
    g: &TemporalGraph,
    attrs: &[AttrId],
    mode: AggMode,
    filter: Option<&NodeTimeFilter<'_>>,
) -> AggregateGraph {
    let names: Vec<String> = attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();
    let mut agg = AggregateGraph::new(names);
    let resolved = resolve_attrs(g, attrs);
    let tv_tables: Vec<&tempo_columnar::ValueMatrix> = g
        .schema()
        .time_varying_ids()
        .iter()
        .map(|&a| g.tv_table(a).expect("time-varying table exists"))
        .collect();

    let passes = |n: usize, t: usize| -> bool {
        filter.is_none_or(|f| f(g, NodeId(n as u32), TimePoint(t as u32)))
    };

    // Nodes.
    match mode {
        AggMode::Distinct => {
            let mut seen: HashSet<(usize, ValueTuple)> = HashSet::new();
            for n in 0..g.n_nodes() {
                for t in g.node_presence_matrix().iter_row_ones(n) {
                    if !passes(n, t) {
                        continue;
                    }
                    let tuple = tuple_at(g, &resolved, &tv_tables, n, t);
                    if seen.insert((n, tuple.clone())) {
                        agg.add_node_weight(tuple, 1);
                    }
                }
            }
        }
        AggMode::All => {
            for n in 0..g.n_nodes() {
                for t in g.node_presence_matrix().iter_row_ones(n) {
                    if !passes(n, t) {
                        continue;
                    }
                    let tuple = tuple_at(g, &resolved, &tv_tables, n, t);
                    agg.add_node_weight(tuple, 1);
                }
            }
        }
    }

    // Edges.
    match mode {
        AggMode::Distinct => {
            let mut seen: HashSet<(usize, (ValueTuple, ValueTuple))> = HashSet::new();
            for e in 0..g.n_edges() {
                let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                for t in g.edge_presence_matrix().iter_row_ones(e) {
                    if !passes(u.index(), t) || !passes(v.index(), t) {
                        continue;
                    }
                    let tu = tuple_at(g, &resolved, &tv_tables, u.index(), t);
                    let tv = tuple_at(g, &resolved, &tv_tables, v.index(), t);
                    if seen.insert((e, (tu.clone(), tv.clone()))) {
                        agg.add_edge_weight(tu, tv, 1);
                    }
                }
            }
        }
        AggMode::All => {
            for e in 0..g.n_edges() {
                let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
                for t in g.edge_presence_matrix().iter_row_ones(e) {
                    if !passes(u.index(), t) || !passes(v.index(), t) {
                        continue;
                    }
                    let tu = tuple_at(g, &resolved, &tv_tables, u.index(), t);
                    let tv = tuple_at(g, &resolved, &tv_tables, v.index(), t);
                    agg.add_edge_weight(tu, tv, 1);
                }
            }
        }
    }
    agg
}

/// The §4.2 fast path: aggregation when **every** attribute in `attrs` is
/// static. No unpivoting or per-time tuple construction is needed — DIST
/// counts entities once, ALL weighs them by the size of their timestamp.
///
/// # Errors
/// Returns an error if any attribute is time-varying.
pub fn aggregate_static_fast(
    g: &TemporalGraph,
    attrs: &[AttrId],
    mode: AggMode,
) -> Result<AggregateGraph, GraphError> {
    let mut slots = Vec::with_capacity(attrs.len());
    let mut names = Vec::with_capacity(attrs.len());
    for &a in attrs {
        let def = g.schema().def(a);
        names.push(def.name().to_owned());
        slots.push(g.schema().static_slot(a).ok_or_else(|| {
            GraphError::AttributeKindMismatch {
                name: def.name().to_owned(),
                expected: "static",
            }
        })?);
    }
    let mut agg = AggregateGraph::new(names);
    let node_tuple = |n: usize| -> ValueTuple {
        slots
            .iter()
            .map(|&s| g.static_table().get(n, s).clone())
            .collect()
    };

    for n in 0..g.n_nodes() {
        let appearances = g.node_presence_matrix().row(n).count_ones() as u64;
        if appearances == 0 {
            continue;
        }
        let w = match mode {
            AggMode::Distinct => 1,
            AggMode::All => appearances,
        };
        agg.add_node_weight(node_tuple(n), w);
    }
    for e in 0..g.n_edges() {
        let appearances = g.edge_presence_matrix().row(e).count_ones() as u64;
        if appearances == 0 {
            continue;
        }
        let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
        let w = match mode {
            AggMode::Distinct => 1,
            AggMode::All => appearances,
        };
        agg.add_edge_weight(node_tuple(u.index()), node_tuple(v.index()), w);
    }
    Ok(agg)
}

/// Algorithm 2 verbatim, expressed on the columnar engine: unpivot every
/// time-varying attribute array, merge with the static table, deduplicate
/// on `(u, a')` (DIST only), group-count for node weights; then resolve edge
/// endpoint tuples via index lookup, deduplicate on `((u,v),(a',a''))`
/// (DIST only), and group-count for edge weights.
///
/// Slower than [`aggregate`], but kept as the reference implementation and
/// tested equivalent.
///
/// # Errors
/// Returns an error if a frame operation fails (should not happen for a
/// valid graph/schema).
pub fn aggregate_via_frames(
    g: &TemporalGraph,
    attrs: &[AttrId],
    mode: AggMode,
) -> Result<AggregateGraph, GraphError> {
    let nt = g.domain().len();
    let names: Vec<String> = attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();

    // Build A': one row per (node, time) where the node exists, with one
    // column per aggregation attribute. Time-varying attributes come from
    // unpivoting their arrays (Alg. 2 lines 1–4); static attributes are
    // merged in from S (lines 6–7).
    let mut cols: Vec<String> = vec!["u".to_owned(), "t".to_owned()];
    cols.extend(names.iter().cloned());
    let mut a_prime = Frame::new(cols)?;

    // Unpivot each requested time-varying array into (u, t, value) and
    // index the result for the merge.
    let mut unpivoted: HashMap<usize, HashMap<ValueTuple, Vec<usize>>> = HashMap::new();
    let mut unpivoted_frames: HashMap<usize, Frame> = HashMap::new();
    for (i, &a) in attrs.iter().enumerate() {
        if g.schema().time_varying_slot(a).is_some() {
            let tbl = g.tv_table(a).expect("time-varying table");
            let row_labels: Vec<Value> = (0..g.n_nodes() as i64).map(Value::Int).collect();
            let col_names: Vec<String> = (0..nt).map(|t| t.to_string()).collect();
            let wide = tbl.to_frame(&row_labels, &col_names);
            let long = wide.unpivot(&["id"], "t", "value")?;
            let index = long.index_by(&["id", "t"])?;
            unpivoted.insert(i, index);
            unpivoted_frames.insert(i, long);
        }
    }

    let static_slots: Vec<Option<usize>> = attrs
        .iter()
        .map(|&a| g.schema().static_slot(a))
        .collect();

    for n in 0..g.n_nodes() {
        for t in g.node_presence_matrix().iter_row_ones(n) {
            let mut row: Vec<Value> = vec![Value::Int(n as i64), Value::Int(t as i64)];
            for (i, _) in attrs.iter().enumerate() {
                if let Some(slot) = static_slots[i] {
                    row.push(g.static_table().get(n, slot).clone());
                } else {
                    let key: ValueTuple =
                        vec![Value::Int(n as i64), Value::Str(t.to_string())];
                    let v = unpivoted[&i]
                        .get(&key)
                        .and_then(|rows| rows.first())
                        .map(|&r| unpivoted_frames[&i].row(r)[2].clone())
                        .unwrap_or(Value::Null);
                    row.push(v);
                }
            }
            a_prime.push_row(row)?;
        }
    }

    // Node weights: dedup on (u, a') for DIST (line 5), then group-count on
    // a' (lines 8–12).
    let attr_cols: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut node_key: Vec<&str> = vec!["u"];
    node_key.extend(attr_cols.iter());
    let node_source = match mode {
        AggMode::Distinct => a_prime.dedup_by(&node_key)?,
        AggMode::All => a_prime.clone(),
    };
    let node_groups = node_source.group_count(&attr_cols)?;

    let mut agg = AggregateGraph::new(names.clone());
    let count_col = node_groups.col_index("count")?;
    for row in node_groups.iter_rows() {
        let tuple: ValueTuple = row[..row.len() - 1].to_vec();
        let w = row[count_col].as_int().unwrap_or(0) as u64;
        agg.add_node_weight(tuple, w);
    }

    // Edge weights: look up endpoint tuples in A' (lines 13–17), dedup for
    // DIST (line 18), group-count (lines 19–23).
    let a_index = a_prime.index_by(&["u", "t"])?;
    let mut ecols: Vec<String> = vec!["u".into(), "v".into(), "t".into()];
    for n in &names {
        ecols.push(format!("src_{n}"));
    }
    for n in &names {
        ecols.push(format!("dst_{n}"));
    }
    let mut a_second = Frame::new(ecols)?;
    for e in 0..g.n_edges() {
        let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(e as u32));
        for t in g.edge_presence_matrix().iter_row_ones(e) {
            let lookup = |n: NodeId| -> Option<ValueTuple> {
                let key: ValueTuple = vec![Value::Int(n.index() as i64), Value::Int(t as i64)];
                a_index.get(&key).and_then(|rows| rows.first()).map(|&r| {
                    a_prime.row(r)[2..].to_vec()
                })
            };
            let (Some(tu), Some(tv)) = (lookup(u), lookup(v)) else {
                continue;
            };
            let mut row: Vec<Value> = vec![
                Value::Int(u.index() as i64),
                Value::Int(v.index() as i64),
                Value::Int(t as i64),
            ];
            row.extend(tu);
            row.extend(tv);
            a_second.push_row(row)?;
        }
    }
    let pair_cols: Vec<String> = names
        .iter()
        .map(|n| format!("src_{n}"))
        .chain(names.iter().map(|n| format!("dst_{n}")))
        .collect();
    let pair_refs: Vec<&str> = pair_cols.iter().map(String::as_str).collect();
    let mut edge_key: Vec<&str> = vec!["u", "v"];
    edge_key.extend(pair_refs.iter());
    let edge_source = match mode {
        AggMode::Distinct => a_second.dedup_by(&edge_key)?,
        AggMode::All => a_second,
    };
    let edge_groups = edge_source.group_count(&pair_refs)?;
    let ecount = edge_groups.col_index("count")?;
    let k = names.len();
    for row in edge_groups.iter_rows() {
        let src: ValueTuple = row[..k].to_vec();
        let dst: ValueTuple = row[k..2 * k].to_vec();
        let w = row[ecount].as_int().unwrap_or(0) as u64;
        agg.add_edge_weight(src, dst, w);
    }
    Ok(agg)
}

/// Attribute roll-up (§4.3): derives the aggregate on a subset of the
/// attributes directly from a finer aggregate by grouping tuples and
/// summing weights (COUNT is D-distributive).
///
/// Exact for per-timepoint aggregates and for ALL aggregates over any
/// interval. For DIST over a multi-point interval it over-counts entities
/// whose dropped attributes changed value (the same caveat the paper notes
/// for T-distributivity of distinct aggregation).
///
/// # Errors
/// Returns an error if `keep` is not a subset of the aggregate's attributes.
pub fn rollup(agg: &AggregateGraph, keep: &[&str]) -> Result<AggregateGraph, GraphError> {
    let positions: Vec<usize> = keep
        .iter()
        .map(|k| {
            agg.attr_names()
                .iter()
                .position(|n| n == k)
                .ok_or_else(|| GraphError::UnknownAttribute((*k).to_owned()))
        })
        .collect::<Result<_, _>>()?;
    let mut out = AggregateGraph::new(keep.iter().map(|s| (*s).to_owned()).collect());
    for (tuple, w) in &agg.nodes {
        let sub: ValueTuple = positions.iter().map(|&p| tuple[p].clone()).collect();
        out.add_node_weight(sub, *w);
    }
    for ((src, dst), w) in &agg.edges {
        let s: ValueTuple = positions.iter().map(|&p| src[p].clone()).collect();
        let d: ValueTuple = positions.iter().map(|&p| dst[p].clone()).collect();
        out.add_edge_weight(s, d, *w);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{project_point, union};
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimeSet;

    fn attrs(g: &TemporalGraph, names: &[&str]) -> Vec<AttrId> {
        names.iter().map(|n| g.schema().id(n).unwrap()).collect()
    }

    fn cat(g: &TemporalGraph, attr: &str, label: &str) -> Value {
        let a = g.schema().id(attr).unwrap();
        g.schema().category(a, label).unwrap()
    }

    #[test]
    fn fig3a_aggregate_t0() {
        // Fig. 3a: aggregation of the t0 projection on (gender, pubs).
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        let ga = attrs(&p0, &["gender", "publications"]);
        let agg = aggregate(&p0, &ga, AggMode::Distinct);
        let m = cat(&p0, "gender", "m");
        let f = cat(&p0, "gender", "f");
        // t0 nodes: u1 (m,3), u2 (f,1), u3 (f,1), u4 (f,2)
        assert_eq!(agg.node_weight(&[m.clone(), Value::Int(3)]), 1);
        assert_eq!(agg.node_weight(&[f.clone(), Value::Int(1)]), 2);
        assert_eq!(agg.node_weight(&[f.clone(), Value::Int(2)]), 1);
        assert_eq!(agg.n_nodes(), 3);
        // at a single time point DIST == ALL
        let all = aggregate(&p0, &ga, AggMode::All);
        assert_eq!(agg, all);
    }

    #[test]
    fn fig3d_e_union_dist_vs_all() {
        // Fig. 3d/e: union graph of [t0,t1], node (f,1) has DIST 3, ALL 4.
        let g = fig1();
        let u = union(
            &g,
            &TimeSet::from_indices(3, [0]),
            &TimeSet::from_indices(3, [1]),
        )
        .unwrap();
        let ga = attrs(&u, &["gender", "publications"]);
        let f = cat(&u, "gender", "f");
        let dist = aggregate(&u, &ga, AggMode::Distinct);
        let all = aggregate(&u, &ga, AggMode::All);
        assert_eq!(dist.node_weight(&[f.clone(), Value::Int(1)]), 3);
        assert_eq!(all.node_weight(&[f.clone(), Value::Int(1)]), 4);
    }

    #[test]
    fn static_fast_path_matches_general() {
        let g = fig1();
        let ga = attrs(&g, &["gender"]);
        for mode in [AggMode::Distinct, AggMode::All] {
            let fast = aggregate_static_fast(&g, &ga, mode).unwrap();
            let slow = aggregate(&g, &ga, mode);
            assert_eq!(fast, slow, "mode {mode:?}");
        }
        // time-varying attr rejected
        let pubs = attrs(&g, &["publications"]);
        assert!(aggregate_static_fast(&g, &pubs, AggMode::All).is_err());
    }

    #[test]
    fn frames_path_matches_direct() {
        let g = fig1();
        for names in [&["gender"][..], &["publications"][..], &["gender", "publications"][..]] {
            let ga = attrs(&g, names);
            for mode in [AggMode::Distinct, AggMode::All] {
                let direct = aggregate(&g, &ga, mode);
                let framed = aggregate_via_frames(&g, &ga, mode).unwrap();
                assert_eq!(direct, framed, "attrs {names:?} mode {mode:?}");
            }
        }
    }

    #[test]
    fn edge_weights_fig1_t0() {
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        let ga = attrs(&p0, &["gender"]);
        let agg = aggregate(&p0, &ga, AggMode::Distinct);
        let m = cat(&p0, "gender", "m");
        let f = cat(&p0, "gender", "f");
        // t0 edges: u1->u2 (m->f), u3->u2 (f->f), u4->u2 (f->f)
        assert_eq!(agg.edge_weight(std::slice::from_ref(&m), std::slice::from_ref(&f)), 1);
        assert_eq!(agg.edge_weight(std::slice::from_ref(&f), std::slice::from_ref(&f)), 2);
        assert_eq!(agg.edge_weight(&[f], &[m]), 0);
    }

    #[test]
    fn filtered_aggregation() {
        let g = fig1();
        let pubs = g.schema().id("publications").unwrap();
        let ga = attrs(&g, &["gender"]);
        // keep only appearances with publications >= 2
        let filter = move |gr: &TemporalGraph, n: NodeId, t: TimePoint| {
            gr.attr_value(n, pubs, t).as_int().unwrap_or(0) >= 2
        };
        let agg = aggregate_filtered(&g, &ga, AggMode::All, Some(&filter));
        let m = cat(&g, "gender", "m");
        let f = cat(&g, "gender", "f");
        // appearances with pubs>=2: u1@t0 (m,3), u4@t0 (f,2), u5@t2 (m,3)
        assert_eq!(agg.node_weight(&[m]), 2);
        assert_eq!(agg.node_weight(&[f]), 1);
        // no edge has both endpoints passing at the same time
        assert_eq!(agg.n_edges(), 0);
    }

    #[test]
    fn rollup_matches_direct_on_timepoint() {
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        let both = attrs(&p0, &["gender", "publications"]);
        let full = aggregate(&p0, &both, AggMode::Distinct);
        let rolled = rollup(&full, &["gender"]).unwrap();
        let direct = aggregate(&p0, &attrs(&p0, &["gender"]), AggMode::Distinct);
        assert_eq!(rolled, direct);
        // unknown attribute errors
        assert!(rollup(&full, &["nope"]).is_err());
    }

    #[test]
    fn rollup_exact_for_all_mode_over_intervals() {
        let g = fig1();
        let both = attrs(&g, &["gender", "publications"]);
        let full = aggregate(&g, &both, AggMode::All);
        let rolled = rollup(&full, &["gender"]).unwrap();
        let direct = aggregate(&g, &attrs(&g, &["gender"]), AggMode::All);
        assert_eq!(rolled, direct);
    }

    #[test]
    fn merge_add_accumulates() {
        let g = fig1();
        let ga = attrs(&g, &["gender"]);
        let mut acc = AggregateGraph::new(vec!["gender".into()]);
        for t in g.domain().iter() {
            let p = project_point(&g, t).unwrap();
            let a = aggregate(&p, &attrs(&p, &["gender"]), AggMode::All);
            acc.merge_add(&a);
        }
        // summing per-timepoint ALL aggregates == ALL aggregate of the full graph
        let direct = aggregate(&g, &ga, AggMode::All);
        assert_eq!(acc, direct);
    }

    #[test]
    fn weights_zero_for_missing() {
        let g = fig1();
        let agg = aggregate(&g, &attrs(&g, &["gender"]), AggMode::All);
        assert_eq!(agg.node_weight(&[Value::Int(999)]), 0);
        assert_eq!(agg.edge_weight(&[Value::Int(1)], &[Value::Int(2)]), 0);
    }

    #[test]
    fn render_contains_weights() {
        let g = fig1();
        let agg = aggregate(&g, &attrs(&g, &["gender"]), AggMode::Distinct);
        let text = agg.render(&g);
        assert!(text.contains("aggregate on (gender)"));
        assert!(text.contains("w="));
    }
}
