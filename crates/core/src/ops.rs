//! Temporal operators (§2.1, Definitions 2.2–2.5, Algorithm 1).
//!
//! Every operator takes the source [`TemporalGraph`] and one or two time
//! sets and materializes a new temporal attributed graph containing the
//! selected nodes/edges, with timestamps restricted to the operator's scope
//! (`𝒯₁ ∪ 𝒯₂` for union/intersection, `𝒯₁` for the difference `𝒯₁ − 𝒯₂`).
//!
//! The membership tests generalize over the *union* and *intersection
//! semantics* of §3.1 through [`SideTest`]: under union semantics an entity
//! belongs to an interval if its timestamp intersects it ([`SideTest::Any`]);
//! under intersection semantics it must span every point
//! ([`SideTest::All`]). Definitions 2.3–2.5 are the [`SideTest::Any`]
//! instances.

use tempo_columnar::{BitMatrix, BitVec, Interner, Value, ValueMatrix};
use tempo_graph::{require_non_empty, GraphError, NodeId, TemporalGraph, TimeSet};

/// How an entity's timestamp is tested against one side interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SideTest {
    /// Union semantics: `τ ∩ 𝒯 ≠ ∅` (exists at *some* point of 𝒯).
    Any,
    /// Intersection semantics: `𝒯 ⊆ τ` (exists at *every* point of 𝒯).
    All,
}

impl SideTest {
    /// Evaluates the membership test of `tau` against `side`.
    #[inline]
    pub fn member(self, tau: &TimeSet, side: &TimeSet) -> bool {
        match self {
            SideTest::Any => tau.intersects(side),
            SideTest::All => side.is_subset(tau),
        }
    }
}

/// The three event operators of §2.3/§3, parameterized by side semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Event {
    /// Entities present in both intervals (intersection graph `G∩`).
    Stability,
    /// Entities present in 𝒯new but not 𝒯old (difference `𝒯new − 𝒯old`).
    Growth,
    /// Entities present in 𝒯old but not 𝒯new (difference `𝒯old − 𝒯new`).
    Shrinkage,
}

/// The membership result of an event operator, expressed as packed bitmasks
/// over the *source* graph's node and edge rows.
///
/// This is the zero-materialization half of the exploration kernel: where
/// [`event_graph`] copies the selected entities into a fresh
/// [`TemporalGraph`], an `EventMask` merely records *which* rows of `g`
/// belong to the event graph and over which `scope` their timestamps count.
/// Aggregation can then run directly against the source presence matrices
/// (see `graphtempo::aggregate::GroupTable`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventMask {
    keep_nodes: BitVec,
    keep_edges: BitVec,
    scope: TimeSet,
}

impl EventMask {
    /// Bitmask over source node rows: bit `r` set iff node `r` is in the
    /// event graph.
    #[inline]
    pub fn keep_nodes(&self) -> &BitVec {
        &self.keep_nodes
    }

    /// Bitmask over source edge rows: bit `r` set iff edge `r` is in the
    /// event graph.
    #[inline]
    pub fn keep_edges(&self) -> &BitVec {
        &self.keep_edges
    }

    /// Time scope of the event graph (`𝒯old ∪ 𝒯new` for stability, `𝒯new`
    /// for growth, `𝒯old` for shrinkage): kept entities' timestamps are
    /// restricted to it.
    #[inline]
    pub fn scope(&self) -> &TimeSet {
        &self.scope
    }

    /// Number of nodes in the event graph.
    pub fn n_nodes(&self) -> usize {
        self.keep_nodes.count_ones()
    }

    /// Number of edges in the event graph.
    pub fn n_edges(&self) -> usize {
        self.keep_edges.count_ones()
    }

    /// Source row indices of kept nodes, ascending.
    pub fn node_rows(&self) -> Vec<usize> {
        self.keep_nodes.iter_ones().collect()
    }

    /// Source row indices of kept edges, ascending.
    pub fn edge_rows(&self) -> Vec<usize> {
        self.keep_edges.iter_ones().collect()
    }

    /// Allocates an all-clear mask shaped for `g` (crate-internal: the
    /// chain cursor owns one mask and rewrites it in place per step).
    pub(crate) fn cleared(g: &TemporalGraph) -> EventMask {
        EventMask {
            keep_nodes: BitVec::zeros(g.n_nodes()),
            keep_edges: BitVec::zeros(g.n_edges()),
            scope: TimeSet::empty(g.domain().len()),
        }
    }

    /// Mutable access to the three components for in-place rewriting.
    pub(crate) fn parts_mut(&mut self) -> (&mut BitVec, &mut BitVec, &mut TimeSet) {
        (&mut self.keep_nodes, &mut self.keep_edges, &mut self.scope)
    }
}

/// Tests one presence-matrix row against a side interval without copying
/// the row out (word-level AND / superset checks on the packed storage).
#[inline]
fn row_member(m: &BitMatrix, r: usize, side: &TimeSet, test: SideTest) -> bool {
    match test {
        SideTest::Any => m.row_any(r, side.bits()),
        SideTest::All => m.row_all(r, side.bits()),
    }
}

/// Computes the [`EventMask`] of the §3 event operators for a pair of
/// intervals under explicit side semantics — the selection half of
/// [`event_graph`] with no subgraph materialization: membership is decided
/// row by row against the packed presence matrices.
///
/// # Errors
/// Returns an error if either interval is empty.
pub fn event_mask(
    g: &TemporalGraph,
    event: Event,
    told: &TimeSet,
    tnew: &TimeSet,
    old_test: SideTest,
    new_test: SideTest,
) -> Result<EventMask, GraphError> {
    require_non_empty(told, "𝒯old")?;
    require_non_empty(tnew, "𝒯new")?;
    let nodes_m = g.node_presence_matrix();
    let edges_m = g.edge_presence_matrix();

    let (keep_nodes, keep_edges, scope) = match event {
        Event::Stability => {
            let mut keep_nodes = BitVec::zeros(g.n_nodes());
            for r in 0..g.n_nodes() {
                if row_member(nodes_m, r, told, old_test) && row_member(nodes_m, r, tnew, new_test)
                {
                    keep_nodes.set(r, true);
                }
            }
            let mut keep_edges = BitVec::zeros(g.n_edges());
            for r in 0..g.n_edges() {
                if row_member(edges_m, r, told, old_test) && row_member(edges_m, r, tnew, new_test)
                {
                    keep_edges.set(r, true);
                }
            }
            (keep_nodes, keep_edges, told.union(tnew))
        }
        Event::Growth => {
            let (keep_nodes, keep_edges) = difference_masks(g, tnew, new_test, told, old_test);
            (keep_nodes, keep_edges, tnew.clone())
        }
        Event::Shrinkage => {
            let (keep_nodes, keep_edges) = difference_masks(g, told, old_test, tnew, new_test);
            (keep_nodes, keep_edges, told.clone())
        }
    };
    Ok(EventMask {
        keep_nodes,
        keep_edges,
        scope,
    })
}

/// Mask form of the difference selection (Definition 2.5): edges member of
/// `keep_side` and not of `drop_side`; nodes member of `keep_side` and
/// either not member of `drop_side` or incident to a kept edge.
fn difference_masks(
    g: &TemporalGraph,
    keep_side: &TimeSet,
    keep_test: SideTest,
    drop_side: &TimeSet,
    drop_test: SideTest,
) -> (BitVec, BitVec) {
    let nodes_m = g.node_presence_matrix();
    let edges_m = g.edge_presence_matrix();
    let mut keep_edges = BitVec::zeros(g.n_edges());
    let mut incident = BitVec::zeros(g.n_nodes());
    for r in 0..g.n_edges() {
        if row_member(edges_m, r, keep_side, keep_test)
            && !row_member(edges_m, r, drop_side, drop_test)
        {
            keep_edges.set(r, true);
            let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(r as u32));
            incident.set(u.index(), true);
            incident.set(v.index(), true);
        }
    }
    let mut keep_nodes = BitVec::zeros(g.n_nodes());
    for r in 0..g.n_nodes() {
        if row_member(nodes_m, r, keep_side, keep_test)
            && (!row_member(nodes_m, r, drop_side, drop_test) || incident.get(r))
        {
            keep_nodes.set(r, true);
        }
    }
    (keep_nodes, keep_edges)
}

/// Materializes the subgraph of `g` induced by the kept node and edge rows,
/// with all timestamps and time-varying values masked to `scope`.
fn materialize_subgraph(
    g: &TemporalGraph,
    keep_nodes: &[usize],
    keep_edges: &[usize],
    scope: &TimeSet,
) -> Result<TemporalGraph, GraphError> {
    let nt = g.domain().len();
    let mut names = Interner::new();
    let mut remap = vec![u32::MAX; g.n_nodes()];
    let mut node_presence = BitMatrix::new(nt);
    for &r in keep_nodes {
        let name = g.node_name(NodeId(r as u32)).to_owned();
        let new_id = names.intern(name);
        remap[r] = new_id;
        node_presence.push_row(&g.node_presence_matrix().row_masked(r, scope.bits()));
    }

    let mut edges = Vec::with_capacity(keep_edges.len());
    let mut edge_presence = BitMatrix::new(nt);
    let mut edge_values = g.edge_values_matrix().map(|_| ValueMatrix::new(nt));
    for &r in keep_edges {
        let (u, v) = g.edge_endpoints(tempo_graph::EdgeId(r as u32));
        let (nu, nv) = (remap[u.index()], remap[v.index()]);
        debug_assert!(
            nu != u32::MAX && nv != u32::MAX,
            "kept edge must have kept endpoints"
        );
        edges.push((NodeId(nu), NodeId(nv)));
        let masked = g.edge_presence_matrix().row_masked(r, scope.bits());
        if let (Some(out), Some(src)) = (&mut edge_values, g.edge_values_matrix()) {
            let new_r = out.push_null_row();
            for t in masked.iter_ones() {
                out.set(new_r, t, src.get(r, t).clone());
            }
        }
        edge_presence.push_row(&masked);
    }

    let static_table = g.static_table().select_rows(keep_nodes);

    let schema = g.schema().clone();
    let mut tv_tables = Vec::new();
    for &attr in &schema.time_varying_ids() {
        let src = g
            .tv_table(attr)
            .expect("invariant: id came from time_varying_ids, so a table exists");
        let mut tbl = ValueMatrix::new(nt);
        for (new_r, &r) in keep_nodes.iter().enumerate() {
            tbl.push_null_row();
            for t in node_presence.iter_row_ones(new_r) {
                tbl.set(new_r, t, src.get(r, t).clone());
            }
        }
        tv_tables.push(tbl);
    }

    TemporalGraph::from_parts_with_edge_values(
        g.domain().clone(),
        schema,
        names,
        node_presence,
        edges,
        edge_presence,
        static_table,
        tv_tables,
        edge_values,
    )
}

/// Time projection (Definition 2.2): the subgraph of entities that exist
/// throughout `𝒯₁` (i.e. `𝒯₁ ⊆ τ`), with timestamps restricted to `𝒯₁`.
///
/// # Errors
/// Returns an error if `t1` is empty or materialization fails.
pub fn project(g: &TemporalGraph, t1: &TimeSet) -> Result<TemporalGraph, GraphError> {
    require_non_empty(t1, "𝒯₁")?;
    let keep_nodes: Vec<usize> = (0..g.n_nodes())
        .filter(|&r| g.node_presence_matrix().row_all(r, t1.bits()))
        .collect();
    let keep_edges: Vec<usize> = (0..g.n_edges())
        .filter(|&r| g.edge_presence_matrix().row_all(r, t1.bits()))
        .collect();
    materialize_subgraph(g, &keep_nodes, &keep_edges, t1)
}

/// The projection of a single time point — the paper's per-timepoint graph
/// used throughout the evaluation (Figs. 3, 5).
///
/// # Errors
/// Returns an error if materialization fails.
pub fn project_point(
    g: &TemporalGraph,
    t: tempo_graph::TimePoint,
) -> Result<TemporalGraph, GraphError> {
    project(g, &TimeSet::point(g.domain().len(), t))
}

/// Union operator (Definition 2.3): entities existing at some point of
/// `𝒯₁` **or** `𝒯₂`; timestamps restricted to `𝒯₁ ∪ 𝒯₂`.
///
/// ```
/// use graphtempo::ops::union;
/// use tempo_graph::{fixtures::fig1, TimePoint, TimeSet};
///
/// let g = fig1();
/// // Fig. 2: the union graph of [t0, t1] has four authors, u5 is absent.
/// let u = union(
///     &g,
///     &TimeSet::point(3, TimePoint(0)),
///     &TimeSet::point(3, TimePoint(1)),
/// )
/// .unwrap();
/// assert_eq!(u.n_nodes(), 4);
/// assert!(u.node_id("u5").is_none());
/// ```
///
/// # Errors
/// Returns an error if either interval is empty or materialization fails.
pub fn union(g: &TemporalGraph, t1: &TimeSet, t2: &TimeSet) -> Result<TemporalGraph, GraphError> {
    require_non_empty(t1, "𝒯₁")?;
    require_non_empty(t2, "𝒯₂")?;
    let scope = t1.union(t2);
    let keep_nodes: Vec<usize> = (0..g.n_nodes())
        .filter(|&r| g.node_presence_matrix().row_any(r, scope.bits()))
        .collect();
    let keep_edges: Vec<usize> = (0..g.n_edges())
        .filter(|&r| g.edge_presence_matrix().row_any(r, scope.bits()))
        .collect();
    materialize_subgraph(g, &keep_nodes, &keep_edges, &scope)
}

/// Intersection operator (Definition 2.4): entities existing at some point
/// of `𝒯₁` **and** some point of `𝒯₂`; timestamps restricted to `𝒯₁ ∪ 𝒯₂`.
///
/// # Errors
/// Returns an error if either interval is empty or materialization fails.
pub fn intersection(
    g: &TemporalGraph,
    t1: &TimeSet,
    t2: &TimeSet,
) -> Result<TemporalGraph, GraphError> {
    event_graph(g, Event::Stability, t1, t2, SideTest::Any, SideTest::Any)
}

/// Difference operator (Definition 2.5): the graph `𝒯₁ − 𝒯₂` of entities
/// existing in `𝒯₁` but not in `𝒯₂` (edges strictly; nodes either absent
/// from `𝒯₂` or incident to a deleted edge); timestamps restricted to `𝒯₁`.
///
/// # Errors
/// Returns an error if either interval is empty or materialization fails.
pub fn difference(
    g: &TemporalGraph,
    t1: &TimeSet,
    t2: &TimeSet,
) -> Result<TemporalGraph, GraphError> {
    event_graph(g, Event::Shrinkage, t1, t2, SideTest::Any, SideTest::Any)
}

/// Builds the event graph of §3 for a pair of intervals under explicit side
/// semantics.
///
/// * [`Event::Stability`] — entities member of both `told` and `tnew`;
///   scope `told ∪ tnew`. With `Any`/`Any` this is Definition 2.4.
/// * [`Event::Growth`] — member of `tnew`, not member of `told`; scope
///   `tnew`. With `Any`/`Any` this is the difference `𝒯new − 𝒯old`.
/// * [`Event::Shrinkage`] — member of `told`, not member of `tnew`; scope
///   `told`. With `Any`/`Any` this is the difference `𝒯old − 𝒯new`.
///
/// For the difference events, a node is also kept when an incident selected
/// edge requires it (the `∃(u,v) ∈ E₋` clause of Definition 2.5).
///
/// # Errors
/// Returns an error if either interval is empty or materialization fails.
pub fn event_graph(
    g: &TemporalGraph,
    event: Event,
    told: &TimeSet,
    tnew: &TimeSet,
    old_test: SideTest,
    new_test: SideTest,
) -> Result<TemporalGraph, GraphError> {
    let mask = event_mask(g, event, told, tnew, old_test, new_test)?;
    materialize_subgraph(g, &mask.node_rows(), &mask.edge_rows(), mask.scope())
}

/// Convenience: renders an aggregate value tuple for error messages/tests.
pub(crate) fn render_tuple(
    g: &TemporalGraph,
    attrs: &[tempo_graph::AttrId],
    tuple: &[Value],
) -> String {
    let parts: Vec<String> = attrs
        .iter()
        .zip(tuple)
        .map(|(&a, v)| g.schema().def(a).render(v))
        .collect();
    format!("({})", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimePoint;

    fn ts(points: &[usize]) -> TimeSet {
        TimeSet::from_indices(3, points.iter().copied())
    }

    #[test]
    fn project_requires_full_span() {
        let g = fig1();
        // nodes that exist at BOTH t0 and t1: u1, u2, u4
        let p = project(&g, &ts(&[0, 1])).unwrap();
        assert_eq!(p.n_nodes(), 3);
        assert!(p.node_id("u3").is_none());
        assert!(p.node_id("u1").is_some());
        // edges existing through [t0,t1]: (u1,u2) and (u4,u2)
        assert_eq!(p.n_edges(), 2);
    }

    #[test]
    fn project_point_counts_match_fig1() {
        let g = fig1();
        let p0 = project_point(&g, TimePoint(0)).unwrap();
        assert_eq!((p0.n_nodes(), p0.n_edges()), (4, 3));
        let p2 = project_point(&g, TimePoint(2)).unwrap();
        assert_eq!((p2.n_nodes(), p2.n_edges()), (3, 2));
    }

    #[test]
    fn union_matches_fig2() {
        let g = fig1();
        // Fig. 2: union on [t0, t1] has u1..u4 and edges (u1,u2),(u3,u2),(u4,u2)
        let u = union(&g, &ts(&[0]), &ts(&[1])).unwrap();
        assert_eq!(u.n_nodes(), 4);
        assert!(u.node_id("u5").is_none());
        assert_eq!(u.n_edges(), 3);
        // timestamps restricted to scope: u2 exists at t2 in G but not here
        let u2 = u.node_id("u2").unwrap();
        assert_eq!(
            u.node_timestamp(u2).iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn union_empty_interval_errors() {
        let g = fig1();
        assert!(matches!(
            union(&g, &TimeSet::empty(3), &ts(&[1])),
            Err(GraphError::EmptyInterval(_))
        ));
    }

    #[test]
    fn intersection_keeps_survivors() {
        let g = fig1();
        let i = intersection(&g, &ts(&[0]), &ts(&[2])).unwrap();
        // nodes alive at t0 AND t2: u2, u4
        assert_eq!(i.n_nodes(), 2);
        assert!(i.node_id("u2").is_some() && i.node_id("u4").is_some());
        // edges alive at both: (u4,u2)
        assert_eq!(i.n_edges(), 1);
    }

    #[test]
    fn difference_old_minus_new() {
        let g = fig1();
        // t0 − t1: deleted edge (u3,u2); node u3 disappears; u2 kept as an
        // endpoint of the deleted edge even though it survives
        let d = difference(&g, &ts(&[0]), &ts(&[1])).unwrap();
        assert_eq!(d.n_edges(), 1);
        let names: Vec<&str> = d.node_ids().map(|n| d.node_name(n)).collect();
        assert!(names.contains(&"u3"));
        assert!(names.contains(&"u2"));
        assert!(!names.contains(&"u1"));
        // timestamps restricted to 𝒯₁ = {t0}
        let u3 = d.node_id("u3").unwrap();
        assert_eq!(
            d.node_timestamp(u3).iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn difference_new_minus_old_is_growth() {
        let g = fig1();
        // t2 − t1: new node u5 and new edge (u5,u2)
        let d = difference(&g, &ts(&[2]), &ts(&[1])).unwrap();
        let names: Vec<&str> = d.node_ids().map(|n| d.node_name(n)).collect();
        assert!(names.contains(&"u5"));
        assert_eq!(d.n_edges(), 1);
        let e = d.edge_ids().next().unwrap();
        let (u, v) = d.edge_endpoints(e);
        assert_eq!((d.node_name(u), d.node_name(v)), ("u5", "u2"));
    }

    #[test]
    fn difference_is_asymmetric() {
        let g = fig1();
        let d1 = difference(&g, &ts(&[0]), &ts(&[1])).unwrap();
        let d2 = difference(&g, &ts(&[1]), &ts(&[0])).unwrap();
        assert_ne!(d1.n_edges(), d2.n_edges());
    }

    #[test]
    fn side_test_semantics() {
        let tau = TimeSet::from_indices(4, [1, 2]);
        let side = TimeSet::from_indices(4, [0, 1]);
        assert!(SideTest::Any.member(&tau, &side));
        assert!(!SideTest::All.member(&tau, &side));
        assert!(SideTest::All.member(&tau, &TimeSet::from_indices(4, [1, 2])));
        assert!(SideTest::All.member(&tau, &TimeSet::from_indices(4, [2])));
    }

    #[test]
    fn event_graph_all_semantics_shrinks_result() {
        let g = fig1();
        // stability of [t0,t1] vs t2 under Any: nodes alive in {t0,t1} and t2
        let any = event_graph(
            &g,
            Event::Stability,
            &ts(&[0, 1]),
            &ts(&[2]),
            SideTest::Any,
            SideTest::Any,
        )
        .unwrap();
        // under All on the old side: nodes alive at BOTH t0 and t1, and at t2
        let all = event_graph(
            &g,
            Event::Stability,
            &ts(&[0, 1]),
            &ts(&[2]),
            SideTest::All,
            SideTest::Any,
        )
        .unwrap();
        assert!(all.n_nodes() <= any.n_nodes());
        assert_eq!(any.n_nodes(), 2); // u2, u4
        assert_eq!(all.n_nodes(), 2); // u2, u4 both span t0,t1
    }

    #[test]
    fn event_mask_agrees_with_event_graph_on_fig1() {
        let g = fig1();
        let intervals = [ts(&[0]), ts(&[1]), ts(&[0, 1]), ts(&[2])];
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for told in &intervals {
                for tnew in &intervals {
                    for old_test in [SideTest::Any, SideTest::All] {
                        for new_test in [SideTest::Any, SideTest::All] {
                            let mask =
                                event_mask(&g, event, told, tnew, old_test, new_test).unwrap();
                            let graph =
                                event_graph(&g, event, told, tnew, old_test, new_test).unwrap();
                            assert_eq!(mask.n_nodes(), graph.n_nodes());
                            assert_eq!(mask.n_edges(), graph.n_edges());
                            // same rows: every kept node's name resolves in the graph
                            for r in mask.node_rows() {
                                assert!(
                                    graph.node_id(g.node_name(NodeId(r as u32))).is_some(),
                                    "{event:?} kept node row {r} missing from event graph"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn event_mask_single_timepoint_domain() {
        use tempo_graph::fixtures::fig1;
        let g = fig1();
        // collapse to a single-point interval on both sides: stability keeps
        // exactly the point's entities, growth/shrinkage keep nothing
        let p = ts(&[1]);
        let stab = event_mask(&g, Event::Stability, &p, &p, SideTest::Any, SideTest::Any).unwrap();
        assert_eq!(stab.n_nodes(), 3); // u1, u2, u4 alive at t1
        let grow = event_mask(&g, Event::Growth, &p, &p, SideTest::Any, SideTest::Any).unwrap();
        assert_eq!((grow.n_nodes(), grow.n_edges()), (0, 0));
        assert!(grow.keep_nodes().is_zero() && grow.keep_edges().is_zero());
    }

    #[test]
    fn event_mask_empty_interval_errors() {
        let g = fig1();
        assert!(matches!(
            event_mask(
                &g,
                Event::Stability,
                &TimeSet::empty(3),
                &ts(&[1]),
                SideTest::Any,
                SideTest::Any
            ),
            Err(GraphError::EmptyInterval(_))
        ));
    }

    #[test]
    fn growth_under_all_old_widens() {
        let g = fig1();
        // Growth t1 − [t0]: edges at t1 absent from t0 → none (both t1 edges exist at t0)
        let any = event_graph(
            &g,
            Event::Growth,
            &ts(&[0]),
            &ts(&[1]),
            SideTest::Any,
            SideTest::Any,
        )
        .unwrap();
        assert_eq!(any.n_edges(), 0);
        // Growth t2 − [t0,t1] with All on old side: an edge counts as "in old"
        // only if present at both t0 and t1; (u4,u2) is, (u5,u2) is not.
        let all_old = event_graph(
            &g,
            Event::Growth,
            &ts(&[0, 1]),
            &ts(&[2]),
            SideTest::All,
            SideTest::Any,
        )
        .unwrap();
        assert_eq!(all_old.n_edges(), 1); // only (u5,u2) is new
    }
}
