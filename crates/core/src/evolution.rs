//! The evolution graph (§2.3, Definition 2.7) and its aggregation.
//!
//! The evolution graph between 𝒯₁ and 𝒯₂ overlays three graphs — the
//! intersection `G∩` (stability), the difference `𝒯₁ − 𝒯₂` (shrinkage) and
//! the difference `𝒯₂ − 𝒯₁` (growth). [`EvolutionGraph`] classifies every
//! entity of the source graph accordingly.
//!
//! [`EvolutionAggregate`] reproduces Fig. 4b: for every attribute tuple it
//! carries three weights. Following the paper's worked example, weights are
//! counted at the *(entity, tuple)* granularity — node `u₄` of Fig. 1
//! contributes growth to `(f,1)` and shrinkage to `(f,2)` between `t0` and
//! `t1` because its #publications changed, even though the node itself is
//! stable.

use crate::aggregate::NodeTimeFilter;
use std::collections::HashMap;
use tempo_columnar::{Value, ValueTuple};
use tempo_graph::{
    require_non_empty, AttrId, EdgeId, GraphError, NodeId, TemporalGraph, TimePoint, TimeSet,
};

/// Classification of an entity in an evolution graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum EvolutionClass {
    /// Present in both 𝒯₁ and 𝒯₂.
    Stability,
    /// Present in 𝒯₂ only (new entity).
    Growth,
    /// Present in 𝒯₁ only (deleted entity).
    Shrinkage,
}

/// The evolution graph `G>` of a pair of intervals: every node and edge of
/// the source graph that exists in 𝒯₁ ∪ 𝒯₂, labeled with its
/// [`EvolutionClass`]. Ids refer to the *source* graph.
#[derive(Clone, Debug)]
pub struct EvolutionGraph {
    t1: TimeSet,
    t2: TimeSet,
    nodes: Vec<(NodeId, EvolutionClass)>,
    edges: Vec<(EdgeId, EvolutionClass)>,
}

impl EvolutionGraph {
    /// Computes the evolution graph of `g` between `t1` and `t2`
    /// (Definition 2.7, with union membership semantics on each side).
    ///
    /// # Errors
    /// Returns an error if either interval is empty.
    pub fn compute(g: &TemporalGraph, t1: &TimeSet, t2: &TimeSet) -> Result<Self, GraphError> {
        require_non_empty(t1, "𝒯₁")?;
        require_non_empty(t2, "𝒯₂")?;
        let classify = |tau: &TimeSet| -> Option<EvolutionClass> {
            match (tau.intersects(t1), tau.intersects(t2)) {
                (true, true) => Some(EvolutionClass::Stability),
                (true, false) => Some(EvolutionClass::Shrinkage),
                (false, true) => Some(EvolutionClass::Growth),
                (false, false) => None,
            }
        };
        let mut nodes = Vec::new();
        for n in g.node_ids() {
            if let Some(c) = classify(&g.node_timestamp(n)) {
                nodes.push((n, c));
            }
        }
        let mut edges = Vec::new();
        for e in g.edge_ids() {
            if let Some(c) = classify(&g.edge_timestamp(e)) {
                edges.push((e, c));
            }
        }
        Ok(EvolutionGraph {
            t1: t1.clone(),
            t2: t2.clone(),
            nodes,
            edges,
        })
    }

    /// The earlier interval 𝒯₁.
    pub fn t1(&self) -> &TimeSet {
        &self.t1
    }

    /// The later interval 𝒯₂.
    pub fn t2(&self) -> &TimeSet {
        &self.t2
    }

    /// All classified nodes (source-graph ids).
    pub fn nodes(&self) -> &[(NodeId, EvolutionClass)] {
        &self.nodes
    }

    /// All classified edges (source-graph ids).
    pub fn edges(&self) -> &[(EdgeId, EvolutionClass)] {
        &self.edges
    }

    /// Number of nodes with the given class.
    pub fn count_nodes(&self, class: EvolutionClass) -> usize {
        self.nodes.iter().filter(|(_, c)| *c == class).count()
    }

    /// Number of edges with the given class.
    pub fn count_edges(&self, class: EvolutionClass) -> usize {
        self.edges.iter().filter(|(_, c)| *c == class).count()
    }
}

/// A lazy, thread-safe cache of computed [`EvolutionGraph`]s keyed by
/// interval pair and stamped with the graph epoch they were computed at.
///
/// Like [`crate::materialize::MaterializationCache`], the cache follows
/// one graph lineage across [`tempo_graph::GraphVersions`] appends: each
/// entry records [`TemporalGraph::epoch`] at compute time, and a lookup
/// against a graph with a different stamp is a miss that recomputes and
/// replaces the entry — keying on the interval pair alone would keep
/// serving classifications from a pre-append epoch.
#[derive(Debug, Default)]
pub struct EvolutionCache {
    entries: parking_lot::Mutex<HashMap<IntervalKey, StampedEvolution>>,
}

/// Cache key: the explicit timepoints of the `(t1, t2)` interval pair.
type IntervalKey = (Vec<u32>, Vec<u32>);
/// A cached evolution graph and the epoch it was computed at.
type StampedEvolution = (u64, std::sync::Arc<EvolutionGraph>);

impl EvolutionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the evolution graph of `g` between `t1` and `t2` on the
    /// epoch of `g`, computing it on first use or when the cached entry
    /// was computed at a different epoch.
    ///
    /// # Errors
    /// Returns an error if either interval is empty.
    pub fn evolution_for(
        &self,
        g: &TemporalGraph,
        t1: &TimeSet,
        t2: &TimeSet,
    ) -> Result<std::sync::Arc<EvolutionGraph>, GraphError> {
        let ins = tempo_instrument::global();
        let epoch = g.epoch();
        let key = (points_of(t1), points_of(t2));
        if let Some((stamp, evo)) = self.entries.lock().get(&key) {
            if *stamp == epoch {
                ins.counter("evolution.cache.hits").inc();
                return Ok(std::sync::Arc::clone(evo));
            }
        }
        ins.counter("evolution.cache.misses").inc();
        let evo = std::sync::Arc::new(EvolutionGraph::compute(g, t1, t2)?);
        self.entries
            .lock()
            .insert(key, (epoch, std::sync::Arc::clone(&evo)));
        Ok(evo)
    }

    /// Number of cached interval pairs.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// Cache key form of a [`TimeSet`]: its sorted point indices (domain
/// length deliberately excluded — the domain grows across epochs while
/// the selected points stay comparable).
fn points_of(ts: &TimeSet) -> Vec<u32> {
    ts.iter().map(|t| t.0).collect()
}

/// Stability / growth / shrinkage weights of one aggregate entity
/// (the three weights shown per node in Fig. 4b).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvolutionWeights {
    /// Distinct entities whose tuple appears in both intervals.
    pub stability: u64,
    /// Distinct entities whose tuple appears only in the later interval.
    pub growth: u64,
    /// Distinct entities whose tuple appears only in the earlier interval.
    pub shrinkage: u64,
}

/// The aggregated evolution graph: per attribute tuple (nodes) and tuple
/// pair (edges), the three evolution weights.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvolutionAggregate {
    attr_names: Vec<String>,
    nodes: HashMap<ValueTuple, EvolutionWeights>,
    edges: HashMap<(ValueTuple, ValueTuple), EvolutionWeights>,
}

impl EvolutionAggregate {
    /// Names of the aggregation attributes.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Weights of an aggregate node (zeros when absent).
    pub fn node_weights(&self, tuple: &[Value]) -> EvolutionWeights {
        self.nodes.get(tuple).copied().unwrap_or_default()
    }

    /// Weights of an aggregate edge (zeros when absent).
    pub fn edge_weights(&self, src: &[Value], dst: &[Value]) -> EvolutionWeights {
        self.edges
            .get(&(src.to_vec(), dst.to_vec()))
            .copied()
            .unwrap_or_default()
    }

    /// Aggregate nodes sorted by tuple.
    pub fn iter_nodes(&self) -> Vec<(&ValueTuple, EvolutionWeights)> {
        let mut v: Vec<_> = self.nodes.iter().map(|(k, &w)| (k, w)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Aggregate edges sorted by tuple pair.
    pub fn iter_edges(&self) -> Vec<(&(ValueTuple, ValueTuple), EvolutionWeights)> {
        let mut v: Vec<_> = self.edges.iter().map(|(k, &w)| (k, w)).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Sums the three weights over all aggregate nodes.
    pub fn node_totals(&self) -> EvolutionWeights {
        self.nodes.values().fold(EvolutionWeights::default(), add)
    }

    /// Sums the three weights over all aggregate edges.
    pub fn edge_totals(&self) -> EvolutionWeights {
        self.edges.values().fold(EvolutionWeights::default(), add)
    }
}

fn add(mut acc: EvolutionWeights, w: &EvolutionWeights) -> EvolutionWeights {
    acc.stability += w.stability;
    acc.growth += w.growth;
    acc.shrinkage += w.shrinkage;
    acc
}

/// Aggregates the evolution of `g` between `t1` and `t2` on `attrs`,
/// producing stability/growth/shrinkage weights per tuple (Fig. 4b) at the
/// (entity, tuple) granularity.
///
/// `filter` restricts which (node, time) appearances participate (Fig. 12's
/// "#Publications > 4"); an edge appearance requires both endpoints to pass.
///
/// ```
/// use graphtempo::evolution::evolution_aggregate;
/// use tempo_columnar::Value;
/// use tempo_graph::{fixtures::fig1, TimePoint, TimeSet};
///
/// let g = fig1();
/// let attrs = vec![
///     g.schema().id("gender").unwrap(),
///     g.schema().id("publications").unwrap(),
/// ];
/// let evo = evolution_aggregate(
///     &g,
///     &TimeSet::point(3, TimePoint(0)),
///     &TimeSet::point(3, TimePoint(1)),
///     &attrs,
///     None,
/// )
/// .unwrap();
/// // Fig. 4b: node (f,1) is stable on u2, grows on u4, shrinks on u3
/// let f = g.schema().category(attrs[0], "f").unwrap();
/// let w = evo.node_weights(&[f, Value::Int(1)]);
/// assert_eq!((w.stability, w.growth, w.shrinkage), (1, 1, 1));
/// ```
///
/// # Errors
/// Returns an error if either interval is empty.
pub fn evolution_aggregate(
    g: &TemporalGraph,
    t1: &TimeSet,
    t2: &TimeSet,
    attrs: &[AttrId],
    filter: Option<&NodeTimeFilter<'_>>,
) -> Result<EvolutionAggregate, GraphError> {
    require_non_empty(t1, "𝒯₁")?;
    require_non_empty(t2, "𝒯₂")?;
    let attr_names: Vec<String> = attrs
        .iter()
        .map(|&a| g.schema().def(a).name().to_owned())
        .collect();

    let passes = |n: NodeId, t: TimePoint| -> bool { filter.is_none_or(|f| f(g, n, t)) };
    let tuple_of = |n: NodeId, t: TimePoint| -> ValueTuple {
        attrs.iter().map(|&a| g.attr_value(n, a, t)).collect()
    };

    // For each node, the set of tuples it shows in each interval.
    let mut node_sets: Vec<HashMap<ValueTuple, (bool, bool)>> = Vec::with_capacity(g.n_nodes());
    for n in g.node_ids() {
        let mut tuples: HashMap<ValueTuple, (bool, bool)> = HashMap::new();
        for t in g.node_timestamp(n).iter() {
            let in1 = t1.contains(t);
            let in2 = t2.contains(t);
            if !in1 && !in2 {
                continue;
            }
            if !passes(n, t) {
                continue;
            }
            let entry = tuples.entry(tuple_of(n, t)).or_insert((false, false));
            entry.0 |= in1;
            entry.1 |= in2;
        }
        node_sets.push(tuples);
    }

    let mut out = EvolutionAggregate {
        attr_names,
        nodes: HashMap::new(),
        edges: HashMap::new(),
    };
    for tuples in &node_sets {
        for (tuple, &(in1, in2)) in tuples {
            let w = out.nodes.entry(tuple.clone()).or_default();
            match (in1, in2) {
                (true, true) => w.stability += 1,
                (true, false) => w.shrinkage += 1,
                (false, true) => w.growth += 1,
                (false, false) => {}
            }
        }
    }

    // Edges at the (edge, tuple-pair) granularity.
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        let mut pairs: HashMap<(ValueTuple, ValueTuple), (bool, bool)> = HashMap::new();
        for t in g.edge_timestamp(e).iter() {
            let in1 = t1.contains(t);
            let in2 = t2.contains(t);
            if !in1 && !in2 {
                continue;
            }
            if !passes(u, t) || !passes(v, t) {
                continue;
            }
            let key = (tuple_of(u, t), tuple_of(v, t));
            let entry = pairs.entry(key).or_insert((false, false));
            entry.0 |= in1;
            entry.1 |= in2;
        }
        for (pair, (in1, in2)) in pairs {
            let w = out.edges.entry(pair).or_default();
            match (in1, in2) {
                (true, true) => w.stability += 1,
                (true, false) => w.shrinkage += 1,
                (false, true) => w.growth += 1,
                (false, false) => {}
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures::fig1;

    fn ts(points: &[usize]) -> TimeSet {
        TimeSet::from_indices(3, points.iter().copied())
    }

    #[test]
    fn fig4a_classification() {
        let g = fig1();
        let evo = EvolutionGraph::compute(&g, &ts(&[0]), &ts(&[1])).unwrap();
        // nodes: u1,u2,u4 stable; u3 shrinks; u5 absent from both
        assert_eq!(evo.count_nodes(EvolutionClass::Stability), 3);
        assert_eq!(evo.count_nodes(EvolutionClass::Shrinkage), 1);
        assert_eq!(evo.count_nodes(EvolutionClass::Growth), 0);
        assert_eq!(evo.nodes().len(), 4);
        // edges: (u1,u2),(u4,u2) stable; (u3,u2) shrinks; (u5,u2) absent
        assert_eq!(evo.count_edges(EvolutionClass::Stability), 2);
        assert_eq!(evo.count_edges(EvolutionClass::Shrinkage), 1);
        assert_eq!(evo.count_edges(EvolutionClass::Growth), 0);
    }

    #[test]
    fn growth_appears_for_t1_t2() {
        let g = fig1();
        let evo = EvolutionGraph::compute(&g, &ts(&[1]), &ts(&[2])).unwrap();
        // u5 appears at t2
        assert_eq!(evo.count_nodes(EvolutionClass::Growth), 1);
        assert_eq!(evo.count_edges(EvolutionClass::Growth), 1); // (u5,u2)
                                                                // u1 disappears after t1; its edge (u1,u2) shrinks
        assert_eq!(evo.count_nodes(EvolutionClass::Shrinkage), 1);
        assert_eq!(evo.count_edges(EvolutionClass::Shrinkage), 1);
    }

    #[test]
    fn empty_interval_rejected() {
        let g = fig1();
        assert!(EvolutionGraph::compute(&g, &TimeSet::empty(3), &ts(&[1])).is_err());
        assert!(evolution_aggregate(&g, &ts(&[0]), &TimeSet::empty(3), &[], None).is_err());
    }

    #[test]
    fn fig4b_node_weights() {
        // The paper's worked example: node (f,1) between t0 and t1 has
        // stability 1 (u2), growth 1 (u4 moves from (f,2)), shrinkage 1 (u3).
        let g = fig1();
        let attrs: Vec<AttrId> = ["gender", "publications"]
            .iter()
            .map(|n| g.schema().id(n).unwrap())
            .collect();
        let evo = evolution_aggregate(&g, &ts(&[0]), &ts(&[1]), &attrs, None).unwrap();
        let f = g
            .schema()
            .category(g.schema().id("gender").unwrap(), "f")
            .unwrap();
        let m = g
            .schema()
            .category(g.schema().id("gender").unwrap(), "m")
            .unwrap();
        let w_f1 = evo.node_weights(&[f.clone(), Value::Int(1)]);
        assert_eq!(
            w_f1,
            EvolutionWeights {
                stability: 1,
                growth: 1,
                shrinkage: 1
            }
        );
        // (f,2): u4's t0 tuple disappears
        let w_f2 = evo.node_weights(&[f, Value::Int(2)]);
        assert_eq!(w_f2.shrinkage, 1);
        assert_eq!(w_f2.stability, 0);
        // (m,3): u1's t0 tuple disappears; (m,1) grows at t1
        assert_eq!(evo.node_weights(&[m.clone(), Value::Int(3)]).shrinkage, 1);
        assert_eq!(evo.node_weights(&[m, Value::Int(1)]).growth, 1);
    }

    #[test]
    fn fig4b_edge_weights() {
        let g = fig1();
        let attrs: Vec<AttrId> = ["gender", "publications"]
            .iter()
            .map(|n| g.schema().id(n).unwrap())
            .collect();
        let evo = evolution_aggregate(&g, &ts(&[0]), &ts(&[1]), &attrs, None).unwrap();
        let f = g
            .schema()
            .category(g.schema().id("gender").unwrap(), "f")
            .unwrap();
        // (f,1)->(f,1): u3->u2 shrinks at t0, u4->u2 grows at t1
        let w = evo.edge_weights(&[f.clone(), Value::Int(1)], &[f.clone(), Value::Int(1)]);
        assert_eq!(w.shrinkage, 1);
        assert_eq!(w.growth, 1);
        assert_eq!(w.stability, 0);
        // (f,2)->(f,1): u4->u2's t0 pair shrinks
        let w = evo.edge_weights(&[f.clone(), Value::Int(2)], &[f, Value::Int(1)]);
        assert_eq!(w.shrinkage, 1);
    }

    #[test]
    fn static_attrs_match_node_classification() {
        // When aggregating on a static attribute only, (entity, tuple)
        // granularity coincides with entity granularity.
        let g = fig1();
        let gender = vec![g.schema().id("gender").unwrap()];
        let evo_agg = evolution_aggregate(&g, &ts(&[0]), &ts(&[1]), &gender, None).unwrap();
        let evo = EvolutionGraph::compute(&g, &ts(&[0]), &ts(&[1])).unwrap();
        let totals = evo_agg.node_totals();
        assert_eq!(
            totals.stability as usize,
            evo.count_nodes(EvolutionClass::Stability)
        );
        assert_eq!(
            totals.shrinkage as usize,
            evo.count_nodes(EvolutionClass::Shrinkage)
        );
        assert_eq!(
            totals.growth as usize,
            evo.count_nodes(EvolutionClass::Growth)
        );
        let e_totals = evo_agg.edge_totals();
        assert_eq!(
            e_totals.stability as usize,
            evo.count_edges(EvolutionClass::Stability)
        );
    }

    // Regression: the epoch stamp must turn a post-append lookup into a
    // recompute — a cache keyed on the interval pair alone kept serving
    // the pre-append classification.
    #[test]
    fn evolution_cache_recomputes_on_epoch_mismatch() {
        use tempo_graph::{GraphVersions, TimepointPatch};
        let mut v = GraphVersions::new(fig1());
        let g0 = v.current();
        let cache = EvolutionCache::new();
        let stale = cache.evolution_for(&g0, &ts(&[1]), &ts(&[2])).unwrap();
        assert_eq!(stale.count_nodes(EvolutionClass::Growth), 1); // u5 at t2
        assert!(std::sync::Arc::ptr_eq(
            &stale,
            &cache.evolution_for(&g0, &ts(&[1]), &ts(&[2])).unwrap()
        ));

        let mut p = TimepointPatch::new("t3");
        p.add_edge("u6", "u2"); // brand-new node appears
        let g1 = v.append_timepoint(&p).unwrap();
        // the same interval key on the new epoch must recompute (and
        // replace the entry), not serve the stale classification
        let t1 = TimeSet::from_indices(4, [1]);
        let t2 = TimeSet::from_indices(4, [2]);
        let fresh = cache.evolution_for(&g1, &t1, &t2).unwrap();
        assert!(!std::sync::Arc::ptr_eq(&stale, &fresh));
        assert_eq!(cache.len(), 1);
        // widening 𝒯₂ onto the appended point sees the new node grow
        let wide = cache
            .evolution_for(&g1, &t1, &TimeSet::from_indices(4, [2, 3]))
            .unwrap();
        assert_eq!(wide.count_nodes(EvolutionClass::Growth), 2); // u5, u6
    }

    #[test]
    fn filter_restricts_contributions() {
        let g = fig1();
        let pubs = g.schema().id("publications").unwrap();
        let gender = vec![g.schema().id("gender").unwrap()];
        let filter = move |gr: &TemporalGraph, n: NodeId, t: TimePoint| {
            gr.attr_value(n, pubs, t).as_int().unwrap_or(0) >= 2
        };
        let evo = evolution_aggregate(&g, &ts(&[0]), &ts(&[1]), &gender, Some(&filter)).unwrap();
        let totals = evo.node_totals();
        // only u1@t0 (m,3) and u4@t0 (f,2) pass; both vanish by t1
        assert_eq!(totals.stability, 0);
        assert_eq!(totals.shrinkage, 2);
        assert_eq!(totals.growth, 0);
    }
}
