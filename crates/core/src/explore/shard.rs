//! Entity-space sharded exploration: per-shard chain cursors with
//! merge-by-gid reduction.
//!
//! [`explore_parallel`](super::explore_parallel) fans out over the `n-1`
//! reference chains only — on graphs with few time points and millions of
//! entities most cores sit idle and every accumulator spans the full
//! entity range. This module adds the orthogonal axis: a [`ShardPlan`]
//! partitions the node and edge id spaces into `S` contiguous,
//! word-aligned shards (fragments built and cached by
//! [`TemporalGraph::presence_shards`]), and each interval-pair evaluation
//! runs `S` fragment-local chain cursors whose partial results reduce to
//! the whole-graph count:
//!
//! * popcount-style targets and per-edge distinct scans decompose per
//!   entity, so shards reduce by a plain sum;
//! * time-varying node targets accumulate into the [`GroupTable`]'s dense
//!   per-group accumulators, reduced by **merge-by-gid** — a vector add,
//!   one pass per shard ([`GroupTable::merge_accumulator`]);
//! * the Definition-2.5 incident-endpoint rescue crosses shard boundaries
//!   (an edge's endpoints live anywhere in node space), so difference
//!   events with node targets run a two-barrier exchange through a shared
//!   atomic incident bitmap: every shard scatters the endpoints of its
//!   kept edges, then gathers its own node range back.
//!
//! Execution is driver-broadcast: per chain group, the shard-0 participant
//! (the *driver*) runs the real exploration strategy — pruning, budget
//! checkpoints, outcome recording, all identical to the unsharded engine —
//! and publishes each chain coordinate to `S-1` spin-waiting workers, then
//! merges their partials. Workers carry no strategy or budget logic at
//! all, so the sharded path cannot diverge from the sequential one; the
//! `S = 1` degenerate case *is* the unsharded path
//! ([`explore_prepared_budgeted`]). Total parallelism becomes
//! shards × chain groups. Bit-identity with the unsharded engine across
//! every strategy row, selector, and shard count is property-tested in
//! `tests/sharded_explore.rs`.
//!
//! [`GroupTable`]: crate::aggregate::GroupTable
//! [`GroupTable::merge_accumulator`]: crate::aggregate::GroupTable::merge_accumulator
//! [`TemporalGraph::presence_shards`]: tempo_graph::TemporalGraph::presence_shards

use super::budget::Budget;
use super::cursor::FastCount;
use super::engine::{
    check_domain, explore_reference, ChainEvaluator, ExploreOutcome, IntervalPair,
};
use super::kernel::ExploreKernel;
use super::{explore_budgeted, explore_parallel, explore_prepared_budgeted};
use super::{ExploreConfig, ExtendSide, Semantics};
use crate::aggregate::CountTarget;
use crate::ops::Event;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use tempo_columnar::BitVec;
use tempo_graph::{EdgeId, GraphError, PresenceShards, TemporalGraph, TimePoint, TimeSet};
use tempo_race::{RoundChannel, RoundMsg, SpinBarrier};

const WORD_BITS: usize = 64;

/// The entity-space partition of one graph for a fixed shard count: a
/// cheap handle on the graph's cached [`PresenceShards`] (per-shard
/// transposed presence fragments over word-aligned contiguous id ranges).
///
/// Build once and reuse across [`explore_sharded_prepared`] runs; cloning
/// the plan or rebuilding it for the same graph and shard count shares the
/// cached fragments.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    frags: Arc<PresenceShards>,
}

impl ShardPlan {
    /// Builds (or fetches from the graph's cache) the fragment set for
    /// `shards` shards. A count of zero is treated as one shard.
    #[must_use]
    pub fn new(g: &TemporalGraph, shards: usize) -> ShardPlan {
        ShardPlan {
            frags: g.presence_shards(shards.max(1)),
        }
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.frags.n_shards()
    }

    /// The underlying fragments.
    fn frags(&self) -> &PresenceShards {
        &self.frags
    }
}

/// How each shard turns its fragment-local masks into a partial result,
/// resolved once per run from the kernel's [`FastCount`] and target.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ModeKind {
    /// Target tuple absent from the source graph: every partial is 0.
    Zero,
    /// Static table + all-nodes: popcount over the node fragment.
    PopNodes,
    /// Static table + all-edges: popcount over the edge fragment.
    PopEdges,
    /// Static table + node tuple: popcount ∧ sliced node target mask.
    NodesMatch,
    /// Static table + edge tuple: popcount ∧ sliced edge target mask.
    EdgesMatch,
    /// Time-varying table, node target: per-group accumulator over the
    /// shard's kept nodes, reduced by merge-by-gid.
    TableNodes,
    /// Time-varying table, edge target: per-edge distinct scan over the
    /// shard's kept edges, reduced by sum.
    TableEdges,
}

/// Resolved counting mode shared by every participant of a run, holding
/// the whole-graph target masks each cursor slices to its own range.
struct ShardMode {
    kind: ModeKind,
    node_mask: Option<BitVec>,
    edge_mask: Option<BitVec>,
    /// Difference events with a node-dimension target need the cross-shard
    /// incident exchange (and therefore the two barrier phases) — uniform
    /// across every round of a run, so barriers always pair up.
    uses_incident: bool,
}

impl ShardMode {
    fn resolve(kernel: &ExploreKernel<'_>) -> ShardMode {
        let (kind, node_mask, edge_mask) = match FastCount::resolve(kernel) {
            FastCount::Zero => (ModeKind::Zero, None, None),
            FastCount::PopNodes => (ModeKind::PopNodes, None, None),
            FastCount::PopEdges => (ModeKind::PopEdges, None, None),
            FastCount::NodesMatch(m) => (ModeKind::NodesMatch, Some(m), None),
            FastCount::EdgesMatch(m) => (ModeKind::EdgesMatch, None, Some(m)),
            FastCount::Table => match kernel.target {
                CountTarget::AllNodes | CountTarget::Node(_) => (ModeKind::TableNodes, None, None),
                CountTarget::AllEdges | CountTarget::Edge(_) => (ModeKind::TableEdges, None, None),
            },
        };
        let node_dim = matches!(
            kind,
            ModeKind::PopNodes | ModeKind::NodesMatch | ModeKind::TableNodes
        );
        ShardMode {
            kind,
            node_mask,
            edge_mask,
            uses_incident: node_dim && kernel.cfg.event != Event::Stability,
        }
    }

    fn table_nodes(&self) -> bool {
        self.kind == ModeKind::TableNodes
    }
}

/// Shared round state of one chain group: the driver broadcasts chain
/// coordinates through the [`RoundChannel`], workers publish partials
/// back over its sum/done reduction, and difference/node-target rounds
/// exchange incident-endpoint bits through the shared bitmap between two
/// [`SpinBarrier`] phases. Both protocols live in `tempo-race`, where
/// every interleaving of their virtual-atomics instantiation is
/// exhaustively model-checked (`cargo run -p tempo-race`).
struct GroupComms {
    shards: usize,
    /// Round broadcast + sum/done reduction (chain coordinates packed
    /// `i << 32 | j`; all participants of a chain group hit every barrier
    /// of a round or none — the phase structure is fixed per run by
    /// [`ShardMode`] — so a plain generation barrier suffices).
    chan: RoundChannel,
    barrier: SpinBarrier,
    /// Whole-graph incident-endpoint bitmap (one word per 64 node ids);
    /// empty unless the run's mode uses the incident exchange.
    incident: Vec<AtomicU64>,
    /// Per-worker dense group accumulators (merge-by-gid slots), pre-zeroed
    /// and re-zeroed by the driver's merge; empty unless `TableNodes`.
    acc_slots: Vec<Mutex<Vec<u64>>>,
}

impl GroupComms {
    fn new(shards: usize, mode: &ShardMode, node_words: usize, n_groups: usize) -> GroupComms {
        GroupComms {
            shards,
            chan: RoundChannel::new(),
            barrier: SpinBarrier::new(shards),
            incident: if mode.uses_incident {
                (0..node_words).map(|_| AtomicU64::new(0)).collect()
            } else {
                Vec::new()
            },
            acc_slots: if mode.table_nodes() {
                (1..shards).map(|_| Mutex::new(vec![0; n_groups])).collect()
            } else {
                Vec::new()
            },
        }
    }

    fn publish_stop(&self) {
        self.chan.publish_stop();
    }
}

/// One participant's fragment-local chain cursor: the fused counting
/// cursor's accumulators and mask formulas (see
/// [`ChainCursor`](super::ChainCursor)) over one shard's presence
/// fragments, with target masks pre-sliced to the shard's id range. All
/// scratch is allocated once per participant and reused across the whole
/// run. Records no `explore.*`/`cursor.*` evaluation metrics — the driver
/// accounts each *logical* (merged) evaluation exactly once.
struct ShardCursor<'k, 'g, 'p> {
    kernel: &'k ExploreKernel<'g>,
    node_frag: &'p tempo_columnar::TransposedBitMatrix,
    edge_frag: &'p tempo_columnar::TransposedBitMatrix,
    node_lo: usize,
    edge_lo: usize,
    /// Word range of the shard's node ids in the shared incident bitmap.
    node_word_lo: usize,
    node_word_hi: usize,
    node_target: Option<BitVec>,
    edge_target: Option<BitVec>,
    kind: ModeKind,
    n: usize,
    current_ref: Option<usize>,
    step: usize,
    ref_t: usize,
    ext_nodes: BitVec,
    ext_edges: BitVec,
    scope: TimeSet,
    keep_nodes: BitVec,
    keep_edges: BitVec,
    incident: BitVec,
    gather: Vec<u64>,
    seen_gids: Vec<u32>,
    seen_pairs: Vec<(u32, u32)>,
}

impl<'k, 'g, 'p> ShardCursor<'k, 'g, 'p> {
    fn new(
        kernel: &'k ExploreKernel<'g>,
        frags: &'p PresenceShards,
        mode: &ShardMode,
        s: usize,
    ) -> Self {
        let (node_lo, node_hi) = frags.node_range(s);
        let (edge_lo, edge_hi) = frags.edge_range(s);
        let node_len = node_hi - node_lo;
        let edge_len = edge_hi - edge_lo;
        ShardCursor {
            kernel,
            node_frag: frags.node_frag(s),
            edge_frag: frags.edge_frag(s),
            node_lo,
            edge_lo,
            node_word_lo: node_lo / WORD_BITS,
            node_word_hi: node_lo / WORD_BITS + node_len.div_ceil(WORD_BITS),
            node_target: mode
                .node_mask
                .as_ref()
                .map(|m| m.slice_aligned(node_lo, node_hi)),
            edge_target: mode
                .edge_mask
                .as_ref()
                .map(|m| m.slice_aligned(edge_lo, edge_hi)),
            kind: mode.kind,
            n: kernel.g.domain().len(),
            current_ref: None,
            step: 0,
            ref_t: 0,
            ext_nodes: BitVec::zeros(node_len),
            ext_edges: BitVec::zeros(edge_len),
            scope: TimeSet::empty(kernel.g.domain().len()),
            keep_nodes: BitVec::zeros(node_len),
            keep_edges: BitVec::zeros(edge_len),
            incident: BitVec::zeros(node_len),
            gather: Vec::with_capacity(node_len.div_ceil(WORD_BITS)),
            seen_gids: Vec::new(),
            seen_pairs: Vec::new(),
        }
    }

    /// Mirrors `ChainCursor::start_chain` on the fragment.
    fn start_chain(&mut self, i: usize) {
        assert!(i + 1 < self.n, "reference {i} out of domain {}", self.n);
        self.current_ref = Some(i);
        self.step = 0;
        let (ext_t0, ref_t) = match self.kernel.cfg.extend {
            ExtendSide::New => (i + 1, i),
            ExtendSide::Old => (i, i + 1),
        };
        self.ref_t = ref_t;
        self.node_frag.col(ext_t0).copy_into(&mut self.ext_nodes);
        self.edge_frag.col(ext_t0).copy_into(&mut self.ext_edges);
        self.scope.clear();
        match self.kernel.cfg.event {
            Event::Stability => {
                self.scope.insert(TimePoint(i as u32));
                self.scope.insert(TimePoint((i + 1) as u32));
            }
            Event::Growth => self.scope.insert(TimePoint((i + 1) as u32)),
            Event::Shrinkage => self.scope.insert(TimePoint(i as u32)),
        }
    }

    /// Mirrors `ChainCursor::advance` on the fragment.
    fn advance(&mut self) {
        let i = self
            .current_ref
            .expect("invariant: start_chain loads a reference before advance");
        self.step += 1;
        let t_added = match self.kernel.cfg.extend {
            ExtendSide::New => i + 1 + self.step,
            ExtendSide::Old => i
                .checked_sub(self.step)
                .expect("invariant: chain length caps steps so the old side never passes t0"),
        };
        assert!(
            t_added < self.n,
            "new side extends at most to the domain end"
        );
        let (node_col, edge_col) = (self.node_frag.col(t_added), self.edge_frag.col(t_added));
        match self.kernel.cfg.semantics {
            Semantics::Union => {
                node_col.or_into(&mut self.ext_nodes);
                edge_col.or_into(&mut self.ext_edges);
            }
            Semantics::Intersection => {
                node_col.and_assign_into(&mut self.ext_nodes);
                edge_col.and_assign_into(&mut self.ext_edges);
            }
        }
        let scope_tracks_ext = match self.kernel.cfg.event {
            Event::Stability => true,
            Event::Growth => self.kernel.cfg.extend == ExtendSide::New,
            Event::Shrinkage => self.kernel.cfg.extend == ExtendSide::Old,
        };
        if scope_tracks_ext {
            self.scope.insert(TimePoint(t_added as u32));
        }
    }

    fn ref_is_keep(&self) -> bool {
        matches!(
            (self.kernel.cfg.event, self.kernel.cfg.extend),
            (Event::Growth, ExtendSide::Old) | (Event::Shrinkage, ExtendSide::New)
        )
    }

    /// Two-barrier cross-shard incident exchange (Definition 2.5): every
    /// participant clears its own word range of the shared bitmap, then
    /// scatters the endpoints of *its* kept edges (which land in arbitrary
    /// node shards), then gathers its own node range back as the local
    /// rescue fragment.
    fn exchange_incident(&mut self, comms: &GroupComms) {
        for w in self.node_word_lo..self.node_word_hi {
            // ordering: each phase is separated by a full barrier, which
            // supplies the acquire/release edges; the bitmap accesses
            // themselves never order anything.
            comms.incident[w].store(0, Ordering::Relaxed);
        }
        comms.barrier.wait();
        let g = self.kernel.g;
        for le in self.keep_edges.iter_ones() {
            let (u, v) = g.edge_endpoints(EdgeId((self.edge_lo + le) as u32));
            for id in [u.index(), v.index()] {
                // ordering: scatter phase is barrier-fenced on both sides;
                // the RMW only needs atomicity against sibling scatters.
                comms.incident[id / WORD_BITS].fetch_or(1 << (id % WORD_BITS), Ordering::Relaxed);
            }
        }
        comms.barrier.wait();
        self.gather.clear();
        self.gather.extend(
            (self.node_word_lo..self.node_word_hi)
                // ordering: all scatters happened-before the barrier above.
                .map(|w| comms.incident[w].load(Ordering::Relaxed)),
        );
        self.incident.copy_from_words(&self.gather);
    }

    /// Positions the cursor at chain pair `(i, j)` and produces this
    /// shard's partial: the scalar return for sum-reduced modes, or group
    /// counts added into `acc` (pre-zeroed by the caller's reduction) for
    /// `TableNodes`.
    fn eval_round(
        &mut self,
        i: usize,
        j: usize,
        comms: &GroupComms,
        acc: Option<&mut [u64]>,
    ) -> u64 {
        if self.current_ref != Some(i) || j < self.step {
            self.start_chain(i);
        }
        while self.step < j {
            self.advance();
        }
        let table = &self.kernel.table;
        let g = self.kernel.g;
        let ref_nodes = self.node_frag.col(self.ref_t);
        let ref_edges = self.edge_frag.col(self.ref_t);
        match self.kernel.cfg.event {
            Event::Stability => match self.kind {
                ModeKind::Zero => 0,
                ModeKind::PopNodes => ref_nodes.count_ones_and_dense(&self.ext_nodes) as u64,
                ModeKind::PopEdges => ref_edges.count_ones_and_dense(&self.ext_edges) as u64,
                ModeKind::NodesMatch => {
                    let m = self
                        .node_target
                        .as_ref()
                        .expect("invariant: NodesMatch mode carries a node target mask");
                    ref_nodes.count_ones_and2(&self.ext_nodes, m) as u64
                }
                ModeKind::EdgesMatch => {
                    let m = self
                        .edge_target
                        .as_ref()
                        .expect("invariant: EdgesMatch mode carries an edge target mask");
                    ref_edges.count_ones_and2(&self.ext_edges, m) as u64
                }
                ModeKind::TableNodes => {
                    ref_nodes.and_into(&self.ext_nodes, &mut self.keep_nodes);
                    let acc = acc.expect("invariant: TableNodes rounds pass the group accumulator");
                    table.accumulate_distinct_nodes(
                        g,
                        &self.keep_nodes,
                        self.node_lo,
                        self.scope.bits(),
                        &mut self.seen_gids,
                        acc,
                    );
                    0
                }
                ModeKind::TableEdges => {
                    ref_edges.and_into(&self.ext_edges, &mut self.keep_edges);
                    table.count_distinct_edges_range(
                        g,
                        &self.keep_edges,
                        self.edge_lo,
                        self.scope.bits(),
                        &self.kernel.target,
                        &mut self.seen_pairs,
                    )
                }
            },
            Event::Growth | Event::Shrinkage => {
                if self.kind == ModeKind::Zero {
                    return 0;
                }
                let ref_is_keep = self.ref_is_keep();
                if ref_is_keep {
                    ref_edges.and_not_into(&self.ext_edges, &mut self.keep_edges);
                } else {
                    ref_edges.and_not_from(&self.ext_edges, &mut self.keep_edges);
                }
                match self.kind {
                    ModeKind::PopEdges => self.keep_edges.count_ones() as u64,
                    ModeKind::EdgesMatch => {
                        let m = self
                            .edge_target
                            .as_ref()
                            .expect("invariant: EdgesMatch mode carries an edge target mask");
                        self.keep_edges.count_ones_and(m) as u64
                    }
                    ModeKind::TableEdges => table.count_distinct_edges_range(
                        g,
                        &self.keep_edges,
                        self.edge_lo,
                        self.scope.bits(),
                        &self.kernel.target,
                        &mut self.seen_pairs,
                    ),
                    ModeKind::PopNodes | ModeKind::NodesMatch | ModeKind::TableNodes => {
                        self.exchange_incident(comms);
                        match self.kind {
                            ModeKind::PopNodes | ModeKind::NodesMatch => {
                                let sel = self.node_target.as_ref();
                                if ref_is_keep {
                                    ref_nodes.count_difference_keep(
                                        &self.ext_nodes,
                                        &self.incident,
                                        sel,
                                    ) as u64
                                } else {
                                    ref_nodes.count_difference_drop(
                                        &self.ext_nodes,
                                        &self.incident,
                                        sel,
                                    ) as u64
                                }
                            }
                            ModeKind::TableNodes => {
                                if ref_is_keep {
                                    ref_nodes.and_not_into(&self.ext_nodes, &mut self.keep_nodes);
                                    ref_nodes.or_and_into(&self.incident, &mut self.keep_nodes);
                                } else {
                                    ref_nodes.and_not_from(&self.ext_nodes, &mut self.keep_nodes);
                                    self.keep_nodes
                                        .or_and_assign(&self.incident, &self.ext_nodes);
                                }
                                let acc = acc.expect(
                                    "invariant: TableNodes rounds pass the group accumulator",
                                );
                                table.accumulate_distinct_nodes(
                                    g,
                                    &self.keep_nodes,
                                    self.node_lo,
                                    self.scope.bits(),
                                    &mut self.seen_gids,
                                    acc,
                                );
                                0
                            }
                            _ => unreachable!("outer match covers the node-dimension kinds"),
                        }
                    }
                    ModeKind::Zero => unreachable!("returned above"),
                }
            }
        }
    }
}

#[inline]
fn pack(i: usize, j: usize) -> u64 {
    ((i as u64) << 32) | j as u64
}

#[inline]
fn unpack(op: u64) -> (usize, usize) {
    ((op >> 32) as usize, (op & u32::MAX as u64) as usize)
}

/// Worker loop for shards `1..S` of one chain group: wait for the driver
/// to broadcast a round, evaluate the local fragment at that coordinate,
/// publish the partial, repeat until the stop round. Wait time is recorded
/// under `explore.shard.worker_idle_ns`.
fn shard_worker(
    kernel: &ExploreKernel<'_>,
    frags: &PresenceShards,
    mode: &ShardMode,
    s: usize,
    comms: &GroupComms,
    idle: &Arc<tempo_instrument::Histogram>,
) {
    let mut cursor = ShardCursor::new(kernel, frags, mode, s);
    let mut seen_round = 0u64;
    loop {
        let msg = {
            let _idle = idle.span();
            comms.chan.next(&mut seen_round)
        };
        let (i, j) = match msg {
            RoundMsg::Stop => return,
            RoundMsg::Op(op) => unpack(op),
        };
        let partial = if mode.table_nodes() {
            let mut slot = comms.acc_slots[s - 1]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            cursor.eval_round(i, j, comms, Some(&mut slot))
        } else {
            cursor.eval_round(i, j, comms, None)
        };
        comms.chan.finish(partial);
    }
}

/// The driver's evaluator: shard 0's cursor plus the broadcast/merge
/// protocol. Plugged into the unchanged [`explore_reference`] strategy
/// walk, so pruning, budget checkpoints, and outcome assembly are shared
/// with the sequential engine verbatim. Records `explore.evaluations` and
/// `explore.eval_ns` once per *merged* evaluation (the same accounting as
/// the unsharded cursor) and the reduction latency under
/// `explore.shard.merge_ns`.
struct ShardedEvaluator<'k, 'g, 'p, 'c> {
    cursor: ShardCursor<'k, 'g, 'p>,
    comms: &'c GroupComms,
    /// Driver-side merged accumulator (`TableNodes` only).
    acc: Vec<u64>,
    table_nodes: bool,
    merge_ns: Arc<tempo_instrument::Histogram>,
}

impl<'k, 'g, 'p, 'c> ShardedEvaluator<'k, 'g, 'p, 'c> {
    fn new(
        kernel: &'k ExploreKernel<'g>,
        frags: &'p PresenceShards,
        mode: &ShardMode,
        comms: &'c GroupComms,
        merge_ns: Arc<tempo_instrument::Histogram>,
    ) -> Self {
        ShardedEvaluator {
            cursor: ShardCursor::new(kernel, frags, mode, 0),
            comms,
            acc: if mode.table_nodes() {
                kernel.table.new_accumulator()
            } else {
                Vec::new()
            },
            table_nodes: mode.table_nodes(),
            merge_ns,
        }
    }
}

impl ChainEvaluator for ShardedEvaluator<'_, '_, '_, '_> {
    fn evaluate(&mut self, i: usize, j: usize, _pair: &IntervalPair) -> Result<u64, GraphError> {
        let kernel = self.cursor.kernel;
        let _eval_span = kernel.ins_eval_ns.span();
        kernel.ins_evals.inc();
        let c = self.comms;
        // Workers from the previous round are all past their publishes
        // (the driver waited in `collect`), so `begin`'s reduction reset
        // cannot race them.
        c.chan.begin(pack(i, j));
        let own = if self.table_nodes {
            self.cursor.eval_round(i, j, c, Some(&mut self.acc))
        } else {
            self.cursor.eval_round(i, j, c, None)
        };
        let _merge_span = self.merge_ns.span();
        let mut total = c.chan.collect(c.shards - 1) + own;
        if self.table_nodes {
            // Merge-by-gid: one vector add per shard slot, then derive the
            // scalar from the merged accumulator and re-zero everything for
            // the next round.
            let table = &kernel.table;
            for slot in &c.acc_slots {
                let mut s = slot.lock().unwrap_or_else(PoisonError::into_inner);
                table.merge_accumulator(&mut self.acc, &s);
                s.fill(0);
            }
            total = table.count_from_accumulator(&self.acc, &kernel.target);
            self.acc.fill(0);
        }
        Ok(total)
    }
}

/// [`explore`](super::explore) with each pair evaluation sharded over the
/// plan's entity-space fragments (`chain_groups` reference chains run
/// concurrently, each with its own `S`-participant group — total
/// parallelism shards × chain groups). Outcome is bit-identical to the
/// sequential strategy; a plan of one shard *is* the sequential strategy.
///
/// # Errors
/// Returns [`GraphError::Cancelled`] when the budget trips (checked by
/// each group's driver before every merged evaluation, exactly like the
/// sequential engine), or an error if the graph has fewer than two time
/// points.
///
/// # Panics
/// Panics if a participant thread panics.
pub fn explore_sharded_prepared(
    kernel: &ExploreKernel<'_>,
    plan: &ShardPlan,
    chain_groups: usize,
    budget: &Budget,
) -> Result<ExploreOutcome, GraphError> {
    let n = check_domain(kernel.g)?;
    let shards = plan.n_shards();
    if shards <= 1 {
        return explore_prepared_budgeted(kernel, budget);
    }
    let groups = chain_groups.clamp(1, n - 1);
    let mode = ShardMode::resolve(kernel);
    let mode = &mode;
    let frags = plan.frags();
    let ins = tempo_instrument::global();
    let idle = ins.histogram("explore.shard.worker_idle_ns");
    let merge_ns = ins.histogram("explore.shard.merge_ns");
    let node_words = kernel.g.n_nodes().div_ceil(WORD_BITS);
    let comms: Vec<GroupComms> = (0..groups)
        .map(|_| GroupComms::new(shards, mode, node_words, kernel.table.n_groups()))
        .collect();

    let mut slots: Vec<Option<Result<ExploreOutcome, GraphError>>> = vec![None; n - 1];
    // Same round-robin deal as `explore_parallel`: chain length is linear
    // in the reference index, so contiguous batches would skew one group.
    type RefSlot<'a> = (usize, &'a mut Option<Result<ExploreOutcome, GraphError>>);
    let mut buckets: Vec<Vec<RefSlot<'_>>> = (0..groups).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        buckets[i % groups].push((i, slot));
    }
    crossbeam::thread::scope(|scope| {
        for (bucket, comms) in buckets.into_iter().zip(&comms) {
            for s in 1..shards {
                let idle = Arc::clone(&idle);
                scope.spawn(move |_| shard_worker(kernel, frags, mode, s, comms, &idle));
            }
            let merge_ns = Arc::clone(&merge_ns);
            scope.spawn(move |_| {
                let mut eval = ShardedEvaluator::new(kernel, frags, mode, comms, merge_ns);
                for (i, slot) in bucket {
                    let r = explore_reference(&mut eval, kernel.cfg, n, i, budget);
                    let stop = r.is_err();
                    *slot = Some(r);
                    if stop {
                        break;
                    }
                }
                comms.publish_stop();
            });
        }
    })
    .expect("invariant: sharded exploration participants propagate errors instead of panicking");

    let mut pairs = Vec::new();
    let mut evaluations = 0;
    let mut first_err = None;
    let mut unfilled = false;
    for slot in slots {
        match slot {
            Some(Ok(outcome)) => {
                evaluations += outcome.evaluations;
                pairs.extend(outcome.pairs);
            }
            Some(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            None => unfilled = true,
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    assert!(
        !unfilled,
        "invariant: every reference slot is filled unless a driver erred"
    );
    Ok(ExploreOutcome { pairs, evaluations })
}

/// [`explore`](super::explore) with every pair evaluation sharded over
/// `shards` entity-space fragments (one chain group; see
/// [`explore_sharded_prepared`]). `shards <= 1` is exactly
/// [`explore`](super::explore).
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore_sharded(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    shards: usize,
) -> Result<ExploreOutcome, GraphError> {
    explore_sharded_budgeted(g, cfg, shards, &Budget::unlimited())
}

/// [`explore_sharded`] under a request-scoped [`Budget`]; the budget
/// checkpoints fire before every merged evaluation, exactly as in
/// [`explore_budgeted`](super::explore_budgeted).
///
/// # Errors
/// Returns [`GraphError::Cancelled`] when the budget trips, or any error
/// [`explore_sharded`] can return.
pub fn explore_sharded_budgeted(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    shards: usize,
    budget: &Budget,
) -> Result<ExploreOutcome, GraphError> {
    if shards <= 1 {
        return explore_budgeted(g, cfg, budget);
    }
    let kernel = ExploreKernel::new(g, cfg);
    let plan = ShardPlan::new(g, shards);
    explore_sharded_prepared(&kernel, &plan, 1, budget)
}

/// [`explore_parallel`](super::explore_parallel) with both axes: up to
/// `threads` participants arranged as `threads / shards` chain groups of
/// `shards` entity-space shards each. `shards <= 1` falls back to the
/// chains-only [`explore_parallel`](super::explore_parallel).
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
///
/// # Panics
/// Panics if a participant thread panics.
pub fn explore_sharded_parallel(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    shards: usize,
    threads: usize,
) -> Result<ExploreOutcome, GraphError> {
    if shards <= 1 {
        return explore_parallel(g, cfg, threads.max(1));
    }
    let kernel = ExploreKernel::new(g, cfg);
    let plan = ShardPlan::new(g, shards);
    let groups = (threads.max(1) / shards).max(1);
    explore_sharded_prepared(&kernel, &plan, groups, &Budget::unlimited())
}
