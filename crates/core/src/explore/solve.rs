//! The full exploration problem (Definition 3.6): given a graph and a
//! threshold `k`, find the minimal (union semantics) and maximal
//! (intersection semantics) interval pairs in which at least `k` events of
//! *either* stability, growth or shrinkage occur.

use super::engine::{ExploreOutcome, IntervalPair};
use super::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
use crate::ops::Event;
use std::fmt::Write as _;
use tempo_graph::{AttrId, GraphError, TemporalGraph};

/// One event's minimal and maximal results.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// The event explored.
    pub event: Event,
    /// Minimal interval pairs (union semantics).
    pub minimal: ExploreOutcome,
    /// Maximal interval pairs (intersection semantics).
    pub maximal: ExploreOutcome,
}

/// The Definition-3.6 answer: per event, the minimal and maximal pairs.
#[derive(Clone, Debug)]
pub struct ProblemReport {
    /// The threshold used.
    pub k: u64,
    /// Reports per event (stability, growth, shrinkage).
    pub events: Vec<EventReport>,
}

impl ProblemReport {
    /// Total number of qualifying pairs across all events and both types.
    pub fn total_pairs(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.minimal.pairs.len() + e.maximal.pairs.len())
            .sum()
    }

    /// Total aggregate-graph evaluations spent.
    pub fn total_evaluations(&self) -> usize {
        self.events
            .iter()
            .map(|e| e.minimal.evaluations + e.maximal.evaluations)
            .sum()
    }

    /// Renders the report with a domain's labels.
    pub fn render(&self, domain: &tempo_graph::TimeDomain) -> String {
        let mut out = format!("exploration report (k = {})\n", self.k);
        let fmt = |pairs: &[(IntervalPair, u64)], out: &mut String| {
            for (pair, r) in pairs {
                let _ = writeln!(out, "      {} -> {r} events", pair.display(domain));
            }
        };
        for e in &self.events {
            let _ = writeln!(out, "  {:?}:", e.event);
            let _ = writeln!(out, "    minimal ({} pairs):", e.minimal.pairs.len());
            fmt(&e.minimal.pairs, &mut out);
            let _ = writeln!(out, "    maximal ({} pairs):", e.maximal.pairs.len());
            fmt(&e.maximal.pairs, &mut out);
        }
        out
    }
}

/// Solves Definition 3.6 for all three events, with the given extension
/// side (the reference point is the other side).
///
/// For each event the natural extension side of §3.3/§3.4 is used for the
/// minimal case when `extend` matches it; both semantics always use the
/// same side so the results are directly comparable.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points.
pub fn solve_problem(
    g: &TemporalGraph,
    k: u64,
    attrs: &[AttrId],
    selector: &Selector,
    extend: ExtendSide,
) -> Result<ProblemReport, GraphError> {
    let mut events = Vec::with_capacity(3);
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        let mk = |semantics| ExploreConfig {
            event,
            extend,
            semantics,
            k,
            attrs: attrs.to_vec(),
            selector: selector.clone(),
        };
        events.push(EventReport {
            event,
            minimal: explore(g, &mk(Semantics::Union))?,
            maximal: explore(g, &mk(Semantics::Intersection))?,
        });
    }
    Ok(ProblemReport { k, events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_graph::fixtures::fig1;

    #[test]
    fn solves_all_events() {
        let g = fig1();
        let gender = g.schema().id("gender").unwrap();
        let report = solve_problem(&g, 1, &[gender], &Selector::AllEdges, ExtendSide::New).unwrap();
        assert_eq!(report.events.len(), 3);
        assert!(report.total_evaluations() > 0);
        // stability with k=1 qualifies somewhere on fig1
        let stability = &report.events[0];
        assert_eq!(stability.event, Event::Stability);
        assert!(!stability.minimal.pairs.is_empty());
        assert!(!stability.maximal.pairs.is_empty());
        let text = report.render(g.domain());
        assert!(text.contains("Stability"));
        assert!(text.contains("minimal"));
        assert!(text.contains("maximal"));
    }

    #[test]
    fn huge_k_yields_empty_results() {
        let g = fig1();
        let gender = g.schema().id("gender").unwrap();
        let report =
            solve_problem(&g, 10_000, &[gender], &Selector::AllEdges, ExtendSide::Old).unwrap();
        assert_eq!(report.total_pairs(), 0);
    }
}
