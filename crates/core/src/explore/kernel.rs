//! The zero-materialization evaluation kernel.
//!
//! Exploration evaluates `result(G)` for many interval pairs over the same
//! source graph. The original path builds a full [`TemporalGraph`] per pair
//! ([`evaluate_pair_materialized`], kept as the reference implementation and
//! ablation baseline): every node name is re-interned, static rows are
//! copied, time-varying cells are cloned — only for most of that structure
//! to be discarded after one selector count.
//!
//! [`ExploreKernel`] removes the materialization entirely. Per run it builds
//! one [`GroupTable`] (each node's attribute tuple interned to a dense group
//! id once) and resolves the selector to a [`CountTarget`] (group ids, not
//! tuples). Per pair it computes an [`EventMask`](crate::ops::EventMask) —
//! word-level AND/ANDNOT membership against the source presence matrices —
//! and counts matching group ids directly. No subgraph, no row clones, no
//! per-pair hash keys.

use super::{ExploreConfig, ExtendSide, Selector};
use crate::aggregate::{aggregate, AggMode, CountTarget, GroupTable};
use crate::ops::{event_graph, event_mask, SideTest};
use tempo_graph::{GraphError, TemporalGraph, TimeSet};

/// The membership tests implied by the config: the extended side uses the
/// chosen semantics, the fixed reference side is a single point (Any ≡ All).
pub(super) fn side_tests(cfg: &ExploreConfig) -> (SideTest, SideTest) {
    match cfg.extend {
        ExtendSide::Old => (cfg.semantics.side_test(), SideTest::Any),
        ExtendSide::New => (SideTest::Any, cfg.semantics.side_test()),
    }
}

/// Reference implementation of one pair evaluation: materializes the event
/// graph with [`event_graph`] and aggregates it from scratch. Used by the
/// naive oracle (so the pruned/kernel path is continuously cross-validated
/// against an independent implementation) and by the ablation benchmarks.
///
/// # Errors
/// Returns an error if either interval is empty or an operator fails.
pub fn evaluate_pair_materialized(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    told: &TimeSet,
    tnew: &TimeSet,
) -> Result<u64, GraphError> {
    let (old_test, new_test) = side_tests(cfg);
    let ev = event_graph(g, cfg.event, told, tnew, old_test, new_test)?;
    let agg = aggregate(&ev, &cfg.attrs, AggMode::Distinct);
    Ok(cfg.selector.count(&agg))
}

/// Shared per-run state of the zero-materialization evaluation kernel.
///
/// Immutable after construction and `Sync`: one kernel is built per
/// exploration run and shared by reference across all interval pairs and
/// worker threads.
pub struct ExploreKernel<'g> {
    pub(super) g: &'g TemporalGraph,
    pub(super) cfg: &'g ExploreConfig,
    pub(super) table: GroupTable,
    pub(super) target: CountTarget,
    old_test: SideTest,
    new_test: SideTest,
    /// Instrumentation handles, resolved once so per-pair recording never
    /// touches the registry lock (the kernel is shared across threads, and
    /// the chain cursor records into the same handles so the evaluation
    /// metrics are path-independent).
    pub(super) ins_evals: std::sync::Arc<tempo_instrument::Counter>,
    pub(super) ins_eval_ns: std::sync::Arc<tempo_instrument::Histogram>,
    pub(super) ins_mask_ns: std::sync::Arc<tempo_instrument::Histogram>,
    pub(super) ins_count_ns: std::sync::Arc<tempo_instrument::Histogram>,
}

impl<'g> ExploreKernel<'g> {
    /// Builds the kernel for one exploration run: interns the group table
    /// for `cfg.attrs` and resolves the selector to group ids.
    ///
    /// # Panics
    /// Panics if any attribute id is not from `g`'s schema.
    pub fn new(g: &'g TemporalGraph, cfg: &'g ExploreConfig) -> Self {
        let ins = tempo_instrument::global();
        let build_span = ins.histogram("explore.kernel_build_ns").span();
        let table = GroupTable::build(g, &cfg.attrs);
        let target = match &cfg.selector {
            Selector::AllNodes => CountTarget::AllNodes,
            Selector::AllEdges => CountTarget::AllEdges,
            Selector::NodeTuple(t) => CountTarget::node(&table, t),
            Selector::EdgeTuple(s, d) => CountTarget::edge(&table, s, d),
        };
        let (old_test, new_test) = side_tests(cfg);
        drop(build_span);
        ExploreKernel {
            g,
            cfg,
            table,
            target,
            old_test,
            new_test,
            ins_evals: ins.counter("explore.evaluations"),
            ins_eval_ns: ins.histogram("explore.eval_ns"),
            ins_mask_ns: ins.histogram("explore.mask_ns"),
            ins_count_ns: ins.histogram("explore.count_ns"),
        }
    }

    /// Evaluates `result(G)` for one interval pair: event mask + group-id
    /// count, no materialization.
    ///
    /// # Errors
    /// Returns an error if either interval is empty.
    pub fn evaluate(&self, told: &TimeSet, tnew: &TimeSet) -> Result<u64, GraphError> {
        let _eval_span = self.ins_eval_ns.span();
        self.ins_evals.inc();
        let mask = {
            let _s = self.ins_mask_ns.span();
            event_mask(
                self.g,
                self.cfg.event,
                told,
                tnew,
                self.old_test,
                self.new_test,
            )?
        };
        debug_assert_eq!(mask.keep_nodes().check_invariants(), Ok(()));
        debug_assert_eq!(mask.keep_edges().check_invariants(), Ok(()));
        let _s = self.ins_count_ns.span();
        Ok(self.table.count_distinct(self.g, &mask, &self.target))
    }

    /// The interned group table backing this kernel.
    pub fn group_table(&self) -> &GroupTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Selector, Semantics};
    use crate::ops::Event;
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimePoint;

    #[test]
    fn kernel_matches_materialized_on_fig1() {
        let g = fig1();
        let gender = g.schema().id("gender").unwrap();
        let f = g.schema().category(gender, "f").unwrap();
        let selectors = [
            Selector::AllNodes,
            Selector::AllEdges,
            Selector::NodeTuple(vec![f.clone()]),
            Selector::edge_1attr(f.clone(), f.clone()),
        ];
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    for selector in &selectors {
                        let cfg = ExploreConfig {
                            event,
                            extend,
                            semantics,
                            k: 1,
                            attrs: vec![gender],
                            selector: selector.clone(),
                        };
                        let kernel = ExploreKernel::new(&g, &cfg);
                        for i in 0..2usize {
                            for j in 0..2usize {
                                let told = TimeSet::range(3, i.min(j), i.max(j));
                                let tnew = TimeSet::point(3, TimePoint(2));
                                assert_eq!(
                                    kernel.evaluate(&told, &tnew).unwrap(),
                                    evaluate_pair_materialized(&g, &cfg, &told, &tnew).unwrap(),
                                    "{event:?}/{extend:?}/{semantics:?}/{selector:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_selector_tuple_counts_zero() {
        let g = fig1();
        let gender = g.schema().id("gender").unwrap();
        let cfg = ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k: 1,
            attrs: vec![gender],
            selector: Selector::NodeTuple(vec![tempo_columnar::Value::Int(77)]),
        };
        let kernel = ExploreKernel::new(&g, &cfg);
        let told = TimeSet::point(3, TimePoint(0));
        let tnew = TimeSet::point(3, TimePoint(1));
        assert_eq!(kernel.evaluate(&told, &tnew).unwrap(), 0);
        assert_eq!(
            evaluate_pair_materialized(&g, &cfg, &told, &tnew).unwrap(),
            0
        );
    }
}
