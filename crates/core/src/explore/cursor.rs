//! Chain-incremental pair evaluation over the transposed presence index.
//!
//! The per-pair kernel re-derives both sides' memberships from scratch for
//! every interval pair: each evaluation walks every node and edge row and
//! tests it against 𝒯old and 𝒯new (`O(rows × interval-words)`). But
//! exploration never evaluates arbitrary pairs — it walks *chains*. Within
//! the chain of reference `i`, one side is the fixed point `i` (or `i+1`)
//! and the other grows by exactly one time point per step. Membership under
//! union semantics therefore evolves as `acc |= column[t]`; under
//! intersection as `acc &= column[t]` — a whole-vector OR/AND against one
//! column of the transposed presence index
//! ([`TemporalGraph::node_presence_columns`]), i.e. `O(entity-words)` per
//! step independent of interval length.
//!
//! [`ChainCursor`] holds those accumulators plus a reusable
//! [`EventMask`], and emits each step's mask with whole-vector AND/ANDNOT
//! (including the Definition-2.5 incident-node fix-up, recomputed only over
//! the kept-edge set bits). For static group tables it also resolves the
//! count to a precomputed target bitmask, so a full evaluation is a
//! popcount — no per-entity scan at all. A counting cursor
//! ([`ChainCursor::new_counting`], what the engine drives) goes one step
//! further and fuses the membership test into the count: a stability
//! evaluation is one `popcount(ref & ext [& target])` sweep and a difference
//! evaluation one `popcount(keep & (!drop | incident) [& target])` sweep,
//! with no node keep-mask write at all. Results are bit-identical to the
//! per-pair kernel and the materializing oracle (property-tested in
//! `tests/chain_cursor.rs`).

use super::engine::{ChainEvaluator, IntervalPair};
use super::kernel::ExploreKernel;
use super::{ExtendSide, Semantics};
use crate::aggregate::CountTarget;
use crate::ops::{Event, EventMask};
use tempo_columnar::{BitVec, TransposedBitMatrix};
use tempo_graph::{EdgeId, GraphError, TimePoint};

/// How the cursor turns a finished [`EventMask`] into `result(G)`.
///
/// With a static group table every entity keeps one group id for the whole
/// domain, so the distinct count over any scope collapses to a popcount of
/// the kept mask (optionally intersected with a precomputed target mask).
/// Time-varying tables fall back to [`GroupTable::count_distinct`]
/// (`Table`), which scans kept entities.
///
/// [`GroupTable::count_distinct`]: crate::aggregate::GroupTable::count_distinct
pub(super) enum FastCount {
    /// Selector tuple occurs nowhere in the source graph — always 0.
    Zero,
    /// Static table + all-nodes selector: popcount of kept nodes.
    PopNodes,
    /// Static table + all-edges selector: popcount of kept edges.
    PopEdges,
    /// Static table + one node tuple: popcount of kept ∧ target mask.
    NodesMatch(BitVec),
    /// Static table + one edge tuple pair: popcount of kept ∧ target mask.
    EdgesMatch(BitVec),
    /// Time-varying table: defer to the general distinct scan.
    Table,
}

impl FastCount {
    pub(super) fn resolve(kernel: &ExploreKernel<'_>) -> FastCount {
        let g = kernel.g;
        match (&kernel.target, kernel.table.is_static()) {
            // A tuple absent from the source graph can never appear in an
            // event graph of it (same shortcut as count_distinct).
            (CountTarget::Node(None), _) | (CountTarget::Edge(None), _) => FastCount::Zero,
            (_, false) => FastCount::Table,
            (CountTarget::AllNodes, true) => FastCount::PopNodes,
            (CountTarget::AllEdges, true) => FastCount::PopEdges,
            (CountTarget::Node(Some(gid)), true) => {
                let mut m = BitVec::zeros(g.n_nodes());
                for n in 0..g.n_nodes() {
                    if kernel.table.gid_at(n, 0) == Some(*gid) {
                        m.set(n, true);
                    }
                }
                FastCount::NodesMatch(m)
            }
            (CountTarget::Edge(Some((gs, gd))), true) => {
                let mut m = BitVec::zeros(g.n_edges());
                for e in 0..g.n_edges() {
                    let (u, v) = g.edge_endpoints(EdgeId(e as u32));
                    if kernel.table.gid_at(u.index(), 0) == Some(*gs)
                        && kernel.table.gid_at(v.index(), 0) == Some(*gd)
                    {
                        m.set(e, true);
                    }
                }
                FastCount::EdgesMatch(m)
            }
        }
    }
}

/// Incremental evaluator for the pairs of one reference chain at a time.
///
/// Built once per exploration run (or per worker thread — cursors over the
/// same shared [`ExploreKernel`] are independent) and driven forward through
/// `(i, j)` chain coordinates by [`ChainCursor::evaluate_chain_pair`]. The
/// cursor records into the kernel's evaluation instruments, so
/// `explore.evaluations` / `eval_ns` / `mask_ns` / `count_ns` mean the same
/// thing whichever evaluator runs.
pub struct ChainCursor<'k, 'g> {
    kernel: &'k ExploreKernel<'g>,
    node_cols: &'g TransposedBitMatrix,
    edge_cols: &'g TransposedBitMatrix,
    /// Domain length.
    n: usize,
    fast: FastCount,
    /// Reference index of the chain currently loaded, if any.
    current_ref: Option<usize>,
    /// Steps taken from the base pair (chain coordinate `j`).
    step: usize,
    /// Time point of the fixed reference side of the loaded chain.
    ref_t: usize,
    /// Extended-side membership accumulators (`|=` under union, `&=` under
    /// intersection, one transposed column per step).
    ext_nodes: BitVec,
    ext_edges: BitVec,
    /// Reusable output mask, rewritten in place per evaluation.
    mask: EventMask,
    /// Scratch for the Definition-2.5 incident-node fix-up.
    incident: BitVec,
    /// Node ids currently set in `incident`, so the next evaluation clears
    /// only those bits (`O(kept edges)`) instead of the whole vector.
    incident_touched: Vec<u32>,
    /// Dedup scratches for the time-varying distinct count, hoisted so a
    /// worker's whole chain batch reuses one pair of buffers.
    seen_gids: Vec<u32>,
    seen_pairs: Vec<(u32, u32)>,
    /// Count-only mode ([`new_counting`](Self::new_counting)): popcount
    /// selectors fuse the membership test and the count into one
    /// word-parallel (or sparse-probe) pass, skipping the node keep-mask
    /// write entirely. [`last_mask`](Self::last_mask) is then not
    /// meaningful, so the mode is opt-in.
    count_only: bool,
    ins_chains: std::sync::Arc<tempo_instrument::Counter>,
    ins_steps: std::sync::Arc<tempo_instrument::Counter>,
    ins_step_ns: std::sync::Arc<tempo_instrument::Histogram>,
}

impl<'k, 'g> ChainCursor<'k, 'g> {
    /// Builds a cursor over a shared kernel: borrows (building on first use)
    /// the graph's transposed presence indexes and resolves the fast count
    /// path for the kernel's target. Every evaluation materializes the full
    /// [`EventMask`], so [`last_mask`](Self::last_mask) is valid after each
    /// call.
    pub fn new(kernel: &'k ExploreKernel<'g>) -> Self {
        Self::build(kernel, false)
    }

    /// [`new`](Self::new), but for callers that only read the returned
    /// counts (the exploration engine): popcount-style selectors are
    /// evaluated as one fused membership-and-count pass with no node
    /// keep-mask write. [`last_mask`](Self::last_mask) contents are
    /// unspecified on this cursor.
    pub fn new_counting(kernel: &'k ExploreKernel<'g>) -> Self {
        Self::build(kernel, true)
    }

    fn build(kernel: &'k ExploreKernel<'g>, count_only: bool) -> Self {
        let ins = tempo_instrument::global();
        ins.counter("explore.cursor.builds").inc();
        let g = kernel.g;
        ChainCursor {
            kernel,
            node_cols: g.node_presence_columns(),
            edge_cols: g.edge_presence_columns(),
            n: g.domain().len(),
            fast: FastCount::resolve(kernel),
            current_ref: None,
            step: 0,
            ref_t: 0,
            ext_nodes: BitVec::zeros(g.n_nodes()),
            ext_edges: BitVec::zeros(g.n_edges()),
            mask: EventMask::cleared(g),
            incident: BitVec::zeros(g.n_nodes()),
            incident_touched: Vec::new(),
            seen_gids: Vec::new(),
            seen_pairs: Vec::new(),
            count_only,
            ins_chains: ins.counter("explore.cursor.chains"),
            ins_steps: ins.counter("explore.cursor.steps"),
            ins_step_ns: ins.histogram("explore.cursor.step_ns"),
        }
    }

    /// Loads the chain of reference `i` at its base pair `({i}, {i+1})`.
    fn start_chain(&mut self, i: usize) {
        assert!(i + 1 < self.n, "reference {i} out of domain {}", self.n);
        self.ins_chains.inc();
        self.current_ref = Some(i);
        self.step = 0;
        // The extended side starts as the single base point; the other side
        // is the fixed reference. A one-point interval is one column.
        let (ext_t0, ref_t) = match self.kernel.cfg.extend {
            ExtendSide::New => (i + 1, i),
            ExtendSide::Old => (i, i + 1),
        };
        self.ref_t = ref_t;
        self.node_cols.col(ext_t0).copy_into(&mut self.ext_nodes);
        self.edge_cols.col(ext_t0).copy_into(&mut self.ext_edges);
        debug_assert_eq!(self.ext_nodes.check_invariants(), Ok(()));
        debug_assert_eq!(self.ext_edges.check_invariants(), Ok(()));
        // Base scope per event: stability spans both sides, growth lives in
        // 𝒯new, shrinkage in 𝒯old.
        let (_, _, scope) = self.mask.parts_mut();
        scope.clear();
        match self.kernel.cfg.event {
            Event::Stability => {
                scope.insert(TimePoint(i as u32));
                scope.insert(TimePoint((i + 1) as u32));
            }
            Event::Growth => scope.insert(TimePoint((i + 1) as u32)),
            Event::Shrinkage => scope.insert(TimePoint(i as u32)),
        }
    }

    /// Extends the loaded chain by one time point: one whole-vector OR/AND
    /// against the added point's transposed columns.
    fn advance(&mut self) {
        let i = self
            .current_ref
            .expect("invariant: start_chain loads a reference before advance");
        let _span = self.ins_step_ns.span();
        self.ins_steps.inc();
        self.step += 1;
        let t_added = match self.kernel.cfg.extend {
            ExtendSide::New => i + 1 + self.step,
            ExtendSide::Old => i
                .checked_sub(self.step)
                .expect("invariant: chain length caps steps so the old side never passes t0"),
        };
        assert!(
            t_added < self.n,
            "new side extends at most to the domain end"
        );
        let (node_col, edge_col) = (self.node_cols.col(t_added), self.edge_cols.col(t_added));
        match self.kernel.cfg.semantics {
            Semantics::Union => {
                node_col.or_into(&mut self.ext_nodes);
                edge_col.or_into(&mut self.ext_edges);
            }
            Semantics::Intersection => {
                node_col.and_assign_into(&mut self.ext_nodes);
                edge_col.and_assign_into(&mut self.ext_edges);
            }
        }
        debug_assert_eq!(self.ext_nodes.check_invariants(), Ok(()));
        debug_assert_eq!(self.ext_edges.check_invariants(), Ok(()));
        // The scope follows the side(s) the event draws its timestamps
        // from, so it only grows when that side is the extended one.
        let scope_tracks_ext = match self.kernel.cfg.event {
            Event::Stability => true,
            Event::Growth => self.kernel.cfg.extend == ExtendSide::New,
            Event::Shrinkage => self.kernel.cfg.extend == ExtendSide::Old,
        };
        if scope_tracks_ext {
            let (_, _, scope) = self.mask.parts_mut();
            scope.insert(TimePoint(t_added as u32));
        }
    }

    /// Whether the current config keeps the reference column's side of the
    /// pair under a difference event (growth keeps 𝒯new, shrinkage keeps
    /// 𝒯old; the reference column holds the old side under
    /// `ExtendSide::New` and the new side under `Old`).
    fn ref_is_keep(&self) -> bool {
        matches!(
            (self.kernel.cfg.event, self.kernel.cfg.extend),
            (Event::Growth, ExtendSide::Old) | (Event::Shrinkage, ExtendSide::New)
        )
    }

    /// Rebuilds the Definition-2.5 incident-endpoint rescue set from the
    /// kept edges in `mask`, clearing only the bits the previous rebuild
    /// set (`O(kept edges)` instead of an `O(nodes)` vector clear).
    fn rebuild_incident(&mut self) {
        for &i in &self.incident_touched {
            self.incident.set(i as usize, false);
        }
        self.incident_touched.clear();
        let g = self.kernel.g;
        for e in self.mask.keep_edges().iter_ones() {
            let (u, v) = g.edge_endpoints(EdgeId(e as u32));
            self.incident.set(u.index(), true);
            self.incident.set(v.index(), true);
            self.incident_touched.push(u.index() as u32);
            self.incident_touched.push(v.index() as u32);
        }
    }

    /// Count-only fast paths: membership test and count fused into one
    /// word-parallel (or sparse ID-probe) pass over the node dimension —
    /// the node keep mask is never materialized. Difference events still
    /// write the kept-*edge* mask (the incident fix-up iterates its set
    /// bits, and edges are the short dimension here). Returns `None` when
    /// the target genuinely needs the materialized mask (time-varying
    /// group tables).
    fn fused_count(&mut self) -> Option<u64> {
        match self.fast {
            FastCount::Zero => return Some(0),
            FastCount::Table => return None,
            _ => {}
        }
        let ref_nodes = self.node_cols.col(self.ref_t);
        let ref_edges = self.edge_cols.col(self.ref_t);
        match self.kernel.cfg.event {
            Event::Stability => Some(match &self.fast {
                FastCount::PopNodes => ref_nodes.count_ones_and_dense(&self.ext_nodes) as u64,
                FastCount::PopEdges => ref_edges.count_ones_and_dense(&self.ext_edges) as u64,
                FastCount::NodesMatch(m) => ref_nodes.count_ones_and2(&self.ext_nodes, m) as u64,
                FastCount::EdgesMatch(m) => ref_edges.count_ones_and2(&self.ext_edges, m) as u64,
                FastCount::Zero | FastCount::Table => unreachable!("returned above"),
            }),
            Event::Growth | Event::Shrinkage => {
                let ref_is_keep = self.ref_is_keep();
                {
                    let (_, keep_edges, _) = self.mask.parts_mut();
                    if ref_is_keep {
                        ref_edges.and_not_into(&self.ext_edges, keep_edges);
                    } else {
                        ref_edges.and_not_from(&self.ext_edges, keep_edges);
                    }
                }
                match &self.fast {
                    FastCount::PopEdges => return Some(self.mask.keep_edges().count_ones() as u64),
                    FastCount::EdgesMatch(m) => {
                        return Some(self.mask.keep_edges().count_ones_and(m) as u64)
                    }
                    _ => {}
                }
                self.rebuild_incident();
                let sel = match &self.fast {
                    FastCount::NodesMatch(m) => Some(m),
                    _ => None,
                };
                Some(if ref_is_keep {
                    ref_nodes.count_difference_keep(&self.ext_nodes, &self.incident, sel) as u64
                } else {
                    ref_nodes.count_difference_drop(&self.ext_nodes, &self.incident, sel) as u64
                })
            }
        }
    }

    /// Rewrites the mask for the current pair and counts the target:
    /// whole-vector AND/ANDNOT for membership, set-bit iteration only for
    /// the kept edges' endpoints (Definition 2.5), then the fast count. On
    /// a counting cursor the popcount targets take the fused path instead
    /// (no mask write; fused evaluations record `eval_ns` but not the
    /// `mask_ns`/`count_ns` split).
    fn evaluate_current(&mut self) -> u64 {
        let _eval_span = self.kernel.ins_eval_ns.span();
        self.kernel.ins_evals.inc();
        if self.count_only {
            if let Some(count) = self.fused_count() {
                return count;
            }
        }
        {
            let _mask_span = self.kernel.ins_mask_ns.span();
            // One pair side is always the fixed reference column (dense or
            // sparse); the other is the dense extension accumulator. Every
            // op below lets the column pick its own fold.
            let ref_nodes = self.node_cols.col(self.ref_t);
            let ref_edges = self.edge_cols.col(self.ref_t);
            match self.kernel.cfg.event {
                Event::Stability => {
                    let (keep_nodes, keep_edges, _) = self.mask.parts_mut();
                    // AND is commutative, so which side is old/new is moot.
                    ref_nodes.and_into(&self.ext_nodes, keep_nodes);
                    ref_edges.and_into(&self.ext_edges, keep_edges);
                }
                Event::Growth | Event::Shrinkage => {
                    // Kept edges are member of the keep side and not of the
                    // drop side; kept nodes likewise, except a node incident
                    // to a kept edge is kept regardless of the drop test
                    // (Definition 2.5).
                    let ref_is_keep = self.ref_is_keep();
                    {
                        let (_, keep_edges, _) = self.mask.parts_mut();
                        if ref_is_keep {
                            ref_edges.and_not_into(&self.ext_edges, keep_edges);
                        } else {
                            ref_edges.and_not_from(&self.ext_edges, keep_edges);
                        }
                    }
                    self.rebuild_incident();
                    let (keep_nodes, _, _) = self.mask.parts_mut();
                    if ref_is_keep {
                        ref_nodes.and_not_into(&self.ext_nodes, keep_nodes);
                        ref_nodes.or_and_into(&self.incident, keep_nodes);
                    } else {
                        ref_nodes.and_not_from(&self.ext_nodes, keep_nodes);
                        keep_nodes.or_and_assign(&self.incident, &self.ext_nodes);
                    }
                }
            }
            debug_assert_eq!(self.mask.keep_nodes().check_invariants(), Ok(()));
            debug_assert_eq!(self.mask.keep_edges().check_invariants(), Ok(()));
        }
        let _count_span = self.kernel.ins_count_ns.span();
        match &self.fast {
            FastCount::Zero => 0,
            FastCount::PopNodes => self.mask.keep_nodes().count_ones() as u64,
            FastCount::PopEdges => self.mask.keep_edges().count_ones() as u64,
            FastCount::NodesMatch(m) => self.mask.keep_nodes().count_ones_and(m) as u64,
            FastCount::EdgesMatch(m) => self.mask.keep_edges().count_ones_and(m) as u64,
            FastCount::Table => self.kernel.table.count_distinct_with_scratch(
                self.kernel.g,
                &self.mask,
                &self.kernel.target,
                &mut self.seen_gids,
                &mut self.seen_pairs,
            ),
        }
    }

    /// Evaluates chain pair `(i, j)`: pair `j` of reference `i`'s chain
    /// (`j = 0` is the base pair `({i}, {i+1})`, each further step extends
    /// the configured side by one point).
    ///
    /// Loads the chain on a reference change and advances incrementally —
    /// evaluating a chain's pairs in ascending `j` (the order every
    /// exploration strategy uses) costs one column OR/AND per step. Jumping
    /// backward reloads the chain from its base.
    ///
    /// # Panics
    /// Panics if `(i, j)` is outside the domain's chain table.
    pub fn evaluate_chain_pair(&mut self, i: usize, j: usize) -> u64 {
        if self.current_ref != Some(i) || j < self.step {
            self.start_chain(i);
        }
        while self.step < j {
            self.advance();
        }
        self.evaluate_current()
    }

    /// The mask of the most recent evaluation (event membership + scope).
    pub fn last_mask(&self) -> &EventMask {
        &self.mask
    }
}

impl ChainEvaluator for ChainCursor<'_, '_> {
    fn evaluate(&mut self, i: usize, j: usize, _pair: &IntervalPair) -> Result<u64, GraphError> {
        Ok(self.evaluate_chain_pair(i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::super::engine::chain;
    use super::*;
    use crate::explore::{ExploreConfig, Selector};
    use tempo_graph::fixtures::fig1;

    /// Every chain coordinate of every strategy combination agrees with the
    /// per-pair kernel on the fig. 1 fixture (the broad randomized version
    /// lives in `tests/chain_cursor.rs`).
    #[test]
    fn cursor_matches_kernel_on_fig1() {
        let g = fig1();
        let gender = g.schema().id("gender").unwrap();
        let f = g.schema().category(gender, "f").unwrap();
        let selectors = [
            Selector::AllNodes,
            Selector::AllEdges,
            Selector::NodeTuple(vec![f.clone()]),
            Selector::edge_1attr(f.clone(), f.clone()),
        ];
        let n = g.domain().len();
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    for selector in &selectors {
                        let cfg = ExploreConfig {
                            event,
                            extend,
                            semantics,
                            k: 1,
                            attrs: vec![gender],
                            selector: selector.clone(),
                        };
                        let kernel = ExploreKernel::new(&g, &cfg);
                        let mut cursor = ChainCursor::new(&kernel);
                        for i in 0..n - 1 {
                            for (j, pair) in chain(n, i, extend).iter().enumerate() {
                                assert_eq!(
                                    cursor.evaluate_chain_pair(i, j),
                                    kernel.evaluate(&pair.told, &pair.tnew).unwrap(),
                                    "{event:?}/{extend:?}/{semantics:?}/{selector:?} i={i} j={j}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Jumping straight to the deepest pair (the intersection-increasing
    /// strategy) and jumping backward (chain reload) both stay correct.
    #[test]
    fn cursor_random_access_reloads() {
        let g = fig1();
        let gender = g.schema().id("gender").unwrap();
        let cfg = ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Intersection,
            k: 1,
            attrs: vec![gender],
            selector: Selector::AllEdges,
        };
        let n = g.domain().len();
        let kernel = ExploreKernel::new(&g, &cfg);
        let mut cursor = ChainCursor::new(&kernel);
        let pairs = chain(n, 0, cfg.extend);
        let deep = pairs.len() - 1;
        let expect = |p: &IntervalPair| kernel.evaluate(&p.told, &p.tnew).unwrap();
        // jump straight to the deepest pair, then back to the base pair
        assert_eq!(cursor.evaluate_chain_pair(0, deep), expect(&pairs[deep]));
        assert_eq!(cursor.evaluate_chain_pair(0, 0), expect(&pairs[0]));
        // and the last mask's scope matches the reloaded pair
        assert_eq!(
            cursor.last_mask().scope(),
            &pairs[0].told.union(&pairs[0].tnew)
        );
    }
}
