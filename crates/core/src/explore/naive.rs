//! Exhaustive exploration baseline.
//!
//! Evaluates *every* pair in every reference chain and applies the
//! minimal/maximal definitions (Definitions 3.4 and 3.5) literally, without
//! assuming monotonicity. Serves as the correctness oracle for the pruned
//! strategies and as the baseline their evaluation savings are measured
//! against. Deliberately evaluates through the materializing reference path
//! rather than the kernel, so oracle comparisons also cross-validate the
//! kernel's counts against an independent implementation.

use super::engine::{chain, ExploreOutcome, IntervalPair};
use super::kernel::evaluate_pair_materialized;
use super::{ExploreConfig, Semantics};
use tempo_graph::{GraphError, TemporalGraph};

/// Runs the naive exploration: all chains fully evaluated, then the
/// minimal (union semantics) or maximal (intersection semantics) qualifying
/// pairs per reference are selected by definition.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore_naive(g: &TemporalGraph, cfg: &ExploreConfig) -> Result<ExploreOutcome, GraphError> {
    let n = g.domain().len();
    if n < 2 {
        return Err(GraphError::EmptyInterval(
            "exploration needs at least two time points".to_owned(),
        ));
    }
    let mut pairs = Vec::new();
    let mut evaluations = 0;
    for i in 0..n - 1 {
        let chain_pairs = chain(n, i, cfg.extend);
        let mut results: Vec<(IntervalPair, u64)> = Vec::with_capacity(chain_pairs.len());
        for pair in chain_pairs {
            let r = evaluate_pair_materialized(g, cfg, &pair.told, &pair.tnew)?;
            evaluations += 1;
            results.push((pair, r));
        }
        // Chains are nested: pair j's extended interval is a strict subset
        // of pair j+1's. Definition 3.4 (minimal): qualifies and no shorter
        // pair in the chain qualifies. Definition 3.5 (maximal): qualifies
        // and no longer pair qualifies.
        match cfg.semantics {
            Semantics::Union => {
                for (j, (pair, r)) in results.iter().enumerate() {
                    if *r >= cfg.k && results[..j].iter().all(|(_, rr)| *rr < cfg.k) {
                        pairs.push((pair.clone(), *r));
                    }
                }
            }
            Semantics::Intersection => {
                for (j, (pair, r)) in results.iter().enumerate() {
                    if *r >= cfg.k && results[j + 1..].iter().all(|(_, rr)| *rr < cfg.k) {
                        pairs.push((pair.clone(), *r));
                    }
                }
            }
        }
    }
    Ok(ExploreOutcome { pairs, evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
    use crate::ops::Event;
    use tempo_graph::fixtures::fig1;

    fn all_configs(g: &TemporalGraph, k: u64) -> Vec<ExploreConfig> {
        let gender = g.schema().id("gender").unwrap();
        let mut out = Vec::new();
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    for selector in [Selector::AllNodes, Selector::AllEdges] {
                        out.push(ExploreConfig {
                            event,
                            extend,
                            semantics,
                            k,
                            attrs: vec![gender],
                            selector,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn pruned_matches_naive_on_fig1_all_cases() {
        let g = fig1();
        for k in [1, 2, 3, 5] {
            for cfg in all_configs(&g, k) {
                let fast = explore(&g, &cfg).unwrap();
                let slow = explore_naive(&g, &cfg).unwrap();
                assert_eq!(
                    fast.pairs, slow.pairs,
                    "mismatch for k={k} cfg={:?} {:?} {:?} {:?}",
                    cfg.event, cfg.extend, cfg.semantics, cfg.selector
                );
                assert!(
                    fast.evaluations <= slow.evaluations,
                    "pruning must not evaluate more than the naive baseline"
                );
            }
        }
    }

    #[test]
    fn naive_counts_full_chain_evaluations() {
        let g = fig1(); // 3 time points
        let cfg = ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k: 1,
            attrs: vec![g.schema().id("gender").unwrap()],
            selector: Selector::AllNodes,
        };
        let out = explore_naive(&g, &cfg).unwrap();
        // chains: i=0 → 2 pairs, i=1 → 1 pair
        assert_eq!(out.evaluations, 3);
    }
}
