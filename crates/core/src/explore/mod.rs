//! Evolution exploration (§3): find minimal / maximal interval pairs with
//! at least `k` events of stability, growth or shrinkage.
//!
//! One end of the pair is a fixed reference time point; the other is
//! extended through the union or intersection semi-lattice of consecutive
//! base intervals. Which algorithm applies follows from the monotonicity of
//! the event operator with respect to the extension (Lemmas 3.3, 3.9,
//! 3.10) — the twelve combinations are the rows of the paper's Table 1:
//!
//! | event | extend | semantics | direction | strategy |
//! |---|---|---|---|---|
//! | stability | either | ∪ | increasing | U-Explore (minimal) |
//! | stability | either | ∩ | decreasing | I-Explore (maximal) |
//! | growth | new | ∪ | increasing | U-Explore |
//! | growth | old | ∪ | decreasing | base pairs only |
//! | growth | new | ∩ | decreasing | I-Explore |
//! | growth | old | ∩ | increasing | longest-interval check |
//! | shrinkage | old | ∪ | increasing | U-Explore |
//! | shrinkage | new | ∪ | decreasing | base pairs only |
//! | shrinkage | old | ∩ | decreasing | I-Explore |
//! | shrinkage | new | ∩ | increasing | longest-interval check |

mod budget;
mod cursor;
mod engine;
mod kernel;
mod naive;
mod shard;
mod solve;
mod threshold;

pub use budget::Budget;
pub use cursor::ChainCursor;
pub use engine::{
    explore, explore_budgeted, explore_materializing, explore_pairwise, explore_parallel,
    explore_prepared, explore_prepared_budgeted, explore_prepared_masked, ExploreOutcome,
    IntervalPair,
};
pub use kernel::{evaluate_pair_materialized, ExploreKernel};
pub use naive::explore_naive;
pub use shard::{
    explore_sharded, explore_sharded_budgeted, explore_sharded_parallel, explore_sharded_prepared,
    ShardPlan,
};
pub use solve::{solve_problem, EventReport, ProblemReport};
pub use threshold::{initial_threshold, suggest_k, ThresholdStat};

use crate::aggregate::AggregateGraph;
use crate::ops::{Event, SideTest};
use tempo_columnar::{Value, ValueTuple};

/// Which side of the interval pair the exploration extends; the other side
/// is the fixed reference point.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ExtendSide {
    /// Extend 𝒯old backward in time (reference: 𝒯new).
    Old,
    /// Extend 𝒯new forward in time (reference: 𝒯old).
    New,
}

/// Semantics used to combine base intervals on the extended side (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Semantics {
    /// Union semi-lattice — relaxed membership, minimal pairs sought.
    Union,
    /// Intersection semi-lattice — strict membership, maximal pairs sought.
    Intersection,
}

impl Semantics {
    /// The membership test an interval under these semantics imposes.
    pub fn side_test(self) -> SideTest {
        match self {
            Semantics::Union => SideTest::Any,
            Semantics::Intersection => SideTest::All,
        }
    }
}

/// Monotonicity of `result(G)` as the extended side grows.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Longer extension ⇒ result can only grow (Lemma 3.3 / 3.9 / 3.10).
    Increasing,
    /// Longer extension ⇒ result can only shrink.
    Decreasing,
}

/// The monotonicity table of §3.2–§3.4.
pub fn direction(event: Event, extend: ExtendSide, semantics: Semantics) -> Direction {
    use Direction::{Decreasing, Increasing};
    match (event, extend, semantics) {
        // Stability: both membership tests on the pair's two sides; only the
        // extended side changes, so union ⇒ more members, intersection ⇒ fewer.
        (Event::Stability, _, Semantics::Union) => Increasing,
        (Event::Stability, _, Semantics::Intersection) => Decreasing,
        // Growth = 𝒯new − 𝒯old (Lemmas 3.9 and 3.10).
        (Event::Growth, ExtendSide::New, Semantics::Union) => Increasing,
        (Event::Growth, ExtendSide::Old, Semantics::Union) => Decreasing,
        (Event::Growth, ExtendSide::New, Semantics::Intersection) => Decreasing,
        (Event::Growth, ExtendSide::Old, Semantics::Intersection) => Increasing,
        // Shrinkage = 𝒯old − 𝒯new (mirror of growth).
        (Event::Shrinkage, ExtendSide::Old, Semantics::Union) => Increasing,
        (Event::Shrinkage, ExtendSide::New, Semantics::Union) => Decreasing,
        (Event::Shrinkage, ExtendSide::Old, Semantics::Intersection) => Decreasing,
        (Event::Shrinkage, ExtendSide::New, Semantics::Intersection) => Increasing,
    }
}

/// Which entities of the event's aggregate graph count as events.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Selector {
    /// Every aggregate node weight.
    AllNodes,
    /// Every aggregate edge weight.
    AllEdges,
    /// One aggregate node (attribute tuple), e.g. female authors.
    NodeTuple(ValueTuple),
    /// One aggregate edge (tuple pair), e.g. female→female collaborations.
    EdgeTuple(ValueTuple, ValueTuple),
}

impl Selector {
    /// Sums the matching weights — the paper's `result(G)`.
    pub fn count(&self, agg: &AggregateGraph) -> u64 {
        match self {
            Selector::AllNodes => agg.total_node_weight(),
            Selector::AllEdges => agg.total_edge_weight(),
            Selector::NodeTuple(t) => agg.node_weight(t),
            Selector::EdgeTuple(s, d) => agg.edge_weight(s, d),
        }
    }

    /// True if the selector concerns edges.
    pub fn is_edge(&self) -> bool {
        matches!(self, Selector::AllEdges | Selector::EdgeTuple(..))
    }

    /// Convenience constructor for a single-attribute edge selector such as
    /// the experiments' female→female relationships.
    pub fn edge_1attr(src: Value, dst: Value) -> Selector {
        Selector::EdgeTuple(vec![src], vec![dst])
    }
}

/// A fully specified exploration problem.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Event type to count.
    pub event: Event,
    /// Which side of the pair is extended.
    pub extend: ExtendSide,
    /// Semantics on the extended side (union ⇒ minimal, intersection ⇒
    /// maximal pairs).
    pub semantics: Semantics,
    /// Event-count threshold `k`.
    pub k: u64,
    /// Aggregation attributes defining the event entities.
    pub attrs: Vec<tempo_graph::AttrId>,
    /// Which aggregate entities count as events.
    pub selector: Selector,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_table_matches_lemmas() {
        use Direction::*;
        use ExtendSide::*;
        use Semantics::*;
        // Lemma 3.3
        assert_eq!(direction(Event::Stability, Old, Union), Increasing);
        assert_eq!(direction(Event::Stability, New, Intersection), Decreasing);
        // Lemma 3.9
        assert_eq!(direction(Event::Growth, Old, Union), Decreasing);
        assert_eq!(direction(Event::Growth, New, Union), Increasing);
        // Lemma 3.10
        assert_eq!(direction(Event::Growth, Old, Intersection), Increasing);
        assert_eq!(direction(Event::Growth, New, Intersection), Decreasing);
        // Shrinkage mirrors growth with the sides swapped
        assert_eq!(direction(Event::Shrinkage, Old, Union), Increasing);
        assert_eq!(direction(Event::Shrinkage, New, Union), Decreasing);
        assert_eq!(direction(Event::Shrinkage, Old, Intersection), Decreasing);
        assert_eq!(direction(Event::Shrinkage, New, Intersection), Increasing);
    }

    #[test]
    fn selector_counting() {
        let mut agg = AggregateGraph::new(vec!["gender".into()]);
        agg.add_node_weight(vec![Value::Cat(0)], 3);
        agg.add_node_weight(vec![Value::Cat(1)], 5);
        agg.add_edge_weight(vec![Value::Cat(1)], vec![Value::Cat(1)], 7);
        assert_eq!(Selector::AllNodes.count(&agg), 8);
        assert_eq!(Selector::AllEdges.count(&agg), 7);
        assert_eq!(Selector::NodeTuple(vec![Value::Cat(1)]).count(&agg), 5);
        assert_eq!(
            Selector::edge_1attr(Value::Cat(1), Value::Cat(1)).count(&agg),
            7
        );
        assert_eq!(
            Selector::edge_1attr(Value::Cat(0), Value::Cat(1)).count(&agg),
            0
        );
        assert!(Selector::AllEdges.is_edge());
        assert!(!Selector::AllNodes.is_edge());
    }
}
