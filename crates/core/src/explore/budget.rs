//! Request budgets: wall-clock deadlines and cooperative cancellation for
//! long explorations.
//!
//! A server holding `Arc<TemporalGraph>` snapshots cannot let one client's
//! `explore` monopolize a worker forever, so the engine polls a [`Budget`]
//! at its evaluation checkpoints. The deadline itself lives in
//! `tempo-instrument` ([`Deadline`]) because the workspace's `no-instant`
//! lint confines raw clock reads to that crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tempo_graph::GraphError;
use tempo_instrument::Deadline;

/// A request-scoped execution budget checked at engine checkpoints.
///
/// The explore engine calls [`check`](Budget::check) before every pair
/// evaluation, so a run stops within one evaluation of its deadline passing
/// or its cancel flag being raised. The default budget is unlimited and its
/// checkpoints cost two `Option` tests.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Deadline>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with no limits: every checkpoint passes.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Adds a wall-clock deadline `ms` milliseconds from now. A zero
    /// deadline fails the very first checkpoint.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Deadline::after_millis(ms));
        self
    }

    /// Adds a cooperative cancel flag, typically raised by another thread
    /// (e.g. a connection handler noticing the client went away).
    #[must_use]
    pub fn with_cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when the budget imposes no limits at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Checkpoint: passes while the budget holds.
    ///
    /// # Errors
    /// Returns [`GraphError::Cancelled`] once the cancel flag is raised or
    /// the deadline has passed.
    #[inline]
    pub fn check(&self) -> Result<(), GraphError> {
        if let Some(flag) = &self.cancel {
            // ordering: cancellation is advisory — raising the flag
            // publishes no data, and a checkpoint observing it one round
            // late is harmless.
            if flag.load(Ordering::Relaxed) {
                return Err(GraphError::Cancelled("cancel flag raised".to_owned()));
            }
        }
        if let Some(d) = &self.deadline {
            if d.expired() {
                return Err(GraphError::Cancelled(format!(
                    "deadline of {} ms exceeded",
                    d.limit_millis()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..3 {
            assert_eq!(b.check(), Ok(()));
        }
    }

    #[test]
    fn zero_deadline_fails_immediately() {
        let b = Budget::unlimited().with_deadline_ms(0);
        assert!(!b.is_unlimited());
        assert!(matches!(b.check(), Err(GraphError::Cancelled(_))));
    }

    #[test]
    fn cancel_flag_trips_the_checkpoint() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().with_cancel_flag(Arc::clone(&flag));
        assert_eq!(b.check(), Ok(()));
        flag.store(true, Ordering::Relaxed);
        assert!(matches!(b.check(), Err(GraphError::Cancelled(_))));
    }
}
