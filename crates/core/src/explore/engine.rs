//! The exploration strategies: U-Explore, I-Explore, and the two
//! monotonicity shortcuts (§3.2–§3.4).

use super::budget::Budget;
use super::cursor::ChainCursor;
use super::kernel::{evaluate_pair_materialized, ExploreKernel};
use super::{direction, ExploreConfig, ExtendSide};
use std::sync::{Arc, OnceLock};
use tempo_graph::{GraphError, TemporalGraph, TimeSet};

/// One pair evaluation, addressed both by chain coordinates (`i` =
/// reference index, `j` = steps from the base pair) and by the explicit
/// interval pair. The chain-incremental cursor consumes the coordinates;
/// the per-pair baselines consume the intervals. The strategies call this
/// exactly once per counted evaluation, so pruning behavior and evaluation
/// counts are evaluator-independent.
pub(super) trait ChainEvaluator {
    /// Evaluates `result(G)` for chain pair `(i, j)`.
    fn evaluate(&mut self, i: usize, j: usize, pair: &IntervalPair) -> Result<u64, GraphError>;
}

/// Adapts a plain `(told, tnew)` closure — the per-pair kernel or the
/// materializing oracle — to the chain-coordinate interface.
pub(super) struct PairEvaluator<F>(pub(super) F);

impl<F: FnMut(&TimeSet, &TimeSet) -> Result<u64, GraphError>> ChainEvaluator for PairEvaluator<F> {
    fn evaluate(&mut self, _i: usize, _j: usize, pair: &IntervalPair) -> Result<u64, GraphError> {
        (self.0)(&pair.told, &pair.tnew)
    }
}

/// One explored pair of intervals. For [`ExtendSide::Old`] the reference
/// point is `tnew`; for [`ExtendSide::New`] it is `told`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalPair {
    /// The earlier interval 𝒯old.
    pub told: TimeSet,
    /// The later interval 𝒯new.
    pub tnew: TimeSet,
}

impl IntervalPair {
    /// Renders the pair with a domain's labels.
    pub fn display(&self, domain: &tempo_graph::TimeDomain) -> String {
        format!(
            "({}, {})",
            self.told.display(domain),
            self.tnew.display(domain)
        )
    }
}

/// Result of an exploration run.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// The qualifying minimal (union semantics) or maximal (intersection
    /// semantics) interval pairs, with their event counts.
    pub pairs: Vec<(IntervalPair, u64)>,
    /// Number of aggregate-graph evaluations performed (the pruning metric).
    pub evaluations: usize,
}

/// The chain of pairs for reference index `i`: the base pair
/// `(𝒯ᵢ, 𝒯ᵢ₊₁)` followed by each one-step extension of the configured side
/// (𝒯old grows backward, 𝒯new grows forward).
pub(super) fn chain(n: usize, i: usize, extend: ExtendSide) -> Vec<IntervalPair> {
    let mut out = Vec::new();
    match extend {
        ExtendSide::New => {
            let told = TimeSet::point(n, tempo_graph::TimePoint(i as u32));
            for end in (i + 1)..n {
                out.push(IntervalPair {
                    told: told.clone(),
                    tnew: TimeSet::range(n, i + 1, end),
                });
            }
        }
        ExtendSide::Old => {
            let tnew = TimeSet::point(n, tempo_graph::TimePoint((i + 1) as u32));
            for start in (0..=i).rev() {
                out.push(IntervalPair {
                    told: TimeSet::range(n, start, i),
                    tnew: tnew.clone(),
                });
            }
        }
    }
    out
}

/// Runs the exploration strategy appropriate for the config (see the module
/// table), returning the qualifying pairs and the number of evaluations.
///
/// ```
/// use graphtempo::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
/// use graphtempo::ops::Event;
/// use tempo_graph::fixtures::fig1;
///
/// let g = fig1();
/// let gender = g.schema().id("gender").unwrap();
/// let cfg = ExploreConfig {
///     event: Event::Stability,
///     extend: ExtendSide::New,
///     semantics: Semantics::Union, // minimal interval pairs
///     k: 2,
///     attrs: vec![gender],
///     selector: Selector::AllEdges,
/// };
/// let out = explore(&g, &cfg).unwrap();
/// // two collaborations survive t0 → t1, so (t0, t1) is a minimal pair
/// assert_eq!(out.pairs.len(), 1);
/// assert_eq!(out.pairs[0].1, 2);
/// ```
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore(g: &TemporalGraph, cfg: &ExploreConfig) -> Result<ExploreOutcome, GraphError> {
    explore_budgeted(g, cfg, &Budget::unlimited())
}

/// [`explore`] under a request-scoped [`Budget`]: the engine polls the
/// budget before every pair evaluation, so a deadline or cancel flag stops
/// the run within one evaluation. With [`Budget::unlimited`] the outcome is
/// identical to [`explore`].
///
/// # Errors
/// Returns [`GraphError::Cancelled`] when the budget trips, or any error
/// [`explore`] can return.
pub fn explore_budgeted(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    budget: &Budget,
) -> Result<ExploreOutcome, GraphError> {
    let kernel = ExploreKernel::new(g, cfg);
    explore_prepared_budgeted(&kernel, budget)
}

/// [`explore`] over a caller-built [`ExploreKernel`]: repeated runs over
/// the same graph and attribute set reuse the interned group table instead
/// of rebuilding it per call (the same sharing [`explore_parallel`] uses
/// across its workers), and benchmarks can time exploration separately
/// from kernel construction.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore_prepared(kernel: &ExploreKernel<'_>) -> Result<ExploreOutcome, GraphError> {
    explore_prepared_budgeted(kernel, &Budget::unlimited())
}

/// [`explore_prepared`] under a request-scoped [`Budget`]; see
/// [`explore_budgeted`].
///
/// # Errors
/// Returns [`GraphError::Cancelled`] when the budget trips, or any error
/// [`explore_prepared`] can return.
pub fn explore_prepared_budgeted(
    kernel: &ExploreKernel<'_>,
    budget: &Budget,
) -> Result<ExploreOutcome, GraphError> {
    let n = check_domain(kernel.g)?;
    explore_sequential(
        &mut ChainCursor::new_counting(kernel),
        kernel.cfg,
        n,
        budget,
    )
}

/// [`explore_prepared`] driving the mask-materializing cursor
/// ([`ChainCursor::new`]) instead of the fused counting cursor: every
/// evaluation writes the full node and edge keep masks and then counts
/// them — the pre-fusion evaluation path. Identical outcome
/// (property-tested); exists so benchmarks can ablate the fused
/// membership-and-count kernels with pruning and column layout held fixed.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore_prepared_masked(kernel: &ExploreKernel<'_>) -> Result<ExploreOutcome, GraphError> {
    let n = check_domain(kernel.g)?;
    explore_sequential(
        &mut ChainCursor::new(kernel),
        kernel.cfg,
        n,
        &Budget::unlimited(),
    )
}

/// [`explore`] evaluating every pair through the per-pair kernel
/// ([`ExploreKernel::evaluate`]) instead of the chain-incremental cursor:
/// each pair re-derives both sides' memberships from scratch. Identical
/// outcome (property-tested); exists so benchmarks can ablate the cursor's
/// speedup with pruning behavior held fixed.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore_pairwise(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
) -> Result<ExploreOutcome, GraphError> {
    let n = check_domain(g)?;
    let kernel = ExploreKernel::new(g, cfg);
    explore_sequential(
        &mut PairEvaluator(|told: &TimeSet, tnew: &TimeSet| kernel.evaluate(told, tnew)),
        cfg,
        n,
        &Budget::unlimited(),
    )
}

/// [`explore`] evaluating every pair through the materializing reference
/// path ([`evaluate_pair_materialized`]). Identical outcome
/// (property-tested); exists so benchmarks can ablate the zero-
/// materialization speedup with pruning behavior held fixed.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn explore_materializing(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
) -> Result<ExploreOutcome, GraphError> {
    let n = check_domain(g)?;
    explore_sequential(
        &mut PairEvaluator(|told: &TimeSet, tnew: &TimeSet| {
            evaluate_pair_materialized(g, cfg, told, tnew)
        }),
        cfg,
        n,
        &Budget::unlimited(),
    )
}

pub(super) fn check_domain(g: &TemporalGraph) -> Result<usize, GraphError> {
    let n = g.domain().len();
    if n < 2 {
        return Err(GraphError::EmptyInterval(
            "exploration needs at least two time points".to_owned(),
        ));
    }
    Ok(n)
}

fn explore_sequential(
    eval: &mut dyn ChainEvaluator,
    cfg: &ExploreConfig,
    n: usize,
    budget: &Budget,
) -> Result<ExploreOutcome, GraphError> {
    let mut pairs = Vec::new();
    let mut evaluations = 0;
    for i in 0..n - 1 {
        let outcome = explore_reference(eval, cfg, n, i, budget)?;
        evaluations += outcome.evaluations;
        pairs.extend(outcome.pairs);
    }
    Ok(ExploreOutcome { pairs, evaluations })
}

/// [`explore`] with the per-reference-point chains fanned out over up to
/// `threads` crossbeam workers. Chains are independent, so the outcome is
/// identical to the sequential strategy (pairs are returned in reference
/// order); evaluation counts are summed across workers.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
///
/// # Panics
/// Panics if a worker thread panics.
pub fn explore_parallel(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    threads: usize,
) -> Result<ExploreOutcome, GraphError> {
    let n = check_domain(g)?;
    let threads = threads.clamp(1, n - 1);
    if threads == 1 {
        return explore(g, cfg);
    }
    // One kernel for the whole run (the group table is interned once and
    // shared by reference); each reference point i is one independent
    // sub-problem running the sequential strategy on its chain. The
    // transposed presence indexes are forced here so workers share the
    // cached build instead of racing to construct it.
    let kernel = ExploreKernel::new(g, cfg);
    let kernel = &kernel;
    g.node_presence_columns();
    g.edge_presence_columns();
    type RefSlot<'a> = (usize, &'a mut Option<Result<ExploreOutcome, GraphError>>);
    let mut slots: Vec<Option<Result<ExploreOutcome, GraphError>>> = vec![None; n - 1];
    // Chain length is linear in the reference index (longest chains sit at
    // one end), so contiguous batches would give one worker nearly all the
    // work. Deal references round-robin instead; the slots restore
    // reference order afterwards.
    let mut buckets: Vec<Vec<RefSlot<'_>>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        buckets[i % threads].push((i, slot));
    }
    let unlimited = Budget::unlimited();
    let unlimited = &unlimited;
    crossbeam::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move |_| {
                let mut cursor = ChainCursor::new_counting(kernel);
                for (i, slot) in bucket {
                    *slot = Some(explore_reference(&mut cursor, cfg, n, i, unlimited));
                }
            });
        }
    })
    .expect("invariant: exploration workers propagate errors instead of panicking");

    let mut pairs = Vec::new();
    let mut evaluations = 0;
    for slot in slots {
        let outcome = slot.expect("invariant: the scoped loop fills every reference slot")?;
        evaluations += outcome.evaluations;
        pairs.extend(outcome.pairs);
    }
    Ok(ExploreOutcome { pairs, evaluations })
}

/// Pruned-pair counters, resolved once per process. Parallel runs hit this
/// from every worker for every chain, so the name-keyed registry lookup
/// (and its `format!` key) is hoisted out of the per-chain path. The
/// registry resets metrics in place — the `Arc` handles stay wired to the
/// live registry across `Registry::reset`.
struct PrunedCounters {
    total: Arc<tempo_instrument::Counter>,
    union_increasing: Arc<tempo_instrument::Counter>,
    union_decreasing: Arc<tempo_instrument::Counter>,
    intersection_decreasing: Arc<tempo_instrument::Counter>,
    intersection_increasing: Arc<tempo_instrument::Counter>,
}

fn pruned_counters() -> &'static PrunedCounters {
    static CELL: OnceLock<PrunedCounters> = OnceLock::new();
    CELL.get_or_init(|| {
        let ins = tempo_instrument::global();
        PrunedCounters {
            total: ins.counter("explore.pruned"),
            union_increasing: ins.counter("explore.pruned.union_increasing"),
            union_decreasing: ins.counter("explore.pruned.union_decreasing"),
            intersection_decreasing: ins.counter("explore.pruned.intersection_decreasing"),
            intersection_increasing: ins.counter("explore.pruned.intersection_increasing"),
        }
    })
}

/// Runs the configured strategy on the single chain of reference `i`,
/// counting one evaluation per `eval` call (the pruning metric is therefore
/// identical whichever evaluator — cursor, kernel or materializing — is
/// plugged in). The budget is polled before every evaluation — the engine's
/// cancellation checkpoints.
pub(super) fn explore_reference(
    eval: &mut dyn ChainEvaluator,
    cfg: &ExploreConfig,
    n: usize,
    i: usize,
    budget: &Budget,
) -> Result<ExploreOutcome, GraphError> {
    use super::{Direction, Semantics};
    let dir = direction(cfg.event, cfg.extend, cfg.semantics);
    let chain_pairs = chain(n, i, cfg.extend);
    let chain_len = chain_pairs.len();
    let mut pairs = Vec::new();
    let mut evaluations = 0;
    match (cfg.semantics, dir) {
        (Semantics::Union, Direction::Increasing) => {
            for (j, pair) in chain_pairs.into_iter().enumerate() {
                budget.check()?;
                let r = eval.evaluate(i, j, &pair)?;
                evaluations += 1;
                if r >= cfg.k {
                    pairs.push((pair, r));
                    break;
                }
            }
        }
        (Semantics::Union, Direction::Decreasing) => {
            let pair = chain_pairs
                .into_iter()
                .next()
                .expect("invariant: chain_len >= 1, so chain_pairs is non-empty");
            budget.check()?;
            let r = eval.evaluate(i, 0, &pair)?;
            evaluations += 1;
            if r >= cfg.k {
                pairs.push((pair, r));
            }
        }
        (Semantics::Intersection, Direction::Decreasing) => {
            let mut last_good = None;
            for (j, pair) in chain_pairs.into_iter().enumerate() {
                budget.check()?;
                let r = eval.evaluate(i, j, &pair)?;
                evaluations += 1;
                if r >= cfg.k {
                    last_good = Some((pair, r));
                } else {
                    break;
                }
            }
            pairs.extend(last_good);
        }
        (Semantics::Intersection, Direction::Increasing) => {
            let pair = chain_pairs
                .into_iter()
                .next_back()
                .expect("invariant: chain_len >= 1, so chain_pairs is non-empty");
            budget.check()?;
            let r = eval.evaluate(i, chain_len - 1, &pair)?;
            evaluations += 1;
            if r >= cfg.k {
                pairs.push((pair, r));
            }
        }
    }
    // Pairs skipped thanks to the monotonicity shortcut of this strategy row.
    let pruned = (chain_len - evaluations) as u64;
    let pc = pruned_counters();
    pc.total.add(pruned);
    match (cfg.semantics, dir) {
        (Semantics::Union, Direction::Increasing) => &pc.union_increasing,
        (Semantics::Union, Direction::Decreasing) => &pc.union_decreasing,
        (Semantics::Intersection, Direction::Decreasing) => &pc.intersection_decreasing,
        (Semantics::Intersection, Direction::Increasing) => &pc.intersection_increasing,
    }
    .add(pruned);
    Ok(ExploreOutcome { pairs, evaluations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Selector, Semantics};
    use crate::ops::Event;
    use tempo_graph::fixtures::fig1;
    use tempo_graph::TimePoint;

    fn cfg(event: Event, extend: ExtendSide, semantics: Semantics, k: u64) -> ExploreConfig {
        let g = fig1();
        ExploreConfig {
            event,
            extend,
            semantics,
            k,
            attrs: vec![g.schema().id("gender").unwrap()],
            selector: Selector::AllEdges,
        }
    }

    #[test]
    fn chain_shapes() {
        // domain of 4 points, reference i=1, extending new:
        // ({1},{2}), ({1},{2,3})
        let c = chain(4, 1, ExtendSide::New);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].tnew.iter().map(|t| t.0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(
            c[1].tnew.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![2, 3]
        );
        // extending old: ({1},{2}), ({0,1},{2})
        let c = chain(4, 1, ExtendSide::Old);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].told.iter().map(|t| t.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(
            c[1].told.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
        // the first reference has a full-length new chain
        assert_eq!(chain(4, 0, ExtendSide::New).len(), 3);
        // the last reference cannot extend old further than the start
        assert_eq!(chain(4, 2, ExtendSide::Old).len(), 3);
    }

    #[test]
    fn stability_union_finds_minimal_pairs() {
        let g = fig1();
        // stable edges between consecutive points: t0∩t1 → (u1,u2),(u4,u2) = 2
        let c = cfg(Event::Stability, ExtendSide::New, Semantics::Union, 2);
        let out = explore(&g, &c).unwrap();
        // base pair (t0,t1) already satisfies; (t1,t2) has 1 stable edge
        // ((u4,u2)) and cannot extend beyond t2.
        assert_eq!(out.pairs.len(), 1);
        let (pair, r) = &out.pairs[0];
        assert_eq!(*r, 2);
        assert_eq!(pair.told.iter().next(), Some(TimePoint(0)));
        assert_eq!(pair.tnew.iter().next(), Some(TimePoint(1)));
    }

    #[test]
    fn stability_union_extends_when_needed() {
        let g = fig1();
        // demand 2 stable edges from reference t1: (t1,{t2}) has only (u4,u2);
        // no further extension exists, so no pair for reference 1.
        let c = cfg(Event::Stability, ExtendSide::New, Semantics::Union, 2);
        let out = explore(&g, &c).unwrap();
        assert!(out
            .pairs
            .iter()
            .all(|(p, _)| p.told.iter().next() == Some(TimePoint(0))));
        // with k=1 both references qualify at the base pair
        let c1 = cfg(Event::Stability, ExtendSide::New, Semantics::Union, 1);
        let out1 = explore(&g, &c1).unwrap();
        assert_eq!(out1.pairs.len(), 2);
    }

    #[test]
    fn growth_union_extend_old_is_base_only() {
        let g = fig1();
        // growth new−old, extending old with union: decreasing ⇒ base pairs.
        // base pairs: (t0,t1): no new edges; (t1,t2): (u5,u2) = 1.
        let c = cfg(Event::Growth, ExtendSide::Old, Semantics::Union, 1);
        let out = explore(&g, &c).unwrap();
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(out.evaluations, 2); // exactly the base pairs
        assert_eq!(out.pairs[0].0.tnew.iter().next(), Some(TimePoint(2)));
    }

    #[test]
    fn stability_intersection_finds_maximal() {
        let g = fig1();
        // edge (u4,u2) exists at every point; with k=1 and intersection
        // semantics extending new, reference t0 extends to {t1,t2}.
        let c = cfg(
            Event::Stability,
            ExtendSide::New,
            Semantics::Intersection,
            1,
        );
        let out = explore(&g, &c).unwrap();
        assert!(!out.pairs.is_empty());
        let (pair, r) = &out.pairs[0];
        assert_eq!(*r, 1);
        assert_eq!(
            pair.tnew.iter().map(|t| t.0).collect::<Vec<_>>(),
            vec![1, 2],
            "maximal pair extends to the full suffix"
        );
    }

    #[test]
    fn shrinkage_intersection_extend_new_checks_longest() {
        let g = fig1();
        // shrinkage old−new(∩): increasing with extension ⇒ longest-only.
        let c = cfg(
            Event::Shrinkage,
            ExtendSide::New,
            Semantics::Intersection,
            1,
        );
        let out = explore(&g, &c).unwrap();
        // evaluations = one per reference point
        assert_eq!(out.evaluations, 2);
        for (pair, _) in &out.pairs {
            // each pair's tnew is the longest suffix after the reference
            assert_eq!(pair.tnew.max(), Some(TimePoint(2)));
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = fig1();
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let c = cfg(event, ExtendSide::New, semantics, 1);
                let seq = explore(&g, &c).unwrap();
                for threads in [1, 2, 4] {
                    let par = super::explore_parallel(&g, &c, threads).unwrap();
                    assert_eq!(par.pairs, seq.pairs, "{event:?}/{semantics:?}/{threads}");
                    assert_eq!(par.evaluations, seq.evaluations);
                }
            }
        }
    }

    #[test]
    fn baseline_variants_match_cursor_explore() {
        let g = fig1();
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    for k in [1, 2] {
                        let c = cfg(event, extend, semantics, k);
                        let fast = explore(&g, &c).unwrap();
                        let kernel = ExploreKernel::new(&g, &c);
                        for (name, slow) in [
                            ("pairwise", explore_pairwise(&g, &c).unwrap()),
                            ("materializing", explore_materializing(&g, &c).unwrap()),
                            ("masked", explore_prepared_masked(&kernel).unwrap()),
                        ] {
                            assert_eq!(
                                fast.pairs, slow.pairs,
                                "{name}: {event:?}/{extend:?}/{semantics:?}/{k}"
                            );
                            assert_eq!(fast.evaluations, slow.evaluations, "{name}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn budget_checkpoints_cancel_exploration() {
        use std::sync::atomic::AtomicBool;
        let g = fig1();
        let c = cfg(Event::Stability, ExtendSide::New, Semantics::Union, 1);
        // a zero deadline trips the very first checkpoint
        let b = Budget::unlimited().with_deadline_ms(0);
        assert!(matches!(
            explore_budgeted(&g, &c, &b),
            Err(GraphError::Cancelled(_))
        ));
        // a pre-raised cancel flag does too
        let flag = Arc::new(AtomicBool::new(true));
        let b = Budget::unlimited().with_cancel_flag(flag);
        assert!(matches!(
            explore_budgeted(&g, &c, &b),
            Err(GraphError::Cancelled(_))
        ));
        // an unlimited budget changes nothing
        let free = explore_budgeted(&g, &c, &Budget::unlimited()).unwrap();
        let plain = explore(&g, &c).unwrap();
        assert_eq!(free.pairs, plain.pairs);
        assert_eq!(free.evaluations, plain.evaluations);
    }

    #[test]
    fn too_short_domain_errors() {
        use tempo_graph::{AttributeSchema, GraphBuilder, TimeDomain};
        let mut b = GraphBuilder::new(TimeDomain::indexed(1), AttributeSchema::new());
        let u = b.add_node("u").unwrap();
        b.set_presence(u, TimePoint(0)).unwrap();
        let g = b.build().unwrap();
        let c = ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k: 1,
            attrs: vec![],
            selector: Selector::AllNodes,
        };
        assert!(explore(&g, &c).is_err());
    }
}
