//! Threshold initialization (§3.5).
//!
//! The starting value `w_th` for the threshold `k` is taken from the
//! aggregate graphs of consecutive time-point pairs: the minimum entity
//! weight when the exploration operator is monotonically increasing (then
//! `k` is tuned upward), the maximum when it is decreasing (tuned downward).

use super::cursor::ChainCursor;
use super::kernel::ExploreKernel;
use super::{direction, Direction, ExploreConfig, Selector};
use crate::aggregate::AggMode;
use tempo_graph::{GraphError, TemporalGraph};

/// Which statistic of the consecutive-pair weights to take.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThresholdStat {
    /// The minimum weight (starting point for increasing operators).
    Min,
    /// The maximum weight (starting point for decreasing operators).
    Max,
}

/// Computes `w_th` for an exploration problem: over all consecutive pairs
/// `(𝒯ᵢ, 𝒯ᵢ₊₁)`, the min or max of the selector's `result(G)` on the event
/// graph. Returns `None` when no consecutive pair produces any events.
///
/// # Errors
/// Returns an error if the graph has fewer than two time points or an
/// operator fails.
pub fn initial_threshold(
    g: &TemporalGraph,
    cfg: &ExploreConfig,
    stat: ThresholdStat,
) -> Result<Option<u64>, GraphError> {
    let n = g.domain().len();
    if n < 2 {
        return Err(GraphError::EmptyInterval(
            "threshold initialization needs at least two time points".to_owned(),
        ));
    }
    // One kernel (and therefore one interned group table) is shared across
    // all consecutive pairs of the scan; the consecutive pair (𝒯ᵢ, 𝒯ᵢ₊₁)
    // is chain pair (i, 0), so the scan rides the chain-incremental cursor.
    let kernel = ExploreKernel::new(g, cfg);
    let mut cursor = ChainCursor::new(&kernel);
    // Scratch hoisted across the whole scan: the cursor's event mask is
    // rewritten in place per pair, and the weight / popcount buffers are
    // cleared rather than reallocated.
    let mut weights: Vec<u64> = Vec::new();
    let mut popcounts: Vec<u32> = Vec::new();
    let mut best: Option<u64> = None;
    for i in 0..n - 1 {
        let r = match &cfg.selector {
            // For the per-entity selectors the consecutive-pair result IS
            // the entity weight; for the All selectors, take the stat over
            // the individual entity weights of the aggregate graph, per
            // §3.5 ("the minimum or maximum weight of the given type of
            // entity").
            Selector::NodeTuple(_) | Selector::EdgeTuple(..) => {
                let r = cursor.evaluate_chain_pair(i, 0);
                if r == 0 {
                    continue;
                }
                r
            }
            all => {
                // The consecutive pair ({𝒯ᵢ}, {𝒯ᵢ₊₁}) is chain pair (i, 0),
                // and with single-point sides the Any and All membership
                // tests coincide — so the cursor's reusable mask is exactly
                // the event mask the aggregate needs.
                cursor.evaluate_chain_pair(i, 0);
                let agg = kernel.group_table().aggregate_masked_with(
                    g,
                    cursor.last_mask(),
                    AggMode::Distinct,
                    &mut popcounts,
                );
                weights.clear();
                if all.is_edge() {
                    weights.extend(agg.iter_edges().iter().map(|(_, w)| *w));
                } else {
                    weights.extend(agg.iter_nodes().iter().map(|(_, w)| *w));
                }
                let Some(w) = (match stat {
                    ThresholdStat::Min => weights.iter().min().copied(),
                    ThresholdStat::Max => weights.iter().max().copied(),
                }) else {
                    continue;
                };
                w
            }
        };
        best = Some(match (best, stat) {
            (None, _) => r,
            (Some(b), ThresholdStat::Min) => b.min(r),
            (Some(b), ThresholdStat::Max) => b.max(r),
        });
    }
    Ok(best)
}

/// Suggests a starting `k` per §3.5: `w_th` with the statistic chosen from
/// the operator's monotonicity (min for increasing, max for decreasing).
///
/// # Errors
/// Propagates [`initial_threshold`] errors.
pub fn suggest_k(g: &TemporalGraph, cfg: &ExploreConfig) -> Result<Option<u64>, GraphError> {
    let stat = match direction(cfg.event, cfg.extend, cfg.semantics) {
        Direction::Increasing => ThresholdStat::Min,
        Direction::Decreasing => ThresholdStat::Max,
    };
    initial_threshold(g, cfg, stat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{ExtendSide, Semantics};
    use crate::ops::Event;
    use tempo_graph::fixtures::fig1;

    fn base_cfg(g: &TemporalGraph, selector: Selector) -> ExploreConfig {
        ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k: 0,
            attrs: vec![g.schema().id("gender").unwrap()],
            selector,
        }
    }

    #[test]
    fn edge_tuple_threshold() {
        let g = fig1();
        let f = g
            .schema()
            .category(g.schema().id("gender").unwrap(), "f")
            .unwrap();
        let cfg = base_cfg(&g, Selector::edge_1attr(f.clone(), f));
        // stable f→f edges: (t0,t1): (u4,u2) = 1; (t1,t2): (u4,u2) = 1
        let min = initial_threshold(&g, &cfg, ThresholdStat::Min).unwrap();
        let max = initial_threshold(&g, &cfg, ThresholdStat::Max).unwrap();
        assert_eq!(min, Some(1));
        assert_eq!(max, Some(1));
    }

    #[test]
    fn all_edges_threshold_uses_entity_weights() {
        let g = fig1();
        let cfg = base_cfg(&g, Selector::AllEdges);
        // (t0,t1) stable edges by gender pair: m→f 1, f→f 1; (t1,t2): m→f? u1
        // vanishes → only f→f 1. per-entity weights all 1.
        assert_eq!(
            initial_threshold(&g, &cfg, ThresholdStat::Max).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn suggest_follows_monotonicity() {
        let g = fig1();
        let mut cfg = base_cfg(&g, Selector::AllNodes);
        // union/increasing → min; intersection/decreasing → max — both exist
        assert!(suggest_k(&g, &cfg).unwrap().is_some());
        cfg.semantics = Semantics::Intersection;
        assert!(suggest_k(&g, &cfg).unwrap().is_some());
    }

    #[test]
    fn missing_entity_yields_none() {
        let g = fig1();
        let m = g
            .schema()
            .category(g.schema().id("gender").unwrap(), "m")
            .unwrap();
        // m→m collaborations never occur in fig1
        let cfg = base_cfg(&g, Selector::edge_1attr(m.clone(), m));
        assert_eq!(
            initial_threshold(&g, &cfg, ThresholdStat::Min).unwrap(),
            None
        );
    }
}
