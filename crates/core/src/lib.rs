//! # graphtempo
//!
//! A from-scratch Rust implementation of **GraphTempo** (Tsoukanara,
//! Koloniari, Pitoura — EDBT 2023): an aggregation framework for evolving
//! graphs.
//!
//! The crate provides, over the temporal attributed graph model of
//! [`tempo_graph`]:
//!
//! * **Temporal operators** (§2.1) — [`ops::project`], [`ops::union`],
//!   [`ops::intersection`], [`ops::difference`], plus the generalized
//!   [`ops::event_graph`] parameterized by union/intersection membership
//!   semantics;
//! * **Attribute aggregation** (§2.2) — [`aggregate::aggregate`] with
//!   distinct (DIST) and non-distinct (ALL) weights, the Algorithm-2
//!   dataframe implementation [`aggregate::aggregate_via_frames`], and the
//!   static-attribute fast path [`aggregate::aggregate_static_fast`];
//! * **Evolution graphs** (§2.3) — [`evolution::EvolutionGraph`]
//!   classification and [`evolution::evolution_aggregate`] with
//!   stability/growth/shrinkage weights;
//! * **Partial materialization** (§4.3) — [`materialize::TimepointStore`]
//!   (T-distributive union of per-timepoint aggregates) and
//!   [`aggregate::rollup`] (D-distributive attribute roll-up);
//! * **Exploration** (§3) — [`explore::explore`] implementing U-Explore,
//!   I-Explore and the monotonicity shortcuts over all twelve cases of the
//!   paper's Table 1, with the naive oracle [`explore::explore_naive`] and
//!   §3.5 threshold initialization [`explore::suggest_k`].
//!
//! ```
//! use graphtempo::aggregate::{aggregate, AggMode};
//! use graphtempo::ops::{union, project_point};
//! use tempo_graph::fixtures::fig1;
//! use tempo_graph::{TimePoint, TimeSet};
//!
//! let g = fig1(); // the paper's Fig. 1 running example
//!
//! // Union graph of [t0, t1] (Fig. 2) ...
//! let t0 = TimeSet::point(3, TimePoint(0));
//! let t1 = TimeSet::point(3, TimePoint(1));
//! let u = union(&g, &t0, &t1).unwrap();
//!
//! // ... aggregated on (gender, publications) (Figs. 3d–e).
//! let attrs = vec![
//!     u.schema().id("gender").unwrap(),
//!     u.schema().id("publications").unwrap(),
//! ];
//! let dist = aggregate(&u, &attrs, AggMode::Distinct);
//! let all = aggregate(&u, &attrs, AggMode::All);
//! assert!(all.total_node_weight() >= dist.total_node_weight());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod cube;
pub mod evolution;
pub mod explore;
pub mod export;
pub mod materialize;
pub mod measures;
pub mod ops;
pub mod zoom;

pub use aggregate::{AggMode, AggregateGraph, CountTarget, GroupTable};
pub use cube::{GraphCube, Level};
pub use evolution::{
    EvolutionAggregate, EvolutionCache, EvolutionClass, EvolutionGraph, EvolutionWeights,
};
pub use explore::{
    explore, explore_materializing, explore_naive, suggest_k, Direction, ExploreConfig,
    ExploreKernel, ExploreOutcome, ExtendSide, IntervalPair, Selector, Semantics, ThresholdStat,
};
pub use measures::{aggregate_measure, EdgeMeasure, MeasureAggregate, NodeMeasure};
pub use ops::{
    difference, event_graph, event_mask, intersection, project, project_point, union, Event,
    EventMask, SideTest,
};
pub use zoom::{zoom_out, Granularity};
