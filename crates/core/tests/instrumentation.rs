//! End-to-end check that the instrumentation registry agrees with the
//! values the public APIs report. Runs as its own integration-test binary
//! (and deliberately as a single `#[test]`) because the registry is
//! process-global: sibling tests running in parallel would perturb exact
//! counter deltas.

use graphtempo::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::materialize::MaterializationCache;
use graphtempo::ops::Event;
use tempo_datagen::RandomGraphConfig;
use tempo_graph::TemporalGraph;

fn graph() -> TemporalGraph {
    RandomGraphConfig {
        pool: 40,
        timepoints: 6,
        active_per_tp: 20,
        edges_per_tp: 40,
        node_persistence: 0.6,
        edge_persistence: 0.5,
        kinds: 3,
        levels: 3,
        seed: 0xfeed,
    }
    .generate()
    .expect("random generator produces valid graphs")
}

#[test]
fn registry_matches_reported_outcomes() {
    let g = graph();
    let kind = g.schema().id("kind").expect("random graphs have `kind`");
    let ins = tempo_instrument::global();

    // -- exploration: counter and latency histograms track evaluations --
    let before = ins.snapshot();
    let mut expected_evals = 0u64;
    let mut runs = 0u64;
    for (event, extend) in [
        (Event::Stability, ExtendSide::New),
        (Event::Growth, ExtendSide::New),
        (Event::Shrinkage, ExtendSide::Old),
    ] {
        let cfg = ExploreConfig {
            event,
            extend,
            semantics: Semantics::Union,
            k: 1,
            attrs: vec![kind],
            selector: Selector::AllEdges,
        };
        let outcome = explore(&g, &cfg).expect("explore");
        expected_evals += outcome.evaluations as u64;
        runs += 1;
    }
    assert!(expected_evals > 0, "fixture must force real evaluations");
    let after = ins.snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(
        delta("explore.evaluations"),
        expected_evals,
        "counter must equal the sum of ExploreOutcome::evaluations"
    );
    let hist_delta = |name: &str| {
        after.histogram(name).map_or(0, |h| h.count) - before.histogram(name).map_or(0, |h| h.count)
    };
    // one latency sample per evaluation; these static-table popcount
    // selectors all take the engine's fused membership-and-count path, so
    // the mask-build / count split is never entered
    assert_eq!(hist_delta("explore.eval_ns"), expected_evals);
    assert_eq!(hist_delta("explore.mask_ns"), 0);
    assert_eq!(hist_delta("explore.count_ns"), 0);
    // one kernel (and therefore one group table) per explore() call
    assert_eq!(hist_delta("explore.kernel_build_ns"), runs);
    assert_eq!(delta("aggregate.group_tables_built"), runs);
    // sequential exploration builds one chain cursor per run, loads one
    // chain per reference point, and (under the increasing strategies used
    // here, which walk each chain in ascending order) takes one incremental
    // step per evaluation beyond a chain's base pair
    let chains = runs * (g.domain().len() as u64 - 1);
    assert_eq!(delta("explore.cursor.builds"), runs);
    assert_eq!(delta("explore.cursor.chains"), chains);
    assert_eq!(delta("explore.cursor.steps"), expected_evals - chains);
    assert_eq!(
        hist_delta("explore.cursor.step_ns"),
        expected_evals - chains
    );
    // the transposed presence indexes are built once (nodes + edges) and
    // cached on the graph across runs
    assert_eq!(delta("graph.transpose_builds"), 2);
    // random graphs have static attributes, so the cursor resolves the
    // count to a popcount: the general distinct scan is never entered
    assert_eq!(delta("aggregate.count_distinct.calls"), 0);
    // pruning is recorded per strategy row; totals only need to be sane
    assert!(after.counter("explore.pruned.union_increasing") <= after.counter("explore.pruned"));

    // -- materialization: cache hits/misses and build latency --
    let before = ins.snapshot();
    let cache = MaterializationCache::new(1);
    let attrs = vec![kind];
    let a = cache.store_for(&g, &attrs);
    let b = cache.store_for(&g, &attrs);
    assert!(std::sync::Arc::ptr_eq(&a, &b));
    let after = ins.snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("materialize.cache.misses"), 1);
    assert_eq!(delta("materialize.cache.hits"), 1);
    assert_eq!(
        after
            .histogram("materialize.store_build_ns")
            .map_or(0, |h| h.count)
            - before
                .histogram("materialize.store_build_ns")
                .map_or(0, |h| h.count),
        1
    );

    // -- the global gate suppresses all recording --
    let before = ins.snapshot();
    tempo_instrument::set_enabled(false);
    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![kind],
        selector: Selector::AllEdges,
    };
    let outcome = explore(&g, &cfg).expect("explore while disabled");
    tempo_instrument::set_enabled(true);
    assert!(outcome.evaluations > 0);
    let after = ins.snapshot();
    assert_eq!(
        after.counter("explore.evaluations"),
        before.counter("explore.evaluations"),
        "disabled registry must not record"
    );
}
