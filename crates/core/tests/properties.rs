//! Property-based tests of the GraphTempo operators on random evolving
//! graphs: the paper's lemmas (3.3, 3.9, 3.10), distributivity claims
//! (§4.3), equivalence of the three aggregation implementations, and
//! equivalence of the pruned exploration strategies with naive enumeration.

use graphtempo::aggregate::{
    aggregate, aggregate_static_fast, aggregate_via_frames, rollup, AggMode,
};
use graphtempo::explore::{explore, explore_naive, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::materialize::{aggregate_at_point, TimepointStore};
use graphtempo::ops::{
    difference, event_graph, intersection, project_point, union, Event, SideTest,
};
use proptest::prelude::*;
use tempo_datagen::RandomGraphConfig;
use tempo_graph::{AttrId, TemporalGraph, TimePoint, TimeSet};

/// Strategy: a random evolving graph plus its config.
fn graph_strategy() -> impl Strategy<Value = TemporalGraph> {
    (
        10usize..40,  // pool
        3usize..7,    // timepoints
        5usize..15,   // active per tp
        5usize..40,   // edges per tp
        0u8..=10,     // node persistence (tenths)
        0u8..=10,     // edge persistence (tenths)
        1usize..4,    // kinds
        1i64..5,      // levels
        any::<u64>(), // seed
    )
        .prop_map(|(pool, tps, active, edges, np, ep, kinds, levels, seed)| {
            RandomGraphConfig {
                pool,
                timepoints: tps,
                active_per_tp: active.min(pool),
                edges_per_tp: edges,
                node_persistence: f64::from(np) / 10.0,
                edge_persistence: f64::from(ep) / 10.0,
                kinds,
                levels,
                seed,
            }
            .generate()
            .expect("random generator produces valid graphs")
        })
}

/// Random non-empty contiguous interval over `n` points.
fn interval(n: usize, seed: u64) -> TimeSet {
    let a = (seed as usize) % n;
    let b = ((seed >> 8) as usize) % n;
    TimeSet::range(n, a.min(b), a.max(b))
}

fn kind_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("kind").expect("random graphs have `kind`")
}

fn level_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("level").expect("random graphs have `level`")
}

fn names(g: &TemporalGraph) -> Vec<String> {
    let mut v: Vec<String> = g.node_ids().map(|n| g.node_name(n).to_owned()).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Union is commutative and intersection ⊆ union (as entity sets).
    #[test]
    fn union_commutative_and_contains_intersection(
        g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let n = g.domain().len();
        let (t1, t2) = (interval(n, s1), interval(n, s2));
        let u12 = union(&g, &t1, &t2).unwrap();
        let u21 = union(&g, &t2, &t1).unwrap();
        prop_assert_eq!(names(&u12), names(&u21));
        prop_assert_eq!(u12.n_edges(), u21.n_edges());

        let i = intersection(&g, &t1, &t2).unwrap();
        let union_names = names(&u12);
        for nm in names(&i) {
            prop_assert!(union_names.binary_search(&nm).is_ok());
        }
        prop_assert!(i.n_edges() <= u12.n_edges());
    }

    /// Edges of 𝒯₁ split exactly into (stable in 𝒯₂) ⊎ (deleted by 𝒯₂).
    #[test]
    fn difference_partitions_edges(
        g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let n = g.domain().len();
        let (t1, t2) = (interval(n, s1), interval(n, s2));
        let alive_t1 = g.edges_alive_any(&t1).len();
        let stable = intersection(&g, &t1, &t2).unwrap().n_edges();
        let deleted = difference(&g, &t1, &t2).unwrap().n_edges();
        prop_assert_eq!(alive_t1, stable + deleted);
    }

    /// Lemma 3.3 (increasing): extending one side of the intersection graph
    /// with union semantics never decreases aggregate weights.
    #[test]
    fn lemma_3_3_union_increasing(g in graph_strategy(), s in any::<u64>()) {
        let n = g.domain().len();
        let tk = TimeSet::point(n, TimePoint((s as usize % n) as u32));
        let attrs = vec![kind_attr(&g)];
        // Ti ⊆ Tj as growing suffixes
        let start = (s >> 8) as usize % n;
        for end in start..n - 1 {
            let ti = TimeSet::range(n, start, end);
            let tj = TimeSet::range(n, start, end + 1);
            let gi = event_graph(&g, Event::Stability, &tk, &ti, SideTest::Any, SideTest::Any).unwrap();
            let gj = event_graph(&g, Event::Stability, &tk, &tj, SideTest::Any, SideTest::Any).unwrap();
            let ai = aggregate(&gi, &attrs, AggMode::Distinct);
            let aj = aggregate(&gj, &attrs, AggMode::Distinct);
            for (tuple, w) in ai.iter_nodes() {
                prop_assert!(aj.node_weight(tuple) >= w, "node weight decreased under union extension");
            }
            for ((src, dst), w) in ai.iter_edges() {
                prop_assert!(aj.edge_weight(src, dst) >= w, "edge weight decreased under union extension");
            }
        }
    }

    /// Lemma 3.3 (decreasing): extending with intersection semantics never
    /// increases aggregate weights.
    #[test]
    fn lemma_3_3_intersection_decreasing(g in graph_strategy(), s in any::<u64>()) {
        let n = g.domain().len();
        let tk = TimeSet::point(n, TimePoint((s as usize % n) as u32));
        let attrs = vec![kind_attr(&g)];
        let start = (s >> 8) as usize % n;
        for end in start..n - 1 {
            let ti = TimeSet::range(n, start, end);
            let tj = TimeSet::range(n, start, end + 1);
            let gi = event_graph(&g, Event::Stability, &tk, &ti, SideTest::Any, SideTest::All).unwrap();
            let gj = event_graph(&g, Event::Stability, &tk, &tj, SideTest::Any, SideTest::All).unwrap();
            let ai = aggregate(&gi, &attrs, AggMode::Distinct);
            let aj = aggregate(&gj, &attrs, AggMode::Distinct);
            for (tuple, w) in aj.iter_nodes() {
                prop_assert!(ai.node_weight(tuple) >= w, "node weight increased under intersection extension");
            }
            for ((src, dst), w) in aj.iter_edges() {
                prop_assert!(ai.edge_weight(src, dst) >= w, "edge weight increased under intersection extension");
            }
        }
    }

    /// Lemma 3.9: 𝒯new − 𝒯old decreases when 𝒯old extends (union) and
    /// increases when 𝒯new extends (union).
    #[test]
    fn lemma_3_9_growth_monotonicity(g in graph_strategy(), _s in any::<u64>()) {
        let n = g.domain().len();
        prop_assume!(n >= 3);
        let attrs = vec![kind_attr(&g)];
        let tnew = TimeSet::point(n, TimePoint((n - 1) as u32));
        // extend Told backward
        let mut prev: Option<u64> = None;
        for start in (0..n - 1).rev() {
            let told = TimeSet::range(n, start, n - 2);
            let d = event_graph(&g, Event::Growth, &told, &tnew, SideTest::Any, SideTest::Any).unwrap();
            let w = aggregate(&d, &attrs, AggMode::Distinct).total_edge_weight();
            if let Some(p) = prev {
                prop_assert!(w <= p, "growth grew while extending Told: {w} > {p}");
            }
            prev = Some(w);
        }
        // extend Tnew forward with Told = first point
        let told = TimeSet::point(n, TimePoint(0));
        let mut prev: Option<u64> = None;
        for end in 1..n {
            let tnew = TimeSet::range(n, 1, end);
            let d = event_graph(&g, Event::Growth, &told, &tnew, SideTest::Any, SideTest::Any).unwrap();
            let w = aggregate(&d, &attrs, AggMode::Distinct).total_edge_weight();
            if let Some(p) = prev {
                prop_assert!(w >= p, "growth shrank while extending Tnew: {w} < {p}");
            }
            prev = Some(w);
        }
    }

    /// Lemma 3.10: 𝒯new − 𝒯old increases when 𝒯old extends with
    /// intersection semantics.
    #[test]
    fn lemma_3_10_growth_intersection(g in graph_strategy()) {
        let n = g.domain().len();
        prop_assume!(n >= 3);
        let attrs = vec![kind_attr(&g)];
        let tnew = TimeSet::point(n, TimePoint((n - 1) as u32));
        let mut prev: Option<u64> = None;
        for start in (0..n - 1).rev() {
            let told = TimeSet::range(n, start, n - 2);
            let d = event_graph(&g, Event::Growth, &told, &tnew, SideTest::All, SideTest::Any).unwrap();
            let w = aggregate(&d, &attrs, AggMode::Distinct).total_edge_weight();
            if let Some(p) = prev {
                prop_assert!(w >= p, "growth shrank while ∩-extending Told: {w} < {p}");
            }
            prev = Some(w);
        }
    }

    /// DIST weights never exceed ALL weights.
    #[test]
    fn dist_bounded_by_all(g in graph_strategy()) {
        for attrs in [vec![kind_attr(&g)], vec![level_attr(&g)], vec![kind_attr(&g), level_attr(&g)]] {
            let dist = aggregate(&g, &attrs, AggMode::Distinct);
            let all = aggregate(&g, &attrs, AggMode::All);
            for (tuple, w) in dist.iter_nodes() {
                prop_assert!(all.node_weight(tuple) >= w);
            }
            for ((src, dst), w) in dist.iter_edges() {
                prop_assert!(all.edge_weight(src, dst) >= w);
            }
        }
    }

    /// The three aggregation implementations agree.
    #[test]
    fn aggregation_implementations_agree(g in graph_strategy()) {
        let kind = kind_attr(&g);
        let level = level_attr(&g);
        for mode in [AggMode::Distinct, AggMode::All] {
            // static fast path
            let fast = aggregate_static_fast(&g, &[kind], mode).unwrap();
            let slow = aggregate(&g, &[kind], mode);
            prop_assert_eq!(&fast, &slow);
            // Algorithm-2 frames path (mixed static + time-varying)
            let framed = aggregate_via_frames(&g, &[kind, level], mode).unwrap();
            let direct = aggregate(&g, &[kind, level], mode);
            prop_assert_eq!(&framed, &direct);
        }
    }

    /// §4.3 T-distributivity: union of per-timepoint ALL aggregates equals
    /// the ALL aggregate of the union graph.
    #[test]
    fn t_distributive_union(g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let n = g.domain().len();
        let (t1, t2) = (interval(n, s1), interval(n, s2));
        let attrs = vec![kind_attr(&g), level_attr(&g)];
        let store = TimepointStore::build(&g, &attrs);
        let fast = store.union_all(&t1.union(&t2)).unwrap();
        let u = union(&g, &t1, &t2).unwrap();
        let direct = aggregate(&u, &attrs, AggMode::All);
        prop_assert_eq!(fast, direct);
    }

    /// §4.3 D-distributivity: per-timepoint roll-up equals direct
    /// aggregation on the attribute subset.
    #[test]
    fn d_distributive_rollup(g in graph_strategy(), s in any::<u64>()) {
        let n = g.domain().len();
        let t = TimePoint((s as usize % n) as u32);
        let attrs = vec![kind_attr(&g), level_attr(&g)];
        let full = aggregate_at_point(&g, &attrs, t);
        for subset in [&["kind"][..], &["level"][..]] {
            let rolled = rollup(&full, subset).unwrap();
            let ids: Vec<AttrId> = subset.iter().map(|nm| g.schema().id(nm).unwrap()).collect();
            let direct = aggregate_at_point(&g, &ids, t);
            prop_assert_eq!(rolled, direct);
        }
    }

    /// Per-timepoint aggregation equals aggregating the projection.
    #[test]
    fn point_aggregation_matches_projection(g in graph_strategy(), s in any::<u64>()) {
        let n = g.domain().len();
        let t = TimePoint((s as usize % n) as u32);
        let attrs = vec![kind_attr(&g)];
        let fast = aggregate_at_point(&g, &attrs, t);
        let p = project_point(&g, t).unwrap();
        let slow = aggregate(&p, &[kind_attr(&p)], AggMode::All);
        prop_assert_eq!(fast, slow);
    }

    /// All twelve Table-1 exploration cases match naive enumeration (with a
    /// static aggregation attribute, where the monotonicity lemmas hold).
    #[test]
    fn explore_matches_naive(g in graph_strategy(), k in 1u64..30) {
        let kind = kind_attr(&g);
        for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    let cfg = ExploreConfig {
                        event,
                        extend,
                        semantics,
                        k,
                        attrs: vec![kind],
                        selector: Selector::AllEdges,
                    };
                    let fast = explore(&g, &cfg).unwrap();
                    let slow = explore_naive(&g, &cfg).unwrap();
                    prop_assert_eq!(
                        &fast.pairs, &slow.pairs,
                        "k={} case={:?}/{:?}/{:?}", k, event, extend, semantics
                    );
                    prop_assert!(fast.evaluations <= slow.evaluations);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Table 1's "⊆ of" column: the minimal pairs of the decreasing union
    /// cases are contained in the results of their increasing counterparts
    /// (growth: 𝒯new−𝒯old(∪) ⊆ 𝒯new(∪)−𝒯old; shrinkage:
    /// 𝒯old−𝒯new(∪) ⊆ 𝒯old(∪)−𝒯new).
    #[test]
    fn table1_subset_relations(g in graph_strategy(), k in 1u64..20) {
        let kind = kind_attr(&g);
        for (event, small_side, big_side) in [
            (Event::Growth, ExtendSide::Old, ExtendSide::New),
            (Event::Shrinkage, ExtendSide::New, ExtendSide::Old),
        ] {
            let mk = |extend| ExploreConfig {
                event,
                extend,
                semantics: Semantics::Union,
                k,
                attrs: vec![kind],
                selector: Selector::AllEdges,
            };
            let small = explore(&g, &mk(small_side)).unwrap();
            let big = explore(&g, &mk(big_side)).unwrap();
            for pair in &small.pairs {
                prop_assert!(
                    big.pairs.contains(pair),
                    "{event:?}: base-only pair missing from the extended case"
                );
            }
        }
    }

    /// The cube answers any (level, scope) query exactly as direct
    /// aggregation of the union graph would.
    #[test]
    fn cube_query_equals_direct(g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()) {
        use graphtempo::cube::GraphCube;
        let n = g.domain().len();
        let (t1, t2) = (interval(n, s1), interval(n, s2));
        let attrs = vec![kind_attr(&g), level_attr(&g)];
        let cube = GraphCube::build(&g, &attrs, 2);
        let scope = t1.union(&t2);
        for level in cube.all_levels() {
            let from_cube = cube.query(&level, &scope).unwrap();
            let u = union(&g, &t1, &t2).unwrap();
            let ids: Vec<AttrId> = level
                .names()
                .iter()
                .map(|nm| u.schema().id(nm).unwrap())
                .collect();
            let direct = aggregate(&u, &ids, AggMode::All);
            prop_assert_eq!(from_cube, direct, "level {:?}", level);
        }
    }

    /// Union zoom-out preserves entity identity; intersection zoom-out
    /// keeps a subset of it.
    #[test]
    fn zoom_entity_relations(g in graph_strategy(), window in 2usize..4) {
        use graphtempo::zoom::{zoom_out, Granularity};
        prop_assume!(window < g.domain().len());
        let gran = Granularity::windows(g.domain(), window).unwrap();
        let any = zoom_out(&g, &gran, SideTest::Any).unwrap();
        // union zoom keeps every entity that exists at some point (nodes
        // registered but never present are dropped)
        let existing_nodes = g
            .node_ids()
            .filter(|&n| !g.node_timestamp(n).is_empty())
            .count();
        prop_assert_eq!(any.n_nodes(), existing_nodes);
        prop_assert_eq!(any.n_edges(), g.n_edges());
        let all = zoom_out(&g, &gran, SideTest::All).unwrap();
        prop_assert!(all.n_nodes() <= any.n_nodes());
        prop_assert!(all.n_edges() <= any.n_edges());
        prop_assert!(all.validate().is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The COUNT measure coincides with ALL aggregation weights, and SUM of
    /// a constant-1 observation would equal COUNT; SUM over `level` is
    /// bounded by COUNT × max-level.
    #[test]
    fn measures_consistent_with_all_aggregation(g in graph_strategy()) {
        use graphtempo::measures::{aggregate_measure, EdgeMeasure, NodeMeasure};
        let kind = kind_attr(&g);
        let level = level_attr(&g);
        let m = aggregate_measure(&g, &[kind], NodeMeasure::Count, EdgeMeasure::Count).unwrap();
        let all = aggregate(&g, &[kind], AggMode::All);
        for (tuple, w) in all.iter_nodes() {
            prop_assert_eq!(m.node_value(tuple), Some(w as f64));
        }
        for ((s, d), w) in all.iter_edges() {
            prop_assert_eq!(m.edge_value(s, d), Some(w as f64));
        }
        // sum/min/max/avg relations per group
        let sum = aggregate_measure(&g, &[kind], NodeMeasure::Sum(level), EdgeMeasure::Count).unwrap();
        let min = aggregate_measure(&g, &[kind], NodeMeasure::Min(level), EdgeMeasure::Count).unwrap();
        let max = aggregate_measure(&g, &[kind], NodeMeasure::Max(level), EdgeMeasure::Count).unwrap();
        let avg = aggregate_measure(&g, &[kind], NodeMeasure::Avg(level), EdgeMeasure::Count).unwrap();
        for (tuple, w) in all.iter_nodes() {
            let count = w as f64;
            if let (Some(s), Some(lo), Some(hi), Some(mean)) = (
                sum.node_value(tuple),
                min.node_value(tuple),
                max.node_value(tuple),
                avg.node_value(tuple),
            ) {
                prop_assert!(lo <= hi);
                prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
                prop_assert!(s <= hi * count + 1e-9);
                prop_assert!(s >= lo - 1e-9);
            }
        }
    }
}
