//! Property-based equivalence of the chain-incremental cursor with the
//! per-pair kernel and the materializing oracle: every chain coordinate of
//! every Table-1 strategy combination must evaluate to the same count on
//! random evolving graphs, and full exploration runs must agree pair-for-
//! pair (with identical evaluation counts) across all three paths.

use graphtempo::explore::{
    evaluate_pair_materialized, explore, explore_materializing, explore_pairwise, explore_parallel,
    ChainCursor, ExploreConfig, ExploreKernel, ExtendSide, Selector, Semantics,
};
use graphtempo::ops::Event;
use proptest::prelude::*;
use tempo_columnar::Value;
use tempo_datagen::RandomGraphConfig;
use tempo_graph::{AttrId, TemporalGraph, TimePoint, TimeSet};

/// Strategy: a random evolving graph (same shape as `tests/properties.rs`).
fn graph_strategy() -> impl Strategy<Value = TemporalGraph> {
    (
        10usize..40,  // pool
        3usize..7,    // timepoints
        5usize..15,   // active per tp
        5usize..40,   // edges per tp
        0u8..=10,     // node persistence (tenths)
        0u8..=10,     // edge persistence (tenths)
        1usize..4,    // kinds
        1i64..5,      // levels
        any::<u64>(), // seed
    )
        .prop_map(|(pool, tps, active, edges, np, ep, kinds, levels, seed)| {
            RandomGraphConfig {
                pool,
                timepoints: tps,
                active_per_tp: active.min(pool),
                edges_per_tp: edges,
                node_persistence: f64::from(np) / 10.0,
                edge_persistence: f64::from(ep) / 10.0,
                kinds,
                levels,
                seed,
            }
            .generate()
            .expect("random generator produces valid graphs")
        })
}

fn kind_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("kind").expect("random graphs have `kind`")
}

fn level_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("level").expect("random graphs have `level`")
}

const EVENTS: [Event; 3] = [Event::Stability, Event::Growth, Event::Shrinkage];
const EXTENDS: [ExtendSide; 2] = [ExtendSide::Old, ExtendSide::New];
const SEMANTICS: [Semantics; 2] = [Semantics::Union, Semantics::Intersection];

/// The interval pair at chain coordinate `(i, j)` — mirrors the engine's
/// chain table so the test derives pairs independently of the cursor.
fn chain_pair(n: usize, i: usize, j: usize, extend: ExtendSide) -> (TimeSet, TimeSet) {
    match extend {
        ExtendSide::New => (
            TimeSet::point(n, TimePoint(i as u32)),
            TimeSet::range(n, i + 1, i + 1 + j),
        ),
        ExtendSide::Old => (
            TimeSet::range(n, i - j, i),
            TimeSet::point(n, TimePoint((i + 1) as u32)),
        ),
    }
}

/// Number of pairs in reference `i`'s chain.
fn chain_len(n: usize, i: usize, extend: ExtendSide) -> usize {
    match extend {
        ExtendSide::New => n - 1 - i,
        ExtendSide::Old => i + 1,
    }
}

/// Drives one cursor through every chain coordinate and checks each count
/// against the per-pair kernel and the materializing oracle.
fn assert_cursor_agrees(g: &TemporalGraph, cfg: &ExploreConfig) -> Result<(), TestCaseError> {
    let n = g.domain().len();
    let kernel = ExploreKernel::new(g, cfg);
    let mut cursor = ChainCursor::new(&kernel);
    for i in 0..n - 1 {
        for j in 0..chain_len(n, i, cfg.extend) {
            let (told, tnew) = chain_pair(n, i, j, cfg.extend);
            let by_cursor = cursor.evaluate_chain_pair(i, j);
            let by_kernel = kernel.evaluate(&told, &tnew).unwrap();
            let by_oracle = evaluate_pair_materialized(g, cfg, &told, &tnew).unwrap();
            prop_assert_eq!(
                by_cursor,
                by_kernel,
                "cursor vs kernel: {:?}/{:?}/{:?} selector={:?} i={} j={}",
                cfg.event,
                cfg.extend,
                cfg.semantics,
                cfg.selector,
                i,
                j
            );
            prop_assert_eq!(by_kernel, by_oracle, "kernel vs oracle at i={} j={}", i, j);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every chain coordinate evaluates identically through the cursor, the
    /// per-pair kernel, and the materializing oracle — across all events,
    /// extend sides, semantics, both group-table layouts (static `kind`
    /// exercises the popcount fast counts, time-varying `level` the general
    /// distinct scan), known and unknown selector tuples.
    #[test]
    fn cursor_matches_kernel_and_oracle(g in graph_strategy()) {
        let known = vec![Value::Cat(0)];
        let unknown = vec![Value::Cat(u32::MAX)];
        let selectors = [
            Selector::AllNodes,
            Selector::AllEdges,
            Selector::NodeTuple(known.clone()),
            Selector::EdgeTuple(known.clone(), known),
            Selector::NodeTuple(unknown),
        ];
        for attr in [kind_attr(&g), level_attr(&g)] {
            for event in EVENTS {
                for extend in EXTENDS {
                    for semantics in SEMANTICS {
                        for selector in &selectors {
                            let cfg = ExploreConfig {
                                event,
                                extend,
                                semantics,
                                k: 1,
                                attrs: vec![attr],
                                selector: selector.clone(),
                            };
                            assert_cursor_agrees(&g, &cfg)?;
                        }
                    }
                }
            }
        }
    }

    /// Full exploration runs agree across the chain-incremental path, the
    /// per-pair kernel baseline, the materializing oracle, and the strided
    /// parallel variant — identical pairs AND identical evaluation counts.
    /// Mixed static/time-varying attributes exercise the time-indexed
    /// group-table layout.
    #[test]
    fn explore_paths_agree(g in graph_strategy(), k in 1u64..30) {
        let attrs = vec![kind_attr(&g), level_attr(&g)];
        for event in EVENTS {
            for extend in EXTENDS {
                for semantics in SEMANTICS {
                    let cfg = ExploreConfig {
                        event,
                        extend,
                        semantics,
                        k,
                        attrs: attrs.clone(),
                        selector: Selector::AllEdges,
                    };
                    let chained = explore(&g, &cfg).unwrap();
                    let pairwise = explore_pairwise(&g, &cfg).unwrap();
                    let oracle = explore_materializing(&g, &cfg).unwrap();
                    prop_assert_eq!(
                        &chained.pairs, &pairwise.pairs,
                        "k={} case={:?}/{:?}/{:?}", k, event, extend, semantics
                    );
                    prop_assert_eq!(chained.evaluations, pairwise.evaluations);
                    prop_assert_eq!(&chained.pairs, &oracle.pairs);
                    prop_assert_eq!(chained.evaluations, oracle.evaluations);
                    for threads in [2, 4] {
                        let par = explore_parallel(&g, &cfg, threads).unwrap();
                        prop_assert_eq!(&par.pairs, &chained.pairs, "threads={}", threads);
                        prop_assert_eq!(par.evaluations, chained.evaluations);
                    }
                }
            }
        }
    }

    /// Two-timepoint graphs have length-1 chains: the base pair is also the
    /// deepest pair, so every strategy degenerates to a single evaluation
    /// that all paths must agree on.
    #[test]
    fn length_one_chains_agree(seed in any::<u64>()) {
        let g = RandomGraphConfig {
            pool: 15,
            timepoints: 2,
            active_per_tp: 8,
            edges_per_tp: 12,
            node_persistence: 0.5,
            edge_persistence: 0.5,
            kinds: 2,
            levels: 2,
            seed,
        }
        .generate()
        .expect("two-timepoint graph");
        for event in EVENTS {
            for extend in EXTENDS {
                for semantics in SEMANTICS {
                    let cfg = ExploreConfig {
                        event,
                        extend,
                        semantics,
                        k: 1,
                        attrs: vec![kind_attr(&g)],
                        selector: Selector::AllEdges,
                    };
                    assert_cursor_agrees(&g, &cfg)?;
                    let chained = explore(&g, &cfg).unwrap();
                    let oracle = explore_materializing(&g, &cfg).unwrap();
                    prop_assert_eq!(&chained.pairs, &oracle.pairs);
                    prop_assert_eq!(chained.evaluations, 1, "one chain of one pair");
                }
            }
        }
    }
}

/// A graph whose later time points are empty produces empty event masks:
/// stability across (t0, t1) keeps nothing, growth and shrinkage likewise
/// on at least one side. The cursor must agree with the oracle on zeros.
#[test]
fn empty_masks_agree() {
    use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain};

    let domain = TimeDomain::new(vec!["t0", "t1", "t2"]).unwrap();
    let mut schema = AttributeSchema::new();
    let kind = schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(domain, schema);
    let a = b.add_node("a").unwrap();
    let c = b.add_node("c").unwrap();
    let v = b.intern_category(kind, "k0");
    b.set_static(a, kind, v.clone()).unwrap();
    b.set_static(c, kind, v).unwrap();
    // all presence at t0 only — t1 and t2 are empty time points
    b.set_presence(a, TimePoint(0)).unwrap();
    b.set_presence(c, TimePoint(0)).unwrap();
    b.add_edge_at(a, c, TimePoint(0)).unwrap();
    let g = b.build().unwrap();

    for event in EVENTS {
        for extend in EXTENDS {
            for semantics in SEMANTICS {
                for selector in [Selector::AllNodes, Selector::AllEdges] {
                    let cfg = ExploreConfig {
                        event,
                        extend,
                        semantics,
                        k: 1,
                        attrs: vec![kind],
                        selector,
                    };
                    assert_cursor_agrees(&g, &cfg).unwrap();
                }
            }
        }
    }
    // and shrinkage from the populated point is the only non-empty event
    let cfg = ExploreConfig {
        event: Event::Shrinkage,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![kind],
        selector: Selector::AllNodes,
    };
    let kernel = ExploreKernel::new(&g, &cfg);
    let mut cursor = ChainCursor::new(&kernel);
    assert_eq!(
        cursor.evaluate_chain_pair(0, 0),
        2,
        "a and c vanish after t0"
    );
    assert!(cursor.last_mask().keep_edges().count_ones() > 0);
    assert_eq!(
        cursor.evaluate_chain_pair(1, 0),
        0,
        "t1 and t2 are both empty"
    );
    assert!(cursor.last_mask().keep_nodes().is_zero());
}

/// A single-timepoint domain has no chain at all: every exploration entry
/// point rejects it before a cursor is ever built.
#[test]
fn single_timepoint_domain_errors() {
    use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain};

    let domain = TimeDomain::new(vec!["t0"]).unwrap();
    let mut schema = AttributeSchema::new();
    let kind = schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(domain, schema);
    let a = b.add_node("a").unwrap();
    let v = b.intern_category(kind, "k0");
    b.set_static(a, kind, v).unwrap();
    b.set_presence(a, TimePoint(0)).unwrap();
    let g = b.build().unwrap();

    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![kind],
        selector: Selector::AllNodes,
    };
    assert!(explore(&g, &cfg).is_err());
    assert!(explore_pairwise(&g, &cfg).is_err());
    assert!(explore_materializing(&g, &cfg).is_err());
    assert!(explore_parallel(&g, &cfg, 4).is_err());
}
