//! Property-based equivalence of the zero-materialization exploration
//! kernel with the materializing reference path, on random evolving
//! graphs: `event_mask` vs `event_graph`, `GroupTable::aggregate_masked`
//! vs `aggregate` of the materialized subgraph, `count_distinct` vs
//! `Selector::count`, `ExploreKernel::evaluate` vs
//! `evaluate_pair_materialized`, and full `explore` runs vs
//! `explore_materializing` / `explore_naive`.

use graphtempo::aggregate::{aggregate, AggMode, CountTarget, GroupTable};
use graphtempo::explore::{
    evaluate_pair_materialized, explore, explore_materializing, explore_naive, ExploreConfig,
    ExploreKernel, ExtendSide, Selector, Semantics,
};
use graphtempo::ops::{event_graph, event_mask, Event, SideTest};
use proptest::prelude::*;
use tempo_columnar::Value;
use tempo_datagen::RandomGraphConfig;
use tempo_graph::{AttrId, NodeId, TemporalGraph, TimeSet};

/// Strategy: a random evolving graph (same shape as `tests/properties.rs`).
fn graph_strategy() -> impl Strategy<Value = TemporalGraph> {
    (
        10usize..40,  // pool
        3usize..7,    // timepoints
        5usize..15,   // active per tp
        5usize..40,   // edges per tp
        0u8..=10,     // node persistence (tenths)
        0u8..=10,     // edge persistence (tenths)
        1usize..4,    // kinds
        1i64..5,      // levels
        any::<u64>(), // seed
    )
        .prop_map(|(pool, tps, active, edges, np, ep, kinds, levels, seed)| {
            RandomGraphConfig {
                pool,
                timepoints: tps,
                active_per_tp: active.min(pool),
                edges_per_tp: edges,
                node_persistence: f64::from(np) / 10.0,
                edge_persistence: f64::from(ep) / 10.0,
                kinds,
                levels,
                seed,
            }
            .generate()
            .expect("random generator produces valid graphs")
        })
}

/// Random non-empty contiguous interval over `n` points.
fn interval(n: usize, seed: u64) -> TimeSet {
    let a = (seed as usize) % n;
    let b = ((seed >> 8) as usize) % n;
    TimeSet::range(n, a.min(b), a.max(b))
}

fn kind_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("kind").expect("random graphs have `kind`")
}

fn level_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("level").expect("random graphs have `level`")
}

/// The attribute sets exercised everywhere below: all-static,
/// all-time-varying, and mixed — the three `GroupTable` layouts.
fn attr_sets(g: &TemporalGraph) -> [Vec<AttrId>; 3] {
    let (kind, level) = (kind_attr(g), level_attr(g));
    [vec![kind], vec![level], vec![kind, level]]
}

const EVENTS: [Event; 3] = [Event::Stability, Event::Growth, Event::Shrinkage];
const TESTS: [SideTest; 2] = [SideTest::Any, SideTest::All];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The event mask selects exactly the rows the materialized event graph
    /// contains, for every event and side-test combination.
    #[test]
    fn event_mask_matches_event_graph(
        g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let n = g.domain().len();
        let (told, tnew) = (interval(n, s1), interval(n, s2));
        for event in EVENTS {
            for old_test in TESTS {
                for new_test in TESTS {
                    let mask = event_mask(&g, event, &told, &tnew, old_test, new_test).unwrap();
                    let graph = event_graph(&g, event, &told, &tnew, old_test, new_test).unwrap();
                    prop_assert_eq!(mask.n_nodes(), graph.n_nodes());
                    prop_assert_eq!(mask.n_edges(), graph.n_edges());
                    for r in mask.node_rows() {
                        prop_assert!(
                            graph.node_id(g.node_name(NodeId(r as u32))).is_some(),
                            "{:?} kept node row {} missing from event graph", event, r
                        );
                    }
                }
            }
        }
    }

    /// Aggregating through the mask equals materializing the event graph
    /// and aggregating it, across all group-table layouts and both modes.
    #[test]
    fn aggregate_masked_matches_materializing(
        g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let n = g.domain().len();
        let (told, tnew) = (interval(n, s1), interval(n, s2));
        for attrs in attr_sets(&g) {
            let table = GroupTable::build(&g, &attrs);
            for event in EVENTS {
                for test in TESTS {
                    let mask = event_mask(&g, event, &told, &tnew, test, test).unwrap();
                    let sub = event_graph(&g, event, &told, &tnew, test, test).unwrap();
                    for mode in [AggMode::Distinct, AggMode::All] {
                        let fast = table.aggregate_masked(&g, &mask, mode);
                        let slow = aggregate(&sub, &attrs, mode);
                        prop_assert_eq!(
                            &fast, &slow,
                            "{:?}/{:?}/{:?} attrs={:?}", event, test, mode, attrs
                        );
                    }
                }
            }
        }
    }

    /// `count_distinct` against the mask equals `Selector::count` on the
    /// distinct aggregate of the materialized event graph — for the All
    /// selectors and for every per-entity tuple the aggregate contains.
    #[test]
    fn count_distinct_matches_selector_count(
        g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let n = g.domain().len();
        let (told, tnew) = (interval(n, s1), interval(n, s2));
        for attrs in attr_sets(&g) {
            let table = GroupTable::build(&g, &attrs);
            for event in EVENTS {
                let mask = event_mask(&g, event, &told, &tnew, SideTest::Any, SideTest::Any)
                    .unwrap();
                let sub = event_graph(&g, event, &told, &tnew, SideTest::Any, SideTest::Any)
                    .unwrap();
                let agg = aggregate(&sub, &attrs, AggMode::Distinct);
                prop_assert_eq!(
                    table.count_distinct(&g, &mask, &CountTarget::AllNodes),
                    Selector::AllNodes.count(&agg)
                );
                prop_assert_eq!(
                    table.count_distinct(&g, &mask, &CountTarget::AllEdges),
                    Selector::AllEdges.count(&agg)
                );
                for (tuple, w) in agg.iter_nodes() {
                    let target = CountTarget::node(&table, tuple);
                    prop_assert_eq!(table.count_distinct(&g, &mask, &target), w);
                }
                for ((src, dst), w) in agg.iter_edges() {
                    let target = CountTarget::edge(&table, src, dst);
                    prop_assert_eq!(table.count_distinct(&g, &mask, &target), w);
                }
            }
        }
    }

    /// The kernel evaluates every interval pair to the same count as the
    /// materializing reference path, over all twelve Table-1 cases and all
    /// four selector shapes.
    #[test]
    fn kernel_evaluation_matches_materialized(
        g in graph_strategy(), s1 in any::<u64>(), s2 in any::<u64>()
    ) {
        let n = g.domain().len();
        let (told, tnew) = (interval(n, s1), interval(n, s2));
        let kind = kind_attr(&g);
        // A tuple that exists plus one that cannot: kind categories are
        // interned from 0, so a large category id is never used.
        let known = vec![Value::Cat(0)];
        let unknown = vec![Value::Cat(u32::MAX)];
        let selectors = [
            Selector::AllNodes,
            Selector::AllEdges,
            Selector::NodeTuple(known.clone()),
            Selector::EdgeTuple(known.clone(), known),
            Selector::NodeTuple(unknown.clone()),
            Selector::EdgeTuple(unknown.clone(), unknown),
        ];
        for event in EVENTS {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    for selector in &selectors {
                        let cfg = ExploreConfig {
                            event,
                            extend,
                            semantics,
                            k: 1,
                            attrs: vec![kind],
                            selector: selector.clone(),
                        };
                        let kernel = ExploreKernel::new(&g, &cfg);
                        let fast = kernel.evaluate(&told, &tnew).unwrap();
                        let slow = evaluate_pair_materialized(&g, &cfg, &told, &tnew).unwrap();
                        prop_assert_eq!(
                            fast, slow,
                            "{:?}/{:?}/{:?} selector={:?}", event, extend, semantics, selector
                        );
                    }
                }
            }
        }
    }

    /// Full exploration runs agree between the kernel and the materializing
    /// variant — identical pairs AND identical evaluation counts, since both
    /// share the pruning strategies. Mixed static/time-varying attributes
    /// exercise the time-indexed group-table layout.
    #[test]
    fn explore_matches_materializing_variant(g in graph_strategy(), k in 1u64..30) {
        let attrs = vec![kind_attr(&g), level_attr(&g)];
        for event in EVENTS {
            for extend in [ExtendSide::Old, ExtendSide::New] {
                for semantics in [Semantics::Union, Semantics::Intersection] {
                    let cfg = ExploreConfig {
                        event,
                        extend,
                        semantics,
                        k,
                        attrs: attrs.clone(),
                        selector: Selector::AllEdges,
                    };
                    let fast = explore(&g, &cfg).unwrap();
                    let slow = explore_materializing(&g, &cfg).unwrap();
                    prop_assert_eq!(
                        &fast.pairs, &slow.pairs,
                        "k={} case={:?}/{:?}/{:?}", k, event, extend, semantics
                    );
                    prop_assert_eq!(fast.evaluations, slow.evaluations);
                }
            }
        }
    }

    /// With an impossible threshold the kernel and the naive oracle both
    /// return no pairs (empty-result edge case).
    #[test]
    fn impossible_threshold_yields_empty(g in graph_strategy()) {
        let cfg = ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k: u64::MAX,
            attrs: vec![kind_attr(&g)],
            selector: Selector::AllNodes,
        };
        let fast = explore(&g, &cfg).unwrap();
        let slow = explore_naive(&g, &cfg).unwrap();
        prop_assert!(fast.pairs.is_empty());
        prop_assert!(slow.pairs.is_empty());
    }
}

/// A single-timepoint graph is rejected identically by every exploration
/// entry point (there is no consecutive pair to explore). The random
/// generator clamps to two timepoints, so the graph is built by hand.
#[test]
fn single_timepoint_domain_errors_everywhere() {
    use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain, TimePoint};

    let domain = TimeDomain::new(vec!["t0"]).unwrap();
    let mut schema = AttributeSchema::new();
    let kind = schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(domain, schema);
    let a = b.add_node("a").unwrap();
    let c = b.add_node("c").unwrap();
    let v = b.intern_category(kind, "k0");
    b.set_static(a, kind, v.clone()).unwrap();
    b.set_static(c, kind, v).unwrap();
    b.set_presence(a, TimePoint(0)).unwrap();
    b.set_presence(c, TimePoint(0)).unwrap();
    b.add_edge_at(a, c, TimePoint(0)).unwrap();
    let g = b.build().unwrap();

    let cfg = ExploreConfig {
        event: Event::Stability,
        extend: ExtendSide::New,
        semantics: Semantics::Union,
        k: 1,
        attrs: vec![kind],
        selector: Selector::AllNodes,
    };
    assert!(explore(&g, &cfg).is_err());
    assert!(explore_materializing(&g, &cfg).is_err());
    assert!(explore_naive(&g, &cfg).is_err());
}
