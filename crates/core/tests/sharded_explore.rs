//! Bit-identity of entity-space sharded exploration with the unsharded
//! engine: `explore_sharded` / `explore_sharded_parallel` must return
//! exactly the pairs and evaluation counts of `explore`, for every
//! Table-1 strategy row, every selector shape, every group-table layout,
//! and shard counts from the degenerate 1 through 64 (far beyond the
//! entity count of the small random graphs, so trailing fragments are
//! empty and every reduction path sees all-zero partials).

use graphtempo::explore::{
    explore, explore_budgeted, explore_sharded, explore_sharded_budgeted, explore_sharded_parallel,
    Budget, ExploreConfig, ExtendSide, Selector, Semantics,
};
use graphtempo::ops::Event;
use proptest::prelude::*;
use tempo_columnar::Value;
use tempo_datagen::RandomGraphConfig;
use tempo_graph::{AttrId, GraphError, TemporalGraph};

/// Strategy: a random evolving graph (same shape as `tests/properties.rs`).
fn graph_strategy() -> impl Strategy<Value = TemporalGraph> {
    (
        10usize..40,  // pool
        3usize..7,    // timepoints
        5usize..15,   // active per tp
        5usize..40,   // edges per tp
        0u8..=10,     // node persistence (tenths)
        0u8..=10,     // edge persistence (tenths)
        1usize..4,    // kinds
        1i64..5,      // levels
        any::<u64>(), // seed
    )
        .prop_map(|(pool, tps, active, edges, np, ep, kinds, levels, seed)| {
            RandomGraphConfig {
                pool,
                timepoints: tps,
                active_per_tp: active.min(pool),
                edges_per_tp: edges,
                node_persistence: f64::from(np) / 10.0,
                edge_persistence: f64::from(ep) / 10.0,
                kinds,
                levels,
                seed,
            }
            .generate()
            .expect("random generator produces valid graphs")
        })
}

fn kind_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("kind").expect("random graphs have `kind`")
}

fn level_attr(g: &TemporalGraph) -> AttrId {
    g.schema().id("level").expect("random graphs have `level`")
}

const EVENTS: [Event; 3] = [Event::Stability, Event::Growth, Event::Shrinkage];
const SHARDS: [usize; 4] = [1, 2, 7, 64];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded exploration is bit-identical to the sequential engine over
    /// all twelve strategy rows and all selector shapes — including
    /// tuples absent from the graph (the all-zero fast path) — at every
    /// shard count, with both static and time-varying attribute layouts.
    #[test]
    fn sharded_matches_unsharded(g in graph_strategy()) {
        let kind = kind_attr(&g);
        let level = level_attr(&g);
        let known = vec![Value::Cat(0)];
        let unknown = vec![Value::Cat(u32::MAX)];
        let selectors = [
            Selector::AllNodes,
            Selector::AllEdges,
            Selector::NodeTuple(known.clone()),
            Selector::EdgeTuple(known.clone(), known),
            Selector::NodeTuple(unknown.clone()),
            Selector::EdgeTuple(unknown.clone(), unknown),
        ];
        for attrs in [vec![kind], vec![kind, level]] {
            for event in EVENTS {
                for extend in [ExtendSide::Old, ExtendSide::New] {
                    for semantics in [Semantics::Union, Semantics::Intersection] {
                        for selector in &selectors {
                            let cfg = ExploreConfig {
                                event,
                                extend,
                                semantics,
                                k: 2,
                                attrs: attrs.clone(),
                                selector: selector.clone(),
                            };
                            let seq = explore(&g, &cfg).unwrap();
                            for shards in SHARDS {
                                let sh = explore_sharded(&g, &cfg, shards).unwrap();
                                prop_assert_eq!(
                                    &sh.pairs, &seq.pairs,
                                    "S={} {:?}/{:?}/{:?} selector={:?} attrs={:?}",
                                    shards, event, extend, semantics, selector, attrs
                                );
                                prop_assert_eq!(sh.evaluations, seq.evaluations);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Both parallel axes at once (chain groups × shards) still reproduce
    /// the sequential outcome exactly.
    #[test]
    fn sharded_parallel_matches_unsharded(g in graph_strategy(), k in 1u64..20) {
        let cfg = ExploreConfig {
            event: Event::Growth,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k,
            attrs: vec![kind_attr(&g), level_attr(&g)],
            selector: Selector::AllNodes,
        };
        let seq = explore(&g, &cfg).unwrap();
        for (shards, threads) in [(2, 4), (4, 4), (7, 14)] {
            let sh = explore_sharded_parallel(&g, &cfg, shards, threads).unwrap();
            prop_assert_eq!(&sh.pairs, &seq.pairs, "S={} T={}", shards, threads);
            prop_assert_eq!(sh.evaluations, seq.evaluations);
        }
    }

    /// Budget checkpoints still fire inside sharded evaluation: an
    /// already-expired deadline cancels the sharded run just like the
    /// sequential one, and every worker shuts down cleanly (the test
    /// returning at all proves no participant deadlocks on a cancelled
    /// round).
    #[test]
    fn sharded_budget_cancels_like_unsharded(g in graph_strategy()) {
        let cfg = ExploreConfig {
            event: Event::Stability,
            extend: ExtendSide::New,
            semantics: Semantics::Union,
            k: 1,
            attrs: vec![kind_attr(&g)],
            selector: Selector::AllNodes,
        };
        let expired = Budget::unlimited().with_deadline_ms(0);
        let seq = explore_budgeted(&g, &cfg, &expired);
        prop_assert!(matches!(seq, Err(GraphError::Cancelled(_))));
        for shards in SHARDS {
            let sh = explore_sharded_budgeted(&g, &cfg, shards, &expired);
            prop_assert!(
                matches!(sh, Err(GraphError::Cancelled(_))),
                "S={} expected cancellation, got {:?}", shards, sh
            );
        }
        // And an unlimited budget through the same entry point agrees with
        // the plain run.
        let unlimited = Budget::unlimited();
        let seq = explore_budgeted(&g, &cfg, &unlimited).unwrap();
        for shards in SHARDS {
            let sh = explore_sharded_budgeted(&g, &cfg, shards, &unlimited).unwrap();
            prop_assert_eq!(&sh.pairs, &seq.pairs);
        }
    }
}

/// Shard counts far above the entity count degenerate gracefully: most
/// fragments are empty, and the tiny two-node graph still reduces to the
/// sequential outcome.
#[test]
fn more_shards_than_entities() {
    use tempo_graph::{AttributeSchema, GraphBuilder, Temporality, TimeDomain, TimePoint};

    let domain = TimeDomain::new(vec!["t0", "t1", "t2"]).unwrap();
    let mut schema = AttributeSchema::new();
    let kind = schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(domain, schema);
    let a = b.add_node("a").unwrap();
    let c = b.add_node("c").unwrap();
    let v = b.intern_category(kind, "k0");
    b.set_static(a, kind, v.clone()).unwrap();
    b.set_static(c, kind, v).unwrap();
    for t in 0..3 {
        b.set_presence(a, TimePoint(t)).unwrap();
        b.set_presence(c, TimePoint(t)).unwrap();
    }
    b.add_edge_at(a, c, TimePoint(0)).unwrap();
    b.add_edge_at(a, c, TimePoint(2)).unwrap();
    let g = b.build().unwrap();

    for selector in [Selector::AllNodes, Selector::AllEdges] {
        for event in EVENTS {
            let cfg = ExploreConfig {
                event,
                extend: ExtendSide::New,
                semantics: Semantics::Union,
                k: 1,
                attrs: vec![kind],
                selector: selector.clone(),
            };
            let seq = explore(&g, &cfg).unwrap();
            for shards in [3, 64] {
                let sh = explore_sharded(&g, &cfg, shards).unwrap();
                assert_eq!(sh.pairs, seq.pairs, "S={shards} {event:?} {selector:?}");
                assert_eq!(sh.evaluations, seq.evaluations);
            }
        }
    }
}
