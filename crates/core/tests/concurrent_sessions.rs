//! Concurrency regression test for the headline bugfix of this PR: with
//! sparse-mode now explicit per-graph state (no process-global environment
//! reads during presence-column builds), any number of sessions sharing one
//! `Arc<TemporalGraph>` — or holding graphs with *different* forced modes —
//! must produce bit-identical results to a serial run.

use graphtempo::aggregate::aggregate;
use graphtempo::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::ops::{Event, SideTest};
use graphtempo::zoom::{zoom_out, Granularity};
use graphtempo::AggMode;
use std::sync::Arc;
use tempo_columnar::SparseMode;
use tempo_datagen::DblpConfig;
use tempo_graph::TemporalGraph;

fn test_graph(mode: SparseMode) -> TemporalGraph {
    let mut g = DblpConfig::scaled(0.02)
        .generate()
        .expect("DBLP generator at test scale");
    g.set_sparse_mode(mode);
    g
}

/// The full query mix one "session" runs: every Table-1 exploration
/// strategy, an attribute aggregation, and a zoom-out summary — rendered
/// into comparable strings.
fn workload(g: &TemporalGraph) -> Vec<String> {
    let gender = g
        .schema()
        .id("gender")
        .expect("dblp graphs carry a gender attribute");
    let mut out = Vec::new();
    for event in [Event::Stability, Event::Growth, Event::Shrinkage] {
        for extend in [ExtendSide::Old, ExtendSide::New] {
            for semantics in [Semantics::Union, Semantics::Intersection] {
                let cfg = ExploreConfig {
                    event,
                    extend,
                    semantics,
                    k: 2,
                    attrs: vec![gender],
                    selector: Selector::AllNodes,
                };
                let outcome = explore(g, &cfg).expect("explore");
                out.push(format!(
                    "{event:?}/{extend:?}/{semantics:?}: {} pairs, {} evals",
                    outcome.pairs.len(),
                    outcome.evaluations
                ));
            }
        }
    }
    let agg = aggregate(g, &[gender], AggMode::Distinct);
    out.push(format!(
        "agg: {} groups, {} node weight, {} edge weight",
        agg.n_nodes(),
        agg.total_node_weight(),
        agg.total_edge_weight()
    ));
    let gran = Granularity::windows(g.domain(), 3).expect("windowed granularity");
    let coarse = zoom_out(g, &gran, SideTest::Any).expect("zoom out");
    out.push(format!(
        "zoom: {} nodes, {} edges, {} points",
        coarse.n_nodes(),
        coarse.n_edges(),
        coarse.domain().len()
    ));
    out
}

#[test]
fn concurrent_sessions_match_serial_bit_for_bit() {
    let g = Arc::new(test_graph(SparseMode::Auto));
    let reference = workload(&g);

    let results: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                s.spawn(move || workload(&g))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });

    for (i, r) in results.iter().enumerate() {
        assert_eq!(r, &reference, "concurrent session {i} diverged from serial");
    }
}

#[test]
fn mixed_sparse_modes_coexist_in_one_process() {
    // Before this PR a single process-global env var decided the column
    // representation for every graph, lazily, at first use — two graphs
    // with different intended modes could not coexist. Now each graph
    // carries its mode, so forcing them in opposite directions in the same
    // process (and querying them concurrently) must still agree on results.
    let sparse = Arc::new(test_graph(SparseMode::ForceSparse));
    let dense = Arc::new(test_graph(SparseMode::ForceDense));
    assert_eq!(sparse.sparse_mode(), SparseMode::ForceSparse);
    assert_eq!(dense.sparse_mode(), SparseMode::ForceDense);

    let (from_sparse, from_dense) = std::thread::scope(|s| {
        let a = {
            let g = Arc::clone(&sparse);
            s.spawn(move || workload(&g))
        };
        let b = {
            let g = Arc::clone(&dense);
            s.spawn(move || workload(&g))
        };
        (
            a.join().expect("sparse session"),
            b.join().expect("dense session"),
        )
    });

    assert_eq!(
        from_sparse, from_dense,
        "column representation must never change query answers"
    );
}
