//! Edge-case and failure-injection tests for the core operators.

use graphtempo::aggregate::{aggregate, AggMode};
use graphtempo::explore::{explore, ExploreConfig, ExtendSide, Selector, Semantics};
use graphtempo::ops::{
    difference, event_graph, intersection, project, project_point, union, Event, SideTest,
};
use tempo_columnar::Value;
use tempo_graph::{
    AttributeSchema, GraphBuilder, GraphError, TemporalGraph, Temporality, TimeDomain, TimePoint,
    TimeSet,
};

fn two_point_graph() -> TemporalGraph {
    let mut schema = AttributeSchema::new();
    schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema);
    let kind = b.schema().id("kind").unwrap();
    let u = b.add_node("u").unwrap();
    let v = b.add_node("v").unwrap();
    let k = b.intern_category(kind, "a");
    b.set_static(u, kind, k.clone()).unwrap();
    b.set_static(v, kind, k).unwrap();
    b.add_edge_at(u, v, TimePoint(0)).unwrap();
    b.build().unwrap()
}

#[test]
fn project_full_domain_keeps_spanning_entities_only() {
    let g = two_point_graph();
    // u and v exist only at t0, so projecting the whole domain is empty
    let p = project(&g, &g.domain().all()).unwrap();
    assert_eq!(p.n_nodes(), 0);
    assert_eq!(p.n_edges(), 0);
    // aggregating an empty graph is well-defined
    let kind = p.schema().id("kind").unwrap();
    let agg = aggregate(&p, &[kind], AggMode::All);
    assert_eq!(agg.n_nodes(), 0);
    assert_eq!(agg.total_edge_weight(), 0);
}

#[test]
fn operators_on_identical_intervals() {
    let g = two_point_graph();
    let t0 = TimeSet::point(2, TimePoint(0));
    // 𝒯 ∪ 𝒯 = 𝒯 ∩ 𝒯 = the projection membership under Any semantics
    let u = union(&g, &t0, &t0).unwrap();
    let i = intersection(&g, &t0, &t0).unwrap();
    assert_eq!(u.n_nodes(), i.n_nodes());
    assert_eq!(u.n_edges(), i.n_edges());
    // 𝒯 − 𝒯 is empty
    let d = difference(&g, &t0, &t0).unwrap();
    assert_eq!(d.n_nodes(), 0);
    assert_eq!(d.n_edges(), 0);
}

#[test]
fn growth_keeps_surviving_endpoints_of_new_edges() {
    // u exists at both points; edge (u,w) appears only at t1. The growth
    // graph 𝒯₁ − 𝒯₀ must keep u (it is an endpoint of a new edge) even
    // though u itself is not new — Definition 2.5's ∃(u,v) ∈ E₋ clause.
    let mut schema = AttributeSchema::new();
    schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema);
    let kind = b.schema().id("kind").unwrap();
    let u = b.add_node("u").unwrap();
    let w = b.add_node("w").unwrap();
    let k = b.intern_category(kind, "a");
    b.set_static(u, kind, k.clone()).unwrap();
    b.set_static(w, kind, k).unwrap();
    b.set_presence(u, TimePoint(0)).unwrap();
    b.add_edge_at(u, w, TimePoint(1)).unwrap();
    let g = b.build().unwrap();

    let growth = event_graph(
        &g,
        Event::Growth,
        &TimeSet::point(2, TimePoint(0)),
        &TimeSet::point(2, TimePoint(1)),
        SideTest::Any,
        SideTest::Any,
    )
    .unwrap();
    assert_eq!(growth.n_edges(), 1);
    assert!(growth.node_id("u").is_some(), "surviving endpoint kept");
    assert!(growth.node_id("w").is_some());
}

#[test]
fn explore_with_k_zero_qualifies_every_base_pair() {
    let g = two_point_graph();
    let kind = g.schema().id("kind").unwrap();
    let cfg = ExploreConfig {
        event: Event::Shrinkage,
        extend: ExtendSide::Old,
        semantics: Semantics::Union,
        k: 0,
        attrs: vec![kind],
        selector: Selector::AllEdges,
    };
    let out = explore(&g, &cfg).unwrap();
    // with k = 0 every reference point's base pair qualifies immediately
    assert_eq!(out.pairs.len(), 1);
    assert_eq!(out.evaluations, 1);
}

#[test]
fn node_tuple_selector() {
    let g = two_point_graph();
    let kind = g.schema().id("kind").unwrap();
    let a = g.schema().category(kind, "a").unwrap();
    let cfg = ExploreConfig {
        event: Event::Shrinkage,
        extend: ExtendSide::Old,
        semantics: Semantics::Union,
        k: 2,
        attrs: vec![kind],
        selector: Selector::NodeTuple(vec![a]),
    };
    // both u and v disappear after t0 → 2 node-shrinkage events for ("a")
    let out = explore(&g, &cfg).unwrap();
    assert_eq!(out.pairs.len(), 1);
    assert_eq!(out.pairs[0].1, 2);
    // a tuple that never occurs yields nothing
    let cfg_missing = ExploreConfig {
        selector: Selector::NodeTuple(vec![Value::Cat(99)]),
        ..cfg
    };
    assert!(explore(&g, &cfg_missing).unwrap().pairs.is_empty());
}

#[test]
fn projection_of_each_point_is_consistent_with_counts() {
    let g = two_point_graph();
    let p0 = project_point(&g, TimePoint(0)).unwrap();
    assert_eq!(p0.n_nodes(), g.nodes_at(TimePoint(0)));
    assert_eq!(p0.n_edges(), g.edges_at(TimePoint(0)));
    let p1 = project_point(&g, TimePoint(1)).unwrap();
    assert_eq!(p1.n_nodes(), 0);
}

#[test]
fn empty_interval_errors_are_uniform() {
    let g = two_point_graph();
    let empty = TimeSet::empty(2);
    let t0 = TimeSet::point(2, TimePoint(0));
    for result in [
        project(&g, &empty).err(),
        union(&g, &empty, &t0).err(),
        union(&g, &t0, &empty).err(),
        intersection(&g, &empty, &t0).err(),
        difference(&g, &t0, &empty).err(),
        event_graph(&g, Event::Growth, &empty, &t0, SideTest::Any, SideTest::Any).err(),
    ] {
        assert!(
            matches!(result, Some(GraphError::EmptyInterval(_))),
            "expected EmptyInterval, got {result:?}"
        );
    }
}

#[test]
fn self_loop_edges_flow_through_operators() {
    // the model admits self-loops (co-rating graphs exclude them by
    // generation, not by the model); operators must handle them
    let mut schema = AttributeSchema::new();
    schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(TimeDomain::indexed(2), schema);
    let kind = b.schema().id("kind").unwrap();
    let u = b.add_node("u").unwrap();
    let k = b.intern_category(kind, "a");
    b.set_static(u, kind, k.clone()).unwrap();
    b.add_edge_at(u, u, TimePoint(0)).unwrap();
    b.add_edge_at(u, u, TimePoint(1)).unwrap();
    let g = b.build().unwrap();
    let i = intersection(
        &g,
        &TimeSet::point(2, TimePoint(0)),
        &TimeSet::point(2, TimePoint(1)),
    )
    .unwrap();
    assert_eq!(i.n_edges(), 1);
    let agg = aggregate(&i, &[i.schema().id("kind").unwrap()], AggMode::Distinct);
    assert_eq!(
        agg.edge_weight(std::slice::from_ref(&k), std::slice::from_ref(&k)),
        1
    );
}

#[test]
fn operators_preserve_edge_values_within_scope() {
    // Build a graph with edge values and verify union/difference carry the
    // values of the kept time points and null out the rest.
    let mut schema = AttributeSchema::new();
    schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(TimeDomain::indexed(3), schema);
    let kind = b.schema().id("kind").unwrap();
    let u = b.add_node("u").unwrap();
    let v = b.add_node("v").unwrap();
    let k = b.intern_category(kind, "a");
    b.set_static(u, kind, k.clone()).unwrap();
    b.set_static(v, kind, k).unwrap();
    b.set_edge_value(u, v, TimePoint(0), Value::Int(2)).unwrap();
    b.set_edge_value(u, v, TimePoint(2), Value::Int(5)).unwrap();
    let g = b.build().unwrap();

    let un = union(
        &g,
        &TimeSet::point(3, TimePoint(0)),
        &TimeSet::point(3, TimePoint(2)),
    )
    .unwrap();
    assert!(un.has_edge_values());
    let (uu, uv) = (un.node_id("u").unwrap(), un.node_id("v").unwrap());
    let e = un.edge_between(uu, uv).unwrap();
    assert_eq!(un.edge_value(e, TimePoint(0)), Value::Int(2));
    assert_eq!(un.edge_value(e, TimePoint(2)), Value::Int(5));

    // union scoped to t0 only: the t2 value must be masked out
    let un0 = union(
        &g,
        &TimeSet::point(3, TimePoint(0)),
        &TimeSet::point(3, TimePoint(0)),
    )
    .unwrap();
    let e0 = un0
        .edge_between(un0.node_id("u").unwrap(), un0.node_id("v").unwrap())
        .unwrap();
    assert_eq!(un0.edge_value(e0, TimePoint(0)), Value::Int(2));
    assert_eq!(un0.edge_value(e0, TimePoint(2)), Value::Null);
    assert!(un0.validate().is_ok());
}

#[test]
fn zoom_carries_latest_edge_value() {
    use graphtempo::zoom::{zoom_out, Granularity};
    let mut schema = AttributeSchema::new();
    schema.declare("kind", Temporality::Static).unwrap();
    let mut b = GraphBuilder::new(TimeDomain::indexed(4), schema);
    let kind = b.schema().id("kind").unwrap();
    let u = b.add_node("u").unwrap();
    let v = b.add_node("v").unwrap();
    let k = b.intern_category(kind, "a");
    b.set_static(u, kind, k.clone()).unwrap();
    b.set_static(v, kind, k).unwrap();
    b.set_edge_value(u, v, TimePoint(0), Value::Int(1)).unwrap();
    b.set_edge_value(u, v, TimePoint(1), Value::Int(9)).unwrap();
    let g = b.build().unwrap();

    let gran = Granularity::windows(g.domain(), 2).unwrap();
    let z = zoom_out(&g, &gran, SideTest::Any).unwrap();
    let e = z
        .edge_between(z.node_id("u").unwrap(), z.node_id("v").unwrap())
        .unwrap();
    // the coarse point {t0,t1} takes the latest observation, 9
    assert_eq!(z.edge_value(e, TimePoint(0)), Value::Int(9));
}
