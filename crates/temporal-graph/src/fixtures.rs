//! Shared fixtures: the paper's running example.
//!
//! The Fig. 1 collaboration graph drives the worked examples of the paper
//! (Figs. 2–4, Table 2). Node presence and the #publications values follow
//! Table 2 exactly; the collaboration edges are a faithful reconstruction
//! consistent with every weight the paper states for the aggregate and
//! evolution graphs (e.g. node `(f,1)` having DIST weight 3 / ALL weight 4
//! in the union graph of `[t0, t1]`, and stability/growth/shrinkage weights
//! 1/1/1 in the aggregated evolution graph of Fig. 4b).

use crate::attrs::{AttributeSchema, Temporality};
use crate::builder::GraphBuilder;
use crate::graph::TemporalGraph;
use crate::time::{TimeDomain, TimePoint};
use tempo_columnar::Value;

/// Builds the Fig. 1 temporal attributed graph:
///
/// * domain `{t0, t1, t2}`;
/// * five authors `u1..u5`, genders `m f f f m`;
/// * presence and #publications per Table 2;
/// * collaborations: at `t0` — `(u1,u2)`, `(u3,u2)`, `(u4,u2)`;
///   at `t1` — `(u1,u2)`, `(u4,u2)`; at `t2` — `(u5,u2)`, `(u4,u2)`.
pub fn fig1() -> TemporalGraph {
    let domain = TimeDomain::new(vec!["t0", "t1", "t2"])
        .expect("invariant: fixture labels are distinct and non-empty");
    let mut schema = AttributeSchema::new();
    let gender = schema
        .declare("gender", Temporality::Static)
        .expect("invariant: fresh schema has no name collisions");
    let pubs = schema
        .declare("publications", Temporality::TimeVarying)
        .expect("invariant: fresh schema has no name collisions");

    let mut b = GraphBuilder::new(domain, schema);
    let genders = [
        ("u1", "m"),
        ("u2", "f"),
        ("u3", "f"),
        ("u4", "f"),
        ("u5", "m"),
    ];
    for (name, gv) in genders {
        let n = b
            .add_node(name)
            .expect("invariant: fixture node names are distinct");
        let v = b.intern_category(gender, gv);
        b.set_static(n, gender, v)
            .expect("invariant: gender is declared static above");
    }

    // Table 2 publications values (None = node absent).
    let pubs_rows: [(&str, [Option<i64>; 3]); 5] = [
        ("u1", [Some(3), Some(1), None]),
        ("u2", [Some(1), Some(1), Some(1)]),
        ("u3", [Some(1), None, None]),
        ("u4", [Some(2), Some(1), Some(1)]),
        ("u5", [None, None, Some(3)]),
    ];
    for (name, values) in pubs_rows {
        let n = b.get_or_add_node(name);
        for (t, v) in values.iter().enumerate() {
            if let Some(p) = v {
                b.set_time_varying(n, pubs, TimePoint(t as u32), Value::Int(*p))
                    .expect("invariant: fixture time points lie in the 3-point domain");
            }
        }
    }

    let edges: [(&str, &str, u32); 7] = [
        ("u1", "u2", 0),
        ("u3", "u2", 0),
        ("u4", "u2", 0),
        ("u1", "u2", 1),
        ("u4", "u2", 1),
        ("u5", "u2", 2),
        ("u4", "u2", 2),
    ];
    for (u, v, t) in edges {
        let u = b.get_or_add_node(u);
        let v = b.get_or_add_node(v);
        b.add_edge_at(u, v, TimePoint(t))
            .expect("invariant: fixture nodes exist and times lie in the domain");
    }

    b.build()
        .expect("invariant: the Fig. 1 literal data is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_table2_presence() {
        let g = fig1();
        let expect = [
            ("u1", vec![0u32, 1]),
            ("u2", vec![0, 1, 2]),
            ("u3", vec![0]),
            ("u4", vec![0, 1, 2]),
            ("u5", vec![2]),
        ];
        for (name, times) in expect {
            let n = g.node_id(name).unwrap();
            assert_eq!(
                g.node_timestamp(n).iter().map(|t| t.0).collect::<Vec<_>>(),
                times,
                "presence of {name}"
            );
        }
    }

    #[test]
    fn fig1_edge_counts_per_timepoint() {
        let g = fig1();
        assert_eq!(g.edges_at(TimePoint(0)), 3);
        assert_eq!(g.edges_at(TimePoint(1)), 2);
        assert_eq!(g.edges_at(TimePoint(2)), 2);
        assert_eq!(g.n_edges(), 4); // (u1,u2), (u3,u2), (u4,u2), (u5,u2)
    }
}
