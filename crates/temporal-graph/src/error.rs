//! Error types for the temporal graph model.

use std::fmt;
use tempo_columnar::ColumnarError;

/// Errors produced while constructing, validating, or loading a temporal
/// attributed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A time domain was created with no points.
    EmptyTimeDomain,
    /// Two time points share a label.
    DuplicateTimeLabel(String),
    /// A temporal-operator argument interval was empty.
    EmptyInterval(String),
    /// A referenced time label or point is outside the domain.
    UnknownTimePoint(String),
    /// A node name was registered twice.
    DuplicateNode(String),
    /// A referenced node does not exist.
    UnknownNode(String),
    /// A referenced attribute does not exist in the schema.
    UnknownAttribute(String),
    /// Two attributes share a name.
    DuplicateAttribute(String),
    /// A static attribute was addressed as time-varying or vice versa.
    AttributeKindMismatch {
        /// Attribute name.
        name: String,
        /// What the call expected ("static" or "time-varying").
        expected: &'static str,
    },
    /// An edge refers to a node id that was never registered.
    DanglingEdge {
        /// Source label.
        src: String,
        /// Destination label.
        dst: String,
    },
    /// An edge exists at a time point where one endpoint does not.
    EdgeWithoutEndpoint {
        /// Source label.
        src: String,
        /// Destination label.
        dst: String,
        /// Offending time label.
        time: String,
    },
    /// A time-varying attribute value is set at a time point where the node
    /// does not exist (or missing where it does, under strict validation).
    AttributePresenceMismatch {
        /// Node label.
        node: String,
        /// Attribute name.
        attr: String,
        /// Offending time label.
        time: String,
    },
    /// Self-loop registered where the model forbids it.
    SelfLoop(String),
    /// A request budget (deadline or cancel flag) expired mid-computation;
    /// the payload says which limit tripped.
    Cancelled(String),
    /// Underlying columnar/IO failure.
    Columnar(ColumnarError),
    /// Malformed on-disk graph directory.
    Format(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyTimeDomain => write!(f, "time domain must not be empty"),
            GraphError::DuplicateTimeLabel(l) => write!(f, "duplicate time label {l:?}"),
            GraphError::EmptyInterval(w) => write!(f, "interval argument {w} is empty"),
            GraphError::UnknownTimePoint(l) => write!(f, "unknown time point {l:?}"),
            GraphError::DuplicateNode(n) => write!(f, "duplicate node {n:?}"),
            GraphError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            GraphError::UnknownAttribute(a) => write!(f, "unknown attribute {a:?}"),
            GraphError::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            GraphError::AttributeKindMismatch { name, expected } => {
                write!(f, "attribute {name:?} is not {expected}")
            }
            GraphError::DanglingEdge { src, dst } => {
                write!(f, "edge ({src:?}, {dst:?}) references an unknown node")
            }
            GraphError::EdgeWithoutEndpoint { src, dst, time } => write!(
                f,
                "edge ({src:?}, {dst:?}) exists at {time} but an endpoint does not"
            ),
            GraphError::AttributePresenceMismatch { node, attr, time } => write!(
                f,
                "attribute {attr:?} of node {node:?} inconsistent with presence at {time}"
            ),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n:?}"),
            GraphError::Cancelled(m) => write!(f, "request cancelled: {m}"),
            GraphError::Columnar(e) => write!(f, "columnar error: {e}"),
            GraphError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Columnar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for GraphError {
    fn from(e: ColumnarError) -> Self {
        GraphError::Columnar(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Columnar(ColumnarError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GraphError::EdgeWithoutEndpoint {
            src: "u1".into(),
            dst: "u2".into(),
            time: "t0".into(),
        };
        assert!(e.to_string().contains("u1"));
        let e = GraphError::Columnar(ColumnarError::UnknownColumn("x".into()));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
