//! Snapshot metrics of an evolving graph.
//!
//! Quantifies the cross-snapshot structure the paper's evolution events
//! measure qualitatively: per-timepoint density, and node/edge overlap
//! (Jaccard similarity) between time points — the "turnover" Fig. 13's
//! discussion attributes to MovieLens.

use crate::graph::TemporalGraph;
use crate::time::TimePoint;

/// Density of the snapshot at `t`: edges over ordered node pairs
/// (directed, no self-loops). Zero for fewer than two nodes.
pub fn density_at(g: &TemporalGraph, t: TimePoint) -> f64 {
    let n = g.nodes_at(t);
    if n < 2 {
        return 0.0;
    }
    g.edges_at(t) as f64 / (n * (n - 1)) as f64
}

/// Average (out+in) degree of the snapshot at `t`.
pub fn avg_degree_at(g: &TemporalGraph, t: TimePoint) -> f64 {
    let n = g.nodes_at(t);
    if n == 0 {
        return 0.0;
    }
    2.0 * g.edges_at(t) as f64 / n as f64
}

/// Jaccard similarity of the node sets of two time points:
/// |alive(t1) ∩ alive(t2)| / |alive(t1) ∪ alive(t2)|.
pub fn node_jaccard(g: &TemporalGraph, t1: TimePoint, t2: TimePoint) -> f64 {
    let mut both = 0usize;
    let mut either = 0usize;
    for n in g.node_ids() {
        let a = g.node_alive_at(n, t1);
        let b = g.node_alive_at(n, t2);
        if a && b {
            both += 1;
        }
        if a || b {
            either += 1;
        }
    }
    if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    }
}

/// Jaccard similarity of the edge sets of two time points.
pub fn edge_jaccard(g: &TemporalGraph, t1: TimePoint, t2: TimePoint) -> f64 {
    let mut both = 0usize;
    let mut either = 0usize;
    for e in g.edge_ids() {
        let a = g.edge_alive_at(e, t1);
        let b = g.edge_alive_at(e, t2);
        if a && b {
            both += 1;
        }
        if a || b {
            either += 1;
        }
    }
    if either == 0 {
        0.0
    } else {
        both as f64 / either as f64
    }
}

/// Per-consecutive-pair overlap profile of the whole graph:
/// `(node_jaccard, edge_jaccard)` for each `(tᵢ, tᵢ₊₁)`.
pub fn turnover_profile(g: &TemporalGraph) -> Vec<(f64, f64)> {
    (0..g.domain().len().saturating_sub(1))
        .map(|i| {
            let (a, b) = (TimePoint(i as u32), TimePoint((i + 1) as u32));
            (node_jaccard(g, a, b), edge_jaccard(g, a, b))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;

    #[test]
    fn fig1_density_and_degree() {
        let g = fig1();
        // t0: 4 nodes, 3 edges → density 3/12
        assert!((density_at(&g, TimePoint(0)) - 0.25).abs() < 1e-9);
        assert!((avg_degree_at(&g, TimePoint(0)) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn fig1_jaccard() {
        let g = fig1();
        // nodes t0={u1..u4}, t1={u1,u2,u4} → 3/4
        assert!((node_jaccard(&g, TimePoint(0), TimePoint(1)) - 0.75).abs() < 1e-9);
        // edges t0={12,32,42}, t1={12,42} → 2/3
        assert!((edge_jaccard(&g, TimePoint(0), TimePoint(1)) - 2.0 / 3.0).abs() < 1e-9);
        let profile = turnover_profile(&g);
        assert_eq!(profile.len(), 2);
        assert!((profile[0].0 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        use crate::attrs::AttributeSchema;
        use crate::builder::GraphBuilder;
        use crate::time::TimeDomain;
        let mut b = GraphBuilder::new(TimeDomain::indexed(2), AttributeSchema::new());
        let u = b.add_node("u").unwrap();
        b.set_presence(u, TimePoint(0)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(density_at(&g, TimePoint(0)), 0.0); // one node
        assert_eq!(density_at(&g, TimePoint(1)), 0.0); // empty snapshot
        assert_eq!(avg_degree_at(&g, TimePoint(1)), 0.0);
        assert_eq!(node_jaccard(&g, TimePoint(0), TimePoint(1)), 0.0);
        assert_eq!(edge_jaccard(&g, TimePoint(0), TimePoint(1)), 0.0);
    }

    #[test]
    fn jaccard_symmetric_and_bounded() {
        let g = fig1();
        for i in 0..3u32 {
            for j in 0..3u32 {
                let a = node_jaccard(&g, TimePoint(i), TimePoint(j));
                let b = node_jaccard(&g, TimePoint(j), TimePoint(i));
                assert!((a - b).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&a));
                if i == j {
                    assert!((a - 1.0).abs() < 1e-12);
                }
            }
        }
    }
}
